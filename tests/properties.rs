//! Property-based tests (proptest) on the core data-structure and
//! algorithm invariants.

use oca::{fitness, fitness_from_definition, local_search, CommunityState, MoveRule, SearchConfig};
use oca_api::{registry, DetectorOptions};
use oca_graph::{from_edges, Community, Cover, CsrGraph, DetectContext, NodeId, UnionFind};
use oca_metrics::{omega_index, overlapping_nmi, rho, theta};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Reference for the driver's dedup semantics: exact member-vector sets,
/// the representation the fingerprint probe replaced.
fn exact_dedup_decisions(comms: &[Community]) -> Vec<bool> {
    let mut seen: HashSet<Vec<NodeId>> = HashSet::new();
    comms
        .iter()
        .map(|c| seen.insert(c.members().to_vec()))
        .collect()
}

/// Reference for the merge spec — per round, union every pair of current
/// communities that shares a node and has similarity ≥ threshold
/// (evaluated on the round-start sets), merge the groups, repeat to the
/// fixed point. Quadratic in the community count; order-independent by
/// construction.
fn merge_similar_reference(cover: &Cover, threshold: f64) -> Cover {
    let mut comms: Vec<Community> = cover.communities().to_vec();
    loop {
        let k = comms.len();
        let mut uf = UnionFind::new(k);
        let mut any = false;
        for i in 0..k {
            for j in (i + 1)..k {
                if comms[i].intersection_size(&comms[j]) > 0
                    && comms[i].similarity(&comms[j]) >= threshold
                {
                    any |= uf.union(i, j);
                }
            }
        }
        if !any {
            break;
        }
        let mut emitted = vec![false; k];
        let mut merged: Vec<Community> = Vec::new();
        for i in 0..k {
            let root = uf.find(i);
            if emitted[root] {
                continue;
            }
            emitted[root] = true;
            let mut group = comms[root].clone();
            for (j, c) in comms.iter().enumerate() {
                if j != root && uf.find(j) == root {
                    group = group.merged(c);
                }
            }
            merged.push(group);
        }
        comms = merged;
    }
    Cover::new(cover.node_count(), comms)
}

/// Reference for orphan assignment: the per-node `HashMap` counting the
/// epoch-stamped counter array replaced — identical winner rule (max
/// neighbor count, lowest community index on ties), identical rounds.
fn assign_orphans_reference(graph: &CsrGraph, cover: &Cover, max_rounds: usize) -> Cover {
    let mut communities: Vec<Vec<NodeId>> = cover
        .communities()
        .iter()
        .map(|c| c.members().to_vec())
        .collect();
    if communities.is_empty() {
        return cover.clone();
    }
    let mut membership: Vec<Vec<u32>> = cover.membership_index();
    let mut orphans: Vec<NodeId> = cover.orphans();
    for _ in 0..max_rounds {
        if orphans.is_empty() {
            break;
        }
        let mut still_orphan = Vec::new();
        let mut assigned_any = false;
        for &v in &orphans {
            let mut counts: HashMap<u32, usize> = HashMap::new();
            for &u in graph.neighbors(v) {
                for &ci in &membership[u.index()] {
                    *counts.entry(ci).or_insert(0) += 1;
                }
            }
            let winner = counts
                .iter()
                .map(|(&ci, &cnt)| (cnt, std::cmp::Reverse(ci)))
                .max()
                .map(|(_, std::cmp::Reverse(ci))| ci);
            match winner {
                Some(ci) => {
                    communities[ci as usize].push(v);
                    membership[v.index()].push(ci);
                    assigned_any = true;
                }
                None => still_orphan.push(v),
            }
        }
        orphans = still_orphan;
        if !assigned_any {
            break;
        }
    }
    Cover::new(
        cover.node_count(),
        communities.into_iter().map(Community::new).collect(),
    )
}

/// Strategy: a random edge list over up to `n` nodes.
fn edge_list(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
}

/// Strategy: a random community over nodes `0..n`.
fn community(n: u32) -> impl Strategy<Value = Community> {
    prop::collection::vec(0..n, 0..(n as usize)).prop_map(Community::from_raw)
}

proptest! {
    #[test]
    fn builder_always_produces_valid_simple_graphs(edges in edge_list(40, 200)) {
        let g = from_edges(40, edges);
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn edge_iterator_matches_edge_count(edges in edge_list(30, 120)) {
        let g = from_edges(30, edges);
        prop_assert_eq!(g.edges().count(), g.edge_count());
        // Degrees sum to twice the edge count (handshake lemma).
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn has_edge_is_symmetric(edges in edge_list(25, 100)) {
        let g = from_edges(25, edges);
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(u, v));
                prop_assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn union_find_agrees_with_components(edges in edge_list(30, 60)) {
        let g = from_edges(30, edges.clone());
        let comps = oca_graph::Components::compute(&g);
        let mut uf = UnionFind::new(30);
        for (u, v) in edges {
            if u != v {
                uf.union(u as usize, v as usize);
            }
        }
        for u in 0..30usize {
            for v in (u + 1)..30usize {
                prop_assert_eq!(
                    uf.connected(u, v),
                    comps.same_component(NodeId(u as u32), NodeId(v as u32))
                );
            }
        }
    }

    #[test]
    fn closed_form_fitness_matches_definition(
        edges in edge_list(20, 80),
        members in prop::collection::btree_set(0u32..20, 1..15),
        c in 0.01f64..0.99,
    ) {
        let g = from_edges(20, edges);
        let members: Vec<NodeId> = members.into_iter().map(NodeId).collect();
        let mut st = CommunityState::new(&g, c);
        for &v in &members {
            st.add(v);
        }
        let internal_degrees: Vec<usize> =
            members.iter().map(|&v| st.internal_degree(v)).collect();
        let by_def = fitness_from_definition(&internal_degrees, st.internal_edges(), c);
        let closed = fitness(members.len(), st.internal_edges(), c);
        prop_assert!((by_def - closed).abs() < 1e-9, "{} vs {}", by_def, closed);
    }

    /// The incremental `CommunityState` (packed records, intrusive bucket
    /// queues, memoized sqrt) against a from-scratch oracle: after every
    /// operation of a random add/remove/reset sequence, membership,
    /// `Ein`, every node's `deg_S`, the boundary, the best candidates and
    /// the fitness (via `fitness_from_definition`) must all agree with
    /// naive recomputation, so a layout rewrite cannot silently corrupt
    /// gains.
    #[test]
    fn community_state_matches_naive_oracle(
        edges in edge_list(24, 120),
        ops in prop::collection::vec((0u32..24, 0u32..100), 1..60),
        c in 0.05f64..0.95,
    ) {
        let g = from_edges(24, edges);
        let n = g.node_count() as u32;
        let mut st = CommunityState::new(&g, c);
        let mut naive: std::collections::BTreeSet<NodeId> = Default::default();
        for (v, action) in ops {
            let v = NodeId(v);
            if action < 8 {
                st.reset();
                naive.clear();
                continue;
            }
            if naive.contains(&v) {
                st.remove(v);
                naive.remove(&v);
            } else {
                st.add(v);
                naive.insert(v);
            }
            let deg = |u: NodeId| g.neighbors(u).iter().filter(|w| naive.contains(w)).count();
            let members: Vec<NodeId> = naive.iter().copied().collect();
            let flags: Vec<bool> = (0..n).map(|i| naive.contains(&NodeId(i))).collect();
            let ein = g.internal_edges(&members, &flags);
            prop_assert_eq!(st.len(), naive.len());
            prop_assert_eq!(st.internal_edges(), ein);
            for u in g.nodes() {
                prop_assert_eq!(st.contains(u), naive.contains(&u));
                prop_assert_eq!(st.internal_degree(u), deg(u), "deg_S({u:?})");
            }
            let internal_degrees: Vec<usize> = members.iter().map(|&m| deg(m)).collect();
            let by_def = fitness_from_definition(&internal_degrees, ein, c);
            prop_assert!(
                (st.fitness() - by_def).abs() <= 1e-9 * by_def.abs().max(1.0),
                "fitness {} vs definition {}", st.fitness(), by_def
            );
            // Boundary: exactly the non-members with positive deg_S.
            let mut got: Vec<u32> = st.boundary().map(|x| x.raw()).collect();
            got.sort_unstable();
            let want: Vec<u32> = (0..n)
                .filter(|&i| !naive.contains(&NodeId(i)) && deg(NodeId(i)) > 0)
                .collect();
            prop_assert_eq!(got, want);
            // Best candidates agree with the oracle on the extremal degree
            // (identity may differ on ties).
            let best_boundary = (0..n)
                .map(NodeId)
                .filter(|u| !naive.contains(u) && deg(*u) > 0)
                .map(deg)
                .max();
            prop_assert_eq!(st.best_addition().map(|u| st.internal_degree(u)), best_boundary);
            if naive.len() >= 2 {
                let min_member = members.iter().map(|&m| deg(m)).min();
                prop_assert_eq!(st.best_removal().map(|u| st.internal_degree(u)), min_member);
            } else {
                prop_assert_eq!(st.best_removal(), None);
            }
            // Gains equal the oracle's fitness differences.
            if let Some(u) = st.best_addition() {
                let oracle = fitness(naive.len() + 1, ein + deg(u), c) - fitness(naive.len(), ein, c);
                prop_assert!((st.gain_add(u) - oracle).abs() < 1e-9);
            }
            if naive.len() >= 2 {
                if let Some(u) = st.best_removal() {
                    let oracle = fitness(naive.len() - 1, ein - deg(u), c) - fitness(naive.len(), ein, c);
                    prop_assert!((st.gain_remove(u) - oracle).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn state_add_remove_round_trips(
        edges in edge_list(20, 80),
        members in prop::collection::btree_set(0u32..20, 1..12),
        c in 0.05f64..0.95,
    ) {
        let g = from_edges(20, edges);
        let members: Vec<NodeId> = members.into_iter().map(NodeId).collect();
        let mut st = CommunityState::new(&g, c);
        for &v in &members {
            st.add(v);
        }
        prop_assert_eq!(st.internal_edges(), st.recompute_internal_edges());
        for &v in &members {
            st.remove(v);
        }
        prop_assert_eq!(st.len(), 0);
        prop_assert_eq!(st.internal_edges(), 0);
    }

    #[test]
    fn rho_is_a_bounded_symmetric_similarity(a in community(30), b in community(30)) {
        let r = rho(&a, &b);
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!((r - rho(&b, &a)).abs() < 1e-12);
        prop_assert!((rho(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn theta_is_bounded_and_maximal_on_self(
        comms in prop::collection::vec(community(25), 1..6),
    ) {
        let cover = Cover::new(25, comms);
        prop_assume!(!cover.is_empty());
        let self_theta = theta(&cover, &cover);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&self_theta));
        // Self-similarity: every observed community matches itself at rho 1,
        // but duplicates of the same best-match can dilute; still ≥ 1/len.
        prop_assert!(self_theta >= 1.0 / cover.len() as f64 - 1e-9);
    }

    #[test]
    fn nmi_and_omega_are_symmetric(
        a in prop::collection::vec(community(20), 1..4),
        b in prop::collection::vec(community(20), 1..4),
    ) {
        let ca = Cover::new(20, a);
        let cb = Cover::new(20, b);
        let n1 = overlapping_nmi(&ca, &cb);
        let n2 = overlapping_nmi(&cb, &ca);
        prop_assert!((n1 - n2).abs() < 1e-9);
        prop_assert!((-1.0..=1.0 + 1e-9).contains(&n1) || n1.is_finite());
        let o1 = omega_index(&ca, &cb);
        let o2 = omega_index(&cb, &ca);
        prop_assert!((o1 - o2).abs() < 1e-9);
    }

    /// The incremental 128-bit fingerprint must accept/reject exactly the
    /// communities the old clone-the-member-vector dedup set did, for any
    /// sequence of sets (duplicates included). A collision would show up
    /// here as a decision mismatch.
    #[test]
    fn fingerprint_dedup_matches_exact_set_dedup(
        comms in prop::collection::vec(community(30), 1..40),
    ) {
        let g = CsrGraph::empty(30);
        let mut st = CommunityState::new(&g, 0.5);
        let mut fps: HashSet<u128> = HashSet::new();
        let exact = exact_dedup_decisions(&comms);
        for (c, want) in comms.iter().zip(exact) {
            st.reset();
            for &v in c.members() {
                st.add(v);
            }
            prop_assert_eq!(fps.insert(st.fingerprint()), want, "set {:?}", c.members());
        }
    }

    /// The inverted-index + union-find merge must equal the quadratic
    /// order-independent specification: same communities, same order.
    #[test]
    fn merge_similar_matches_quadratic_reference(
        comms in prop::collection::vec(community(20), 0..10),
        threshold in 0.05f64..1.0,
    ) {
        let cover = Cover::new(20, comms);
        let fast = oca::merge_similar(&cover, threshold);
        let reference = merge_similar_reference(&cover, threshold);
        prop_assert_eq!(fast, reference);
    }

    /// Merging may not depend on the order communities arrive in (the old
    /// grown-union rule did): any permutation yields the same cover up to
    /// community order.
    #[test]
    fn merge_similar_is_order_independent(
        comms in prop::collection::vec(community(20), 0..8),
        threshold in 0.05f64..1.0,
        rot in 0usize..8,
    ) {
        let normalize = |cover: &Cover| {
            let mut sets: Vec<Vec<NodeId>> = cover
                .communities()
                .iter()
                .map(|c| c.members().to_vec())
                .collect();
            sets.sort();
            sets
        };
        let reference = normalize(&oca::merge_similar(&Cover::new(20, comms.clone()), threshold));
        let mut rotated = comms.clone();
        if !rotated.is_empty() {
            let by = rot % rotated.len();
            rotated.rotate_left(by);
            rotated.reverse();
        }
        let got = normalize(&oca::merge_similar(&Cover::new(20, rotated), threshold));
        prop_assert_eq!(got, reference);
    }

    /// The counter-based orphan assignment must equal the old HashMap
    /// implementation exactly (same covers, same community order).
    #[test]
    fn assign_orphans_matches_hashmap_reference(
        edges in edge_list(20, 60),
        comms in prop::collection::vec(community(20), 1..4),
        rounds in 1usize..6,
    ) {
        let g: CsrGraph = from_edges(20, edges);
        let cover = Cover::new(20, comms);
        prop_assume!(!cover.is_empty());
        let fast = oca::assign_orphans(&g, &cover, rounds);
        let reference = assign_orphans_reference(&g, &cover, rounds);
        prop_assert_eq!(fast, reference);
    }

    #[test]
    fn merge_similar_never_increases_count_and_is_idempotent(
        comms in prop::collection::vec(community(20), 0..8),
        threshold in 0.1f64..1.0,
    ) {
        let cover = Cover::new(20, comms);
        let merged = oca::merge_similar(&cover, threshold);
        prop_assert!(merged.len() <= cover.len());
        let twice = oca::merge_similar(&merged, threshold);
        prop_assert_eq!(twice.len(), merged.len());
    }

    #[test]
    fn orphan_assignment_only_grows_coverage(
        edges in edge_list(20, 60),
        comms in prop::collection::vec(community(20), 1..4),
    ) {
        let g: CsrGraph = from_edges(20, edges);
        let cover = Cover::new(20, comms);
        prop_assume!(!cover.is_empty());
        let out = oca::assign_orphans(&g, &cover, 8);
        prop_assert!(out.coverage() >= cover.coverage() - 1e-12);
        // Assigned orphans must have a neighbor in their new community.
        let before = cover.membership_index();
        for (ci, c) in out.communities().iter().enumerate() {
            for &v in c.members() {
                let was_orphan = before[v.index()].is_empty();
                if was_orphan {
                    let has_neighbor_inside =
                        g.neighbors(v).iter().any(|u| c.contains(*u));
                    prop_assert!(
                        has_neighbor_inside,
                        "orphan {v:?} joined community {ci} with no neighbor inside"
                    );
                }
            }
        }
    }

    /// With budgets, pruning and penalties all off (the library default),
    /// the reworked `ascend` must replay the pre-budget greedy loop
    /// exactly: same members, same fitness, same move count, for any graph
    /// and initial set. The reference runs on an identical
    /// `CommunityState`, so bucket-queue tie-breaking matches and the
    /// comparison is bit-exact, not just quality-equivalent.
    #[test]
    fn default_ascend_matches_the_unbudgeted_reference_loop(
        edges in edge_list(24, 120),
        initial in prop::collection::btree_set(0u32..24, 1..8),
        c in 0.05f64..0.95,
    ) {
        let g = from_edges(24, edges);
        let initial: Vec<NodeId> = initial.into_iter().map(NodeId).collect();
        let config = SearchConfig::default();
        let mut st = CommunityState::new(&g, c);
        let got = local_search(&mut st, &initial, &config);

        let mut rf = CommunityState::new(&g, c);
        rf.reset();
        for &v in &initial {
            if !rf.contains(v) {
                rf.add(v);
            }
        }
        let mut moves = 0usize;
        loop {
            let mut best: Option<(f64, NodeId, bool)> = None;
            if let Some(v) = rf.best_addition() {
                best = Some((rf.gain_add(v), v, true));
            }
            if let Some(v) = rf.best_removal() {
                let gain = rf.gain_remove(v);
                if best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, v, false));
                }
            }
            match best {
                Some((gain, v, is_add)) if gain > config.min_gain && moves < config.max_moves => {
                    if is_add {
                        rf.add(v);
                    } else {
                        rf.remove(v);
                    }
                    moves += 1;
                }
                _ => break,
            }
        }
        prop_assert_eq!(got.moves, moves);
        prop_assert!(got.converged);
        let reference = rf.to_community();
        prop_assert_eq!(got.community.members(), reference.members());
        prop_assert!((got.fitness - rf.fitness()).abs() < 1e-12);
    }

    /// Covered-hub pruning only suppresses candidacy: a pruned node can be
    /// in the final set only by arriving through the initial set, never by
    /// greedy addition.
    #[test]
    fn pruned_nodes_only_enter_through_the_initial_set(
        edges in edge_list(24, 120),
        initial in prop::collection::btree_set(0u32..24, 1..6),
        pruned in prop::collection::btree_set(0u32..24, 0..12),
        c in 0.05f64..0.95,
    ) {
        let g = from_edges(24, edges);
        let initial: Vec<NodeId> = initial.into_iter().map(NodeId).collect();
        let mut words = [0u64; 1];
        for &v in &pruned {
            words[0] |= 1u64 << v;
        }
        let mut st = CommunityState::new(&g, c);
        st.set_prune_snapshot(&words);
        let got = local_search(&mut st, &initial, &SearchConfig::default());
        for &v in got.community.members() {
            if pruned.contains(&v.raw()) {
                prop_assert!(
                    initial.contains(&v),
                    "pruned node {:?} entered by addition", v
                );
            }
        }
    }

    /// The penalized rule's best-so-far tracking: more plateau patience can
    /// only help. The fitness with patience `k` must be at least the
    /// fitness at the first plateau (patience 0), for any graph and seed —
    /// both runs walk the identical strictly-improving prefix, and the
    /// deeper run unwinds to its best set seen.
    #[test]
    fn penalized_patience_never_loses_fitness(
        edges in edge_list(24, 120),
        initial in prop::collection::btree_set(0u32..24, 1..6),
        patience in 1usize..24,
        c in 0.05f64..0.95,
    ) {
        let g = from_edges(24, edges);
        let initial: Vec<NodeId> = initial.into_iter().map(NodeId).collect();
        let base = SearchConfig {
            move_rule: MoveRule::Penalized,
            plateau_moves: 0,
            tabu_tenure: 4,
            ..Default::default()
        };
        let mut st = CommunityState::new(&g, c);
        let first_plateau = local_search(&mut st, &initial, &base);
        let deeper = local_search(&mut st, &initial, &SearchConfig { plateau_moves: patience, ..base });
        prop_assert!(
            deeper.fitness >= first_plateau.fitness - 1e-9,
            "patience {} lost fitness: {} < {}", patience, deeper.fitness, first_plateau.fitness
        );
    }

    /// A point query must agree with the whole-graph detection: on a
    /// graph of disjoint cliques (sizes 3–7), `oca-local` pinned to any
    /// node the global `oca` cover assigns somewhere returns exactly the
    /// community the global cover placed that node in. Both run with the
    /// same fixed `c`, for which the full clique is the fitness optimum,
    /// so the seeded ascent and the global sweep must land on the same
    /// answer.
    #[test]
    fn local_query_agrees_with_the_global_cover_on_disjoint_cliques(
        sizes in prop::collection::vec(3u32..=7, 1..4),
        query_pick in 0usize..64,
        c in 0.6f64..0.9,
    ) {
        let n: u32 = sizes.iter().sum();
        let mut edges = Vec::new();
        let mut base = 0u32;
        for &s in &sizes {
            for i in 0..s {
                for j in (i + 1)..s {
                    edges.push((base + i, base + j));
                }
            }
            base += s;
        }
        let g = from_edges(n as usize, edges);
        let c_opt = format!("{c}");
        let reg = registry();
        let global = reg
            .build("oca", &DetectorOptions::new().with("fixed-c", &c_opt))
            .unwrap()
            .detect(&g, &mut DetectContext::new(5))
            .unwrap();
        let membership = global.cover.membership_index();
        let query = query_pick % n as usize;
        prop_assume!(!membership[query].is_empty());
        let local = reg
            .build(
                "oca-local",
                &DetectorOptions::new()
                    .with("seed-node", &query.to_string())
                    .with("fixed-c", &c_opt),
            )
            .unwrap()
            .detect(&g, &mut DetectContext::new(5))
            .unwrap();
        prop_assert_eq!(local.cover.len(), 1, "a point query answers with one community");
        let got = local.cover.communities()[0].members();
        let want = global.cover.communities()[membership[query][0] as usize].members();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn subgraph_preserves_adjacency(
        edges in edge_list(20, 80),
        members in prop::collection::btree_set(0u32..20, 0..12),
    ) {
        let g = from_edges(20, edges);
        let members: Vec<NodeId> = members.into_iter().map(NodeId).collect();
        let sub = oca_graph::Subgraph::induced(&g, &members);
        for u in sub.graph.nodes() {
            for &v in sub.graph.neighbors(u) {
                prop_assert!(g.has_edge(sub.parent_id(u), sub.parent_id(v)));
            }
        }
        // Edge count equals internal edges of the member set.
        let mut flags = vec![false; 20];
        for &v in &members {
            flags[v.index()] = true;
        }
        prop_assert_eq!(
            sub.graph.edge_count(),
            g.internal_edges(&members, &flags)
        );
    }
}
