//! Degree-ordered relabeling: permutation round-trips, detector contracts
//! with relabeling on and off, and quality parity on the Fig. 2 setup.
//!
//! Relabeling is part of the deterministic schedule (seed picks index the
//! relabeled id space), so covers legitimately differ between the on/off
//! runs of one seed; what must *not* differ is validity, determinism, the
//! thread-count contract, and — within tolerance — the quality metrics
//! against the planted ground truth.

use oca_repro::gen::{lfr, LfrParams};
use oca_repro::graph::relabel::Relabeling;
use oca_repro::metrics::{omega_index, theta};
use oca_repro::prelude::*;

fn lfr_bench(seed: u64) -> oca_repro::gen::LfrBenchmark {
    lfr(&LfrParams::small(600, 0.25, seed))
}

fn oca_with_relabel(relabel: bool) -> Box<dyn CommunityDetector> {
    let opts = DetectorOptions::new()
        .with("relabel", if relabel { "true" } else { "false" })
        .with("max-seeds", "2400")
        .with("target-coverage", "0.99")
        .with("stagnation", "200");
    registry().build("oca", &opts).expect("valid options")
}

#[test]
fn degree_ordered_relabeling_round_trips_on_generated_graphs() {
    for seed in [1u64, 7, 42] {
        let graph = lfr_bench(seed).graph;
        let relabeling = Relabeling::degree_descending(&graph);
        let compact = graph.relabeled(&relabeling);
        assert!(compact.validate().is_ok(), "seed {seed}");
        assert_eq!(compact.edge_count(), graph.edge_count());
        for v in 0..graph.node_count() as u32 {
            let v = NodeId(v);
            assert_eq!(relabeling.to_compact(relabeling.to_original(v)), v);
            assert_eq!(relabeling.to_original(relabeling.to_compact(v)), v);
            assert_eq!(compact.degree(v), graph.degree(relabeling.to_original(v)));
        }
        // Hubs first: degrees are non-increasing along compact ids.
        for v in 1..compact.node_count() as u32 {
            assert!(compact.degree(NodeId(v)) <= compact.degree(NodeId(v - 1)));
        }
    }
}

/// The conformance contracts that matter for an opt-in pass: fixed-seed
/// determinism and valid covers, with relabeling on and off.
#[test]
fn detector_contracts_hold_with_relabeling_on_and_off() {
    let bench = lfr_bench(11);
    for relabel in [false, true] {
        let detector = oca_with_relabel(relabel);
        let a = detector
            .detect(&bench.graph, &mut DetectContext::new(5))
            .unwrap();
        let b = detector
            .detect(&bench.graph, &mut DetectContext::new(5))
            .unwrap();
        assert_eq!(
            a.cover, b.cover,
            "relabel={relabel}: runs with one seed must be identical"
        );
        assert_eq!(
            a.cover.node_count(),
            bench.graph.node_count(),
            "relabel={relabel}"
        );
        for community in a.cover.communities() {
            assert!(!community.is_empty(), "relabel={relabel}: empty community");
            for &v in community.members() {
                assert!(
                    v.index() < bench.graph.node_count(),
                    "relabel={relabel}: member {v} out of range — covers must \
                     be reported in original ids"
                );
            }
        }
    }
}

/// The threads-determinism contract survives relabeling: for a fixed seed
/// the cover is bit-identical at any thread count.
#[test]
fn relabeled_runs_are_thread_independent() {
    let bench = lfr_bench(3);
    let base = DetectorOptions::new()
        .with("relabel", "true")
        .with("max-seeds", "1200")
        .with("stagnation", "120");
    let reference = registry()
        .build("oca", &base.clone().with("threads", "1"))
        .unwrap()
        .detect(&bench.graph, &mut DetectContext::new(9))
        .unwrap();
    for threads in ["2", "4"] {
        let run = registry()
            .build("oca", &base.clone().with("threads", threads))
            .unwrap()
            .detect(&bench.graph, &mut DetectContext::new(9))
            .unwrap();
        assert_eq!(run.cover, reference.cover, "threads={threads}");
        assert_eq!(run.iterations, reference.iterations, "threads={threads}");
    }
}

/// Fig. 2 protocol: quality against the planted LFR ground truth must not
/// depend on the id space the ascents ran in. Covers differ (different
/// seed draws), so the comparison is on the quality metrics, within a
/// tolerance reflecting seed-to-seed variance at this graph size.
#[test]
fn fig2_quality_metrics_agree_within_tolerance() {
    let bench = lfr_bench(1234);
    let mut scores: Vec<(f64, f64)> = Vec::new();
    for relabel in [false, true] {
        let detection = oca_with_relabel(relabel)
            .detect(&bench.graph, &mut DetectContext::new(77))
            .unwrap();
        let cover = detection.cover;
        scores.push((
            theta(&cover, &bench.ground_truth),
            omega_index(&cover, &bench.ground_truth),
        ));
    }
    let (theta_off, omega_off) = scores[0];
    let (theta_on, omega_on) = scores[1];
    assert!(
        theta_off > 0.5 && theta_on > 0.5,
        "both runs should find most of the planted structure \
         (off {theta_off:.3}, on {theta_on:.3})"
    );
    assert!(
        (theta_off - theta_on).abs() < 0.15,
        "theta diverged: off {theta_off:.3} vs on {theta_on:.3}"
    );
    assert!(
        (omega_off - omega_on).abs() < 0.15,
        "omega diverged: off {omega_off:.3} vs on {omega_on:.3}"
    );
}
