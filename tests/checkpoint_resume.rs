//! Crash/resume properties of the checkpointed OCA driver (proptest).
//!
//! The tentpole contract under randomized abuse:
//!
//! * kill the driver right after a random boundary write, resume from the
//!   checkpoint — at any thread count, under a different nominal seed —
//!   and the final cover and `seeds_tried` are bit-identical to an
//!   uninterrupted run;
//! * a damaged `.ockpt` (random byte flip, random truncation, version
//!   patch) is refused with a typed error under the strict policy and
//!   discarded under salvage — garbage is never loaded as state;
//! * injected torn writes never corrupt the target path or the result.

use oca::{
    CheckpointConfig, CheckpointFaultSpec, CheckpointFaults, Oca, OcaConfig, OcaResult,
    ResumePolicy,
};
use oca_gen::{lfr, LfrParams};
use oca_graph::{CsrGraph, DetectContext, DetectError};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

fn graph() -> &'static CsrGraph {
    static G: OnceLock<CsrGraph> = OnceLock::new();
    G.get_or_init(|| lfr(&LfrParams::small(300, 0.3, 3)).graph)
}

/// Tiny rounds so even this 300-node run crosses several checkpoint
/// boundaries — the kill points under test.
fn base_config() -> OcaConfig {
    OcaConfig {
        batch: 2,
        rng_seed: 0x0CA,
        ..OcaConfig::default()
    }
}

struct Baseline {
    plain: OcaResult,
    /// Periodic boundary writes a full checkpointed run performs: the
    /// space of distinct kill points.
    writes: u64,
}

fn baseline() -> &'static Baseline {
    static B: OnceLock<Baseline> = OnceLock::new();
    B.get_or_init(|| {
        let plain = Oca::new(base_config()).run(graph());
        let path = case_path("baseline");
        let r = Oca::new(OcaConfig {
            checkpoint: Some(CheckpointConfig::at(&path)),
            ..base_config()
        })
        .run(graph());
        assert_eq!(
            r.cover, plain.cover,
            "checkpointing must not change the cover"
        );
        let writes = r.checkpoint.rounds_checkpointed;
        assert!(
            writes >= 2,
            "need at least two boundaries to kill at ({writes})"
        );
        Baseline { plain, writes }
    })
}

/// A fresh target path per case: cases must never see each other's files.
fn case_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("oca_ckpt_prop_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}_{}.ockpt",
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Runs to completion under `kill_after_writes` faults and leaves the
/// flushed checkpoint at `path`.
fn killed_run(path: &Path, kill_after_writes: u64, threads: usize) {
    let faults = CheckpointFaults::new(CheckpointFaultSpec {
        torn_write_every: 0,
        kill_after_writes,
    });
    let err = Oca::new(OcaConfig {
        threads,
        checkpoint: Some(CheckpointConfig {
            path: path.to_path_buf(),
            every_rounds: 1,
            resume: ResumePolicy::Strict,
            faults,
        }),
        ..base_config()
    })
    .run_ctx(graph(), &DetectContext::new(0x0CA))
    .unwrap_err();
    assert!(matches!(err, DetectError::Cancelled { .. }), "got {err}");
    assert!(path.exists(), "the kill must leave a checkpoint behind");
}

const THREADS: [usize; 3] = [1, 2, 4];

proptest! {
    /// Kill after a random boundary write, resume at a random (often
    /// different) thread count under a different nominal seed: the chain
    /// reproduces the uninterrupted run bit for bit.
    #[test]
    fn kill_at_a_random_round_then_resume_is_bit_identical(
        raw_kill in 0u64..1_000_000,
        kill_threads in 0usize..3,
        resume_threads in 0usize..3,
    ) {
        let base = baseline();
        let kill_after = 1 + raw_kill % base.writes;
        let path = case_path("kill");
        killed_run(&path, kill_after, THREADS[kill_threads]);

        let r = Oca::new(OcaConfig {
            threads: THREADS[resume_threads],
            rng_seed: 0xDEAD_BEEF, // the checkpoint's recorded seed must win
            checkpoint: Some(CheckpointConfig {
                resume: ResumePolicy::Strict,
                ..CheckpointConfig::at(&path)
            }),
            ..base_config()
        })
        .run(graph());
        prop_assert_eq!(&r.cover, &base.plain.cover);
        prop_assert_eq!(r.seeds_tried, base.plain.seeds_tried);
        prop_assert_eq!(r.halt_reason, base.plain.halt_reason);
        let resumed_from = r.checkpoint.resumed_from_ticket.expect("run resumed");
        prop_assert!(resumed_from > 0 && resumed_from < base.plain.seeds_tried as u64);
        prop_assert!(!path.exists(), "the spent checkpoint is removed");
    }

    /// Damage a real checkpoint at a random spot — byte flip, truncation,
    /// or a version patch — and the strict policy refuses it with a typed
    /// error while salvage discards it and restarts clean. Garbage is
    /// never loaded as driver state.
    #[test]
    fn damaged_checkpoints_are_refused_never_loaded(
        raw_site in 0u64..1_000_000,
        kind in 0u8..3,
    ) {
        let base = baseline();
        let path = case_path("damage");
        killed_run(&path, 1 + raw_site % base.writes, 1);
        let pristine = std::fs::read(&path).unwrap();
        let mut bytes = pristine.clone();
        match kind {
            0 => {
                // Bit rot anywhere in the file.
                let at = (raw_site as usize) % bytes.len();
                bytes[at] ^= 0xFF;
            }
            1 => {
                // Truncation to any strictly shorter length.
                bytes.truncate((raw_site as usize) % bytes.len());
            }
            _ => {
                // A future format version (the u32 after the 8-byte magic).
                bytes[8..12].copy_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
            }
        }
        std::fs::write(&path, &bytes).unwrap();

        let strict = Oca::new(OcaConfig {
            checkpoint: Some(CheckpointConfig {
                resume: ResumePolicy::Strict,
                ..CheckpointConfig::at(&path)
            }),
            ..base_config()
        })
        .run_ctx(graph(), &DetectContext::new(0x0CA));
        match strict {
            Err(DetectError::Checkpoint { .. }) => {}
            Err(other) => panic!("expected a typed checkpoint refusal, got {other}"),
            Ok(_) => panic!("a damaged checkpoint must not resume"),
        }
        prop_assert!(path.exists(), "strict mode never deletes the evidence");

        let r = Oca::new(OcaConfig {
            checkpoint: Some(CheckpointConfig {
                resume: ResumePolicy::Salvage,
                ..CheckpointConfig::at(&path)
            }),
            ..base_config()
        })
        .run(graph());
        prop_assert_eq!(&r.cover, &base.plain.cover, "salvage restarts from scratch");
        prop_assert_eq!(r.checkpoint.resumed_from_ticket, None);
        prop_assert!(!path.exists(), "salvage consumed the damaged file");
    }

    /// Torn writes at a random cadence: failures are telemetry, the run's
    /// result is untouched, and the target path never holds a half-file.
    #[test]
    fn torn_writes_never_corrupt_the_run(every in 1u64..4) {
        let base = baseline();
        let path = case_path("torn");
        let faults = CheckpointFaults::new(CheckpointFaultSpec {
            torn_write_every: every,
            kill_after_writes: 0,
        });
        let r = Oca::new(OcaConfig {
            checkpoint: Some(CheckpointConfig {
                path: path.clone(),
                every_rounds: 1,
                resume: ResumePolicy::Strict,
                faults: faults.clone(),
            }),
            ..base_config()
        })
        .run(graph());
        prop_assert_eq!(&r.cover, &base.plain.cover);
        prop_assert_eq!(r.seeds_tried, base.plain.seeds_tried);
        prop_assert!(r.checkpoint.write_failures > 0);
        prop_assert_eq!(faults.counts().torn_writes, r.checkpoint.write_failures);
        prop_assert!(!path.exists(), "completed runs leave no checkpoint");
    }
}
