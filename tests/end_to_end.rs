//! End-to-end integration tests spanning all crates: generator → algorithm
//! → metrics, checking the paper's headline claims at test-friendly scale.

use oca::{HaltingConfig, Oca, OcaConfig, SearchConfig};
use oca_baselines::{cfinder, lfk, CFinderConfig, LfkConfig};
use oca_gen::{daisy_tree, lfr, planted_partition, DaisyParams, LfrParams};
use oca_metrics::{average_f1, omega_index, overlapping_nmi, theta};

fn quality_config(n: usize) -> OcaConfig {
    OcaConfig {
        halting: HaltingConfig {
            max_seeds: 4 * n,
            target_coverage: 0.99,
            stagnation_limit: 200,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn oca_recovers_planted_partition() {
    let pp = planted_partition(5, 20, 0.8, 0.02, 11);
    let result = Oca::new(quality_config(100)).run(&pp.graph);
    let th = theta(&pp.ground_truth, &result.cover);
    assert!(th > 0.9, "theta = {th} on an easy planted partition");
}

#[test]
fn oca_recovers_lfr_at_low_mixing() {
    let bench = lfr(&LfrParams::small(500, 0.2, 12));
    let result = Oca::new(quality_config(500)).run(&bench.graph);
    let th = theta(&bench.ground_truth, &result.cover);
    assert!(th > 0.85, "theta = {th} at mu = 0.2 (paper: near 1)");
}

#[test]
fn oca_degrades_gracefully_with_mixing() {
    // Fig. 2's monotone shape: quality at mu=0.2 should comfortably beat
    // quality at mu=0.8 (where no structure remains).
    let easy = lfr(&LfrParams::small(400, 0.2, 13));
    let hard = lfr(&LfrParams::small(400, 0.8, 13));
    let easy_theta = theta(
        &easy.ground_truth,
        &Oca::new(quality_config(400)).run(&easy.graph).cover,
    );
    let hard_theta = theta(
        &hard.ground_truth,
        &Oca::new(quality_config(400)).run(&hard.graph).cover,
    );
    assert!(
        easy_theta > hard_theta + 0.3,
        "expected clear separation, got {easy_theta} vs {hard_theta}"
    );
}

#[test]
fn oca_beats_baselines_on_overlapping_daisy() {
    // Fig. 3's claim: OCA handles the planted overlap best.
    let bench = daisy_tree(&DaisyParams::default_shape(100), 4, 0.05, 14);
    let n = bench.graph.node_count();

    let oca_theta = theta(
        &bench.ground_truth,
        &Oca::new(quality_config(n)).run(&bench.graph).cover,
    );
    let lfk_theta = theta(
        &bench.ground_truth,
        &lfk(&bench.graph, &LfkConfig::default()),
    );
    let cf_theta = theta(
        &bench.ground_truth,
        &cfinder(&bench.graph, &CFinderConfig::default())
            .unwrap()
            .cover,
    );
    assert!(
        oca_theta >= lfk_theta && oca_theta > cf_theta,
        "OCA {oca_theta} vs LFK {lfk_theta} vs CFinder {cf_theta}"
    );
    assert!(oca_theta > 0.9, "OCA theta {oca_theta} on daisy");
}

#[test]
fn oca_reports_overlapping_membership() {
    let bench = daisy_tree(&DaisyParams::default_shape(100), 2, 0.05, 15);
    let result = Oca::new(quality_config(300)).run(&bench.graph);
    assert!(
        result.cover.overlap_node_count() > 0,
        "daisy overlap nodes must appear in multiple communities"
    );
}

#[test]
fn full_pipeline_with_orphan_assignment() {
    let bench = lfr(&LfrParams::small(300, 0.3, 16));
    let config = OcaConfig {
        assign_orphans: true,
        ..quality_config(300)
    };
    let result = Oca::new(config).run(&bench.graph);
    // Connected LFR graph + orphan rule → everything covered.
    assert!(
        result.cover.orphans().len() < 10,
        "almost all nodes covered, {} orphans",
        result.cover.orphans().len()
    );
}

#[test]
fn metrics_agree_on_good_and_bad_structures() {
    let bench = lfr(&LfrParams::small(400, 0.2, 17));
    let found = Oca::new(quality_config(400)).run(&bench.graph).cover;
    let th = theta(&bench.ground_truth, &found);
    let nmi = overlapping_nmi(&bench.ground_truth, &found);
    let f1 = average_f1(&bench.ground_truth, &found);
    // All three metrics should agree this is a good reconstruction.
    for (name, value) in [("theta", th), ("nmi", nmi), ("f1", f1)] {
        assert!(value > 0.8, "{name} = {value}");
    }
}

#[test]
fn oca_finds_planted_overlap_in_overlapping_lfr() {
    let bench = oca_gen::lfr_overlapping(&oca_gen::LfrParams::small(400, 0.15, 19), 40, 2);
    let result = Oca::new(quality_config(400)).run(&bench.graph);
    let th = theta(&bench.ground_truth, &result.cover);
    assert!(th > 0.6, "theta = {th} on overlapping LFR");
    assert!(
        result.cover.overlap_node_count() > 0,
        "planted overlap should surface in the found cover"
    );
}

/// Fig. 2 protocol with the tuned preset's hub-search settings: per-ascent
/// budgets and covered-hub pruning buy wall-clock on scale-free graphs,
/// but on community-structured LFR they must not move the quality metrics
/// against the planted ground truth by more than seed-to-seed variance.
#[test]
fn budgeted_hub_search_matches_unbudgeted_quality_on_fig2() {
    let bench = lfr(&LfrParams::small(600, 0.25, 1234));
    let unbudgeted = Oca::new(quality_config(600)).run(&bench.graph);
    let n = bench.graph.node_count().max(1);
    let budgeted = Oca::new(OcaConfig {
        search: SearchConfig {
            budget_factor: 64.0,
            // The tuned preset's derivation: 8x average degree, floored.
            prune_hub_degree: (8 * (2 * bench.graph.edge_count() / n)).max(64),
            ..SearchConfig::default()
        },
        ..quality_config(600)
    })
    .run(&bench.graph);
    let theta_off = theta(&bench.ground_truth, &unbudgeted.cover);
    let theta_on = theta(&bench.ground_truth, &budgeted.cover);
    let omega_off = omega_index(&bench.ground_truth, &unbudgeted.cover);
    let omega_on = omega_index(&bench.ground_truth, &budgeted.cover);
    assert!(
        theta_off > 0.5 && theta_on > 0.5,
        "both runs should find most of the planted structure \
         (off {theta_off:.3}, on {theta_on:.3})"
    );
    assert!(
        (theta_off - theta_on).abs() < 0.15,
        "theta diverged: off {theta_off:.3} vs on {theta_on:.3}"
    );
    assert!(
        (omega_off - omega_on).abs() < 0.15,
        "omega diverged: off {omega_off:.3} vs on {omega_on:.3}"
    );
}

#[test]
fn parallel_matches_sequential_quality() {
    let bench = lfr(&LfrParams::small(400, 0.25, 18));
    let seq = Oca::new(quality_config(400)).run(&bench.graph);
    let par = Oca::new(OcaConfig {
        threads: 4,
        ..quality_config(400)
    })
    .run(&bench.graph);
    let seq_theta = theta(&bench.ground_truth, &seq.cover);
    let par_theta = theta(&bench.ground_truth, &par.cover);
    assert!(
        (seq_theta - par_theta).abs() < 0.15,
        "parallel quality {par_theta} far from sequential {seq_theta}"
    );
}
