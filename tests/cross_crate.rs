//! Cross-crate consistency checks: each crate's outputs satisfy the
//! contracts its consumers rely on.

use oca_baselines::{cfinder, label_propagation, CFinderConfig, LpaConfig};
use oca_gen::{
    barabasi_albert, daisy_tree, gnp, lfr, realized_mixing, rmat, wiki_like, DaisyParams,
    LfrParams, RmatParams, WikiLikeParams,
};
use oca_graph::{from_edges, Components, GraphStats};
use oca_metrics::{conductance, cover_quality, theta};
use oca_spectral::{interaction_strength, lambda_max, lambda_min, PowerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn every_generator_produces_valid_csr() {
    let mut rng = StdRng::seed_from_u64(1);
    let graphs = vec![
        lfr(&LfrParams::small(300, 0.3, 2)).graph,
        daisy_tree(&DaisyParams::default_shape(70), 3, 0.1, 3).graph,
        gnp(200, 0.05, &mut rng),
        barabasi_albert(200, 3, &mut rng),
        rmat(&RmatParams::graph500(9, 6), &mut rng),
        wiki_like(&WikiLikeParams::at_scale(9, 4)).graph,
    ];
    for g in &graphs {
        g.validate().expect("generator emitted invalid CSR");
    }
}

#[test]
fn ground_truth_covers_are_consistent_with_graphs() {
    let bench = lfr(&LfrParams::small(400, 0.3, 5));
    assert_eq!(bench.ground_truth.node_count(), bench.graph.node_count());
    // Planted communities should have noticeably better-than-random
    // internal structure.
    let q = cover_quality(&bench.graph, &bench.ground_truth);
    assert!(
        q.mean_conductance < 0.6,
        "conductance {}",
        q.mean_conductance
    );
    assert!((q.coverage - 1.0).abs() < 1e-12);
}

#[test]
fn lfr_mixing_parameter_is_respected_end_to_end() {
    for &mu in &[0.1, 0.4] {
        let bench = lfr(&LfrParams::small(600, mu, 6));
        let realized = realized_mixing(&bench);
        assert!(
            (realized - mu).abs() < 0.12,
            "mu {mu} realized as {realized}"
        );
    }
}

#[test]
fn spectral_bounds_hold_on_generated_graphs() {
    let cfg = PowerConfig::default();
    let bench = lfr(&LfrParams::small(300, 0.3, 7));
    let g = &bench.graph;
    let hi = lambda_max(g, &cfg).eigenvalue;
    let lo = lambda_min(g, &cfg).eigenvalue;
    let stats = GraphStats::compute(g);
    // Perron–Frobenius sandwich: avg degree ≤ λ_max ≤ max degree.
    assert!(hi <= stats.max_degree as f64 + 1e-6);
    assert!(hi >= stats.avg_degree - 1e-6);
    // λ_min ∈ [−λ_max, −1] for graphs with at least one edge.
    assert!(lo <= -1.0 + 1e-6);
    assert!(lo >= -hi - 1e-6);
    let c = interaction_strength(g, &cfg).c;
    assert!(c > 0.0 && c < 1.0);
}

#[test]
fn cfinder_communities_are_triangle_connected() {
    let bench = lfr(&LfrParams::small(200, 0.2, 8));
    let r = cfinder(&bench.graph, &CFinderConfig::default()).unwrap();
    // Every k=3 community must be connected in the underlying graph.
    for c in r.cover.communities() {
        let sub = oca_graph::Subgraph::induced(&bench.graph, c.members());
        assert!(
            oca_graph::is_connected(&sub.graph),
            "CPM community of size {} disconnected",
            c.len()
        );
    }
}

#[test]
fn lpa_partition_conductance_beats_random_split() {
    let bench = lfr(&LfrParams::small(300, 0.2, 9));
    let cover = label_propagation(&bench.graph, &LpaConfig::default());
    let q = cover_quality(&bench.graph, &cover);
    // A random half-half split has conductance ≈ mu-ish ≈ 0.8; LPA should
    // do far better on a structured graph.
    assert!(
        q.mean_conductance < 0.5,
        "conductance {}",
        q.mean_conductance
    );
}

#[test]
fn theta_is_maximal_exactly_on_ground_truth() {
    let bench = daisy_tree(&DaisyParams::default_shape(70), 2, 0.1, 10);
    let t_self = theta(&bench.ground_truth, &bench.ground_truth);
    assert!((t_self - 1.0).abs() < 1e-12);
    // A coarsening (whole graph as one community) must score lower.
    let blob = oca_graph::Cover::new(
        bench.graph.node_count(),
        vec![oca_graph::Community::from_raw(
            0..bench.graph.node_count() as u32,
        )],
    );
    assert!(theta(&bench.ground_truth, &blob) < 0.5);
}

#[test]
fn components_and_subgraph_compose() {
    let g = from_edges(10, [(0, 1), (1, 2), (3, 4), (4, 5), (5, 3), (6, 7)]);
    let comps = Components::compute(&g);
    for members in comps.members() {
        let sub = oca_graph::Subgraph::induced(&g, &members);
        assert!(oca_graph::is_connected(&sub.graph));
    }
}

#[test]
fn conductance_of_planted_blocks_is_low() {
    let pp = oca_gen::planted_partition(4, 25, 0.6, 0.01, 11);
    for c in pp.ground_truth.communities() {
        assert!(
            conductance(&pp.graph, c) < 0.25,
            "block conductance too high"
        );
    }
}
