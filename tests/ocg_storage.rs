//! Storage-layer contracts across the workspace: the mmap-backed `.ocg`
//! source must be *indistinguishable* from the in-RAM path.
//!
//! * Round-trip (property-based): for arbitrary edge multisets, the
//!   external-memory builder — forced through multi-run chunk merges —
//!   produces byte-for-byte the CSR, relabeling permutation, and payload
//!   checksum of `GraphBuilder::build_degree_ordered()`.
//! * Detector conformance: every registered detector produces a
//!   bit-identical cover on the mmap-backed graph and on the same graph
//!   held in owned `Vec`s, for a fixed seed.
//! * Threads determinism: detectors exposing a `threads` option stay
//!   bit-identical across thread counts when the graph is mmap-backed.
//! * Ingestion: gzip autodetection parses a compressed edge list to the
//!   same graph as the plain text, and I/O errors carry the file path.

use oca_repro::api::{registry, DetectorOptions, GraphSource};
use oca_repro::gen::{lfr, LfrParams};
use oca_repro::graph::{
    build_ocg_from_edges, build_ocg_from_path, open_ocg_path, payload_checksum,
    read_edge_list_path, read_edge_list_report_path, verify_ocg_path, write_edge_list_path,
    write_ocg_path, BuildOptions, GraphBuilder, Relabeling,
};
use oca_repro::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("oca_ocg_storage_{}_{name}", std::process::id()))
}

/// An LFR benchmark graph written as an edge list and built into a
/// degree-ordered `.ocg`, returning both loaded forms of the same graph.
fn lfr_both_sources(name: &str, n: usize, seed: u64) -> (CsrGraph, oca_repro::api::LoadedGraph) {
    let bench = lfr(&LfrParams::small(n, 0.3, seed));
    let edges = tmp(&format!("{name}.edges"));
    let ocg = tmp(&format!("{name}.ocg"));
    write_edge_list_path(&bench.graph, &edges).unwrap();
    build_ocg_from_path(
        &edges,
        &ocg,
        &BuildOptions {
            min_nodes: bench.graph.node_count(),
            ..BuildOptions::default()
        },
    )
    .unwrap();
    let loaded = GraphSource::from_path(&ocg).load().unwrap();
    assert!(loaded.graph.is_mapped(), "`.ocg` load must be mmap-backed");
    // The owned twin: the same degree-ordered graph built in RAM.
    let (in_ram, _) = bench.graph.clone().into_degree_ordered_pair();
    std::fs::remove_file(&edges).unwrap();
    std::fs::remove_file(&ocg).unwrap();
    (in_ram, loaded)
}

/// Helper: degree-order a graph in RAM, returning graph + relabeling.
trait DegreeOrdered {
    fn into_degree_ordered_pair(self) -> (CsrGraph, Relabeling);
}

impl DegreeOrdered for CsrGraph {
    fn into_degree_ordered_pair(self) -> (CsrGraph, Relabeling) {
        let relabeling = Relabeling::degree_descending(&self);
        (self.relabeled(&relabeling), relabeling)
    }
}

proptest! {
    /// The streamed external-memory build is bit-exact with the in-RAM
    /// builder: same CSR, same permutation, same checksum — even when the
    /// tiny chunk budget forces many spill runs and cross-run dedup.
    #[test]
    fn streamed_ocg_build_is_bit_exact(
        edges in prop::collection::vec((0u32..120, 0u32..120), 0..400),
        case in 0u32..1_000_000,
    ) {
        let n = 120usize;
        let path = tmp(&format!("prop_{case}.ocg"));

        // In-RAM reference: counting builder + degree-descending relabel.
        let (expect_graph, expect_report) = {
            let mut b = GraphBuilder::new(n);
            for &(u, v) in &edges {
                b.add_edge(u, v);
            }
            b.try_build_report().unwrap()
        };
        let expect_relabel = Relabeling::degree_descending(&expect_graph);
        let expect_graph = expect_graph.relabeled(&expect_relabel);

        // Streamed build with a floor-clamped chunk budget (1024 edges)
        // so multi-run merging is exercised whenever len > 1024.
        let stats = build_ocg_from_edges(
            edges.iter().copied(),
            &path,
            &BuildOptions {
                chunk_edges: 0,
                min_nodes: n,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let ocg = open_ocg_path(&path).unwrap();

        prop_assert_eq!(&ocg.graph, &expect_graph);
        prop_assert_eq!(ocg.relabeling().unwrap(), expect_relabel.clone());
        prop_assert_eq!(
            ocg.info.checksum,
            payload_checksum(&expect_graph, Some(&expect_relabel))
        );
        prop_assert_eq!(stats.self_loops, expect_report.self_loops);
        prop_assert_eq!(stats.duplicates, expect_report.duplicates);
        prop_assert_eq!(verify_ocg_path(&path).unwrap().checksum, ocg.info.checksum);
        std::fs::remove_file(&path).unwrap();
    }

    /// Writing an in-RAM graph with `write_ocg_path` and reopening it is
    /// the identity on graph, relabeling, and recorded build counts.
    #[test]
    fn write_ocg_round_trips(
        edges in prop::collection::vec((0u32..60, 0u32..60), 0..150),
        case in 0u32..1_000_000,
    ) {
        let n = 60usize;
        let path = tmp(&format!("prop_w_{case}.ocg"));
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let (graph, report) = b.try_build_report().unwrap();
        let relabeling = Relabeling::degree_descending(&graph);
        let graph = graph.relabeled(&relabeling);
        write_ocg_path(&graph, Some(&relabeling), report, &path).unwrap();
        let ocg = open_ocg_path(&path).unwrap();
        prop_assert_eq!(&ocg.graph, &graph);
        prop_assert_eq!(ocg.relabeling().unwrap(), relabeling);
        prop_assert_eq!(ocg.info.self_loops, report.self_loops);
        prop_assert_eq!(ocg.info.duplicates, report.duplicates);
        std::fs::remove_file(&path).unwrap();
    }
}

/// Every registered detector answers bit-identically on the mmap-backed
/// graph and its owned in-RAM twin: storage is invisible to detection.
#[test]
fn detectors_are_bitwise_identical_on_mmap_and_ram() {
    let (in_ram, loaded) = lfr_both_sources("conformance", 250, 33);
    assert!(!in_ram.is_mapped());
    assert_eq!(in_ram, loaded.graph, "the two sources must hold one graph");
    for spec in registry().iter() {
        let seed = 91;
        let d_ram = spec
            .experiment(&in_ram)
            .detect(&in_ram, &mut DetectContext::new(seed))
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
        let d_map = spec
            .experiment(&loaded.graph)
            .detect(&loaded.graph, &mut DetectContext::new(seed))
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
        assert_eq!(
            d_ram.cover,
            d_map.cover,
            "{}: cover differs between owned and mmap-backed storage",
            spec.name()
        );
        assert_eq!(d_ram.iterations, d_map.iterations, "{}", spec.name());
    }
}

/// The threads-determinism contract holds with an mmap-backed source:
/// thread count never changes the cover of a threaded detector.
#[test]
fn thread_count_is_invisible_on_mmap_graphs() {
    let (_, loaded) = lfr_both_sources("threads", 250, 57);
    let mut checked = 0;
    for spec in registry().iter() {
        if !spec.option_keys().contains(&"threads") {
            continue;
        }
        checked += 1;
        let mut reference: Option<Cover> = None;
        for threads in [1usize, 2, 4] {
            let detector = spec
                .build(&DetectorOptions::new().with("threads", &threads.to_string()))
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
            let detection = detector
                .detect(&loaded.graph, &mut DetectContext::new(17))
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
            match &reference {
                None => reference = Some(detection.cover),
                Some(cover) => assert_eq!(
                    &detection.cover,
                    cover,
                    "{}: cover differs at threads = {threads} on the mmap graph",
                    spec.name()
                ),
            }
        }
    }
    assert!(checked >= 1, "OCA must be covered by this contract");
}

/// A gzip-compressed edge list parses to the same graph as its plain
/// text, via magic-byte autodetection (the fixture was produced by
/// `gzip.compress` at level 9 with a zeroed mtime).
#[test]
fn gzip_edge_lists_parse_like_plain_text() {
    const PLAIN: &str = "# gzip fixture: 3-community toy graph\n\
                         0 1\n1 2\n0 2\n2 3\n3 4\n4 5\n3 5\n5 6\n6 7\n7 8\n6 8\n";
    const GZ: [u8; 92] = [
        0x1f, 0x8b, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02, 0x03, 0x0d, 0xc5, 0x4b, 0x0a, 0x80,
        0x20, 0x00, 0x05, 0xc0, 0xfd, 0x3b, 0xc5, 0x83, 0xd6, 0x41, 0xfe, 0xa5, 0xdb, 0x44, 0x94,
        0xb9, 0x30, 0x45, 0x14, 0xaa, 0xd3, 0xe7, 0x6c, 0x66, 0x62, 0xf8, 0x62, 0xe1, 0x19, 0x9f,
        0xd6, 0xeb, 0xb1, 0x52, 0xcd, 0x7b, 0x4e, 0xa9, 0xdf, 0xb1, 0xbd, 0x6c, 0xf9, 0x65, 0xa8,
        0x5b, 0xb9, 0xb0, 0x50, 0x40, 0x50, 0x8e, 0x25, 0x24, 0x15, 0x14, 0x35, 0x34, 0xcd, 0xd8,
        0xc0, 0xd0, 0xc2, 0xd2, 0xc1, 0xd1, 0x8f, 0x3d, 0x7e, 0x71, 0xcd, 0xfc, 0x1c, 0x52, 0x00,
        0x00, 0x00,
    ];
    let plain_path = tmp("fixture.edges");
    let gz_path = tmp("fixture.edges.gz");
    std::fs::write(&plain_path, PLAIN).unwrap();
    std::fs::write(&gz_path, GZ).unwrap();
    let plain = read_edge_list_path(&plain_path).unwrap();
    let (gz, report) = read_edge_list_report_path(&gz_path).unwrap();
    assert_eq!(plain, gz);
    assert_eq!(report.edges_read, 11);
    // And the compressed form builds the same `.ocg` as the plain one.
    let ocg_a = tmp("fixture_a.ocg");
    let ocg_b = tmp("fixture_b.ocg");
    let opts = BuildOptions::default();
    build_ocg_from_path(&plain_path, &ocg_a, &opts).unwrap();
    build_ocg_from_path(&gz_path, &ocg_b, &opts).unwrap();
    let a = open_ocg_path(&ocg_a).unwrap();
    let b = open_ocg_path(&ocg_b).unwrap();
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.info.checksum, b.info.checksum);
    for p in [&plain_path, &gz_path, &ocg_a, &ocg_b] {
        std::fs::remove_file(p).unwrap();
    }
}

/// I/O failures name the offending file, end to end.
#[test]
fn edge_list_errors_carry_the_path() {
    let missing = tmp("definitely_missing.edges");
    let err = read_edge_list_path(&missing).unwrap_err().to_string();
    assert!(
        err.contains("definitely_missing.edges"),
        "path missing from error: {err}"
    );
    // The streamed builder reports its *input* path the same way.
    let out = tmp("never_written.ocg");
    let err = build_ocg_from_path(&missing, &out, &BuildOptions::default())
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("definitely_missing.edges"),
        "path missing from builder error: {err}"
    );
}

/// The serve layer answers in input ids when given a relabeled mmap
/// graph: a query round-trip through `Server::with_relabeling` returns
/// member ids that exist in the input space and match the translated
/// cover.
#[test]
fn serve_translates_ids_over_a_relabeled_graph() {
    use std::sync::Arc;
    let (_, loaded) = lfr_both_sources("serve_ids", 150, 71);
    let relabeling = loaded.relabeling.clone().expect("LFR graphs relabel");
    let graph = Arc::new(loaded.graph.clone());
    // One community in compact space: the three highest-degree nodes.
    let cover = Cover::new(graph.node_count(), vec![Community::from_raw([0u32, 1, 2])]);
    let server = Server::new(Arc::clone(&graph), cover, ServeConfig::default(), None)
        .unwrap()
        .with_relabeling(relabeling.clone())
        .unwrap();
    let cancel = server.cancel_token();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run(listener));
        let mut client = Client::connect(addr).unwrap();
        // Ask for the input id of compact node 0; the answer's members
        // must be the input ids of compact {0, 1, 2}.
        let hub_input = relabeling.to_original(NodeId(0)).raw();
        let response = client.request(&format!("query {hub_input}")).unwrap();
        assert!(response.contains("\"ok\":true"), "{response}");
        let mut expect: Vec<u32> = (0..3u32)
            .map(|v| relabeling.to_original(NodeId(v)).raw())
            .collect();
        expect.sort_unstable();
        // Members are emitted in compact order; parse them back out.
        let members_part = response.split("\"members\":[").nth(1).unwrap();
        let members_str = members_part.split(']').next().unwrap();
        let mut got: Vec<u32> = members_str.split(',').map(|s| s.parse().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, expect, "{response}");
        cancel.cancel();
        handle.join().unwrap().unwrap();
    });
}
