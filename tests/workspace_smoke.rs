//! Workspace wiring smoke test: proves the facade crate's re-exports and
//! prelude resolve, and that the default pipeline produces a cover — the
//! minimal "the nine-crate DAG is assembled correctly" check.

use oca_repro::prelude::{
    rho, theta, Community, Cover, CsrGraph, GraphBuilder, NodeId, Oca, OcaConfig,
};

/// Two 4-cliques sharing node 3 — the smallest interesting overlap.
fn two_cliques() -> CsrGraph {
    let mut b = GraphBuilder::new(7);
    for base in [0u32, 3] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.add_edge(base + i, base + j);
            }
        }
    }
    b.build()
}

#[test]
fn prelude_types_resolve_and_interoperate() {
    let g = two_cliques();
    assert_eq!(g.node_count(), 7);
    assert_eq!(g.edge_count(), 12);
    assert!(g.has_edge(NodeId::new(3), NodeId::new(6)));

    let a = Community::from_raw([0, 1, 2, 3]);
    let b = Community::from_raw([3, 4, 5, 6]);
    assert!((rho(&a, &a) - 1.0).abs() < 1e-12);

    let cover = Cover::new(7, vec![a, b]);
    assert_eq!(theta(&cover, &cover), 1.0);
    assert!(cover.orphans().is_empty());
}

#[test]
fn run_default_finds_a_nonempty_cover_on_a_clique_graph() {
    let g = two_cliques();
    let result = oca_repro::core_alg::run_default(&g);
    assert!(
        !result.cover.is_empty(),
        "default OCA run found no communities on two overlapping cliques"
    );
    assert!(result.c > 0.0, "interaction strength must be positive");
    assert!(result.seeds_tried > 0);

    // Every reported community must be internally connected enough to be a
    // community at all: at least one internal edge per member pair subset.
    for community in result.cover.communities() {
        assert!(community.len() >= 2);
        assert!(community.internal_edges(&g) >= community.len() - 1);
    }
}

#[test]
fn configured_oca_agrees_with_facade_paths() {
    let g = two_cliques();
    let via_facade = Oca::new(OcaConfig::default()).run(&g);
    let via_crate = oca::Oca::new(oca::OcaConfig::default()).run(&g);
    assert_eq!(
        via_facade.cover, via_crate.cover,
        "facade must re-export the same types"
    );
}
