//! Integration tests for the Section VI pipeline: OCA output → community
//! graph → dendrogram → summary.

use oca::{HaltingConfig, Oca, OcaConfig};
use oca_gen::{daisy_tree, lfr, DaisyParams, LfrParams};
use oca_hierarchy::{CommunityGraph, Dendrogram, Linkage, Summary};
use oca_metrics::theta;

fn detect(graph: &oca_graph::CsrGraph) -> oca_graph::Cover {
    Oca::new(OcaConfig {
        halting: HaltingConfig {
            max_seeds: 4 * graph.node_count(),
            target_coverage: 0.99,
            stagnation_limit: 150,
            ..Default::default()
        },
        ..Default::default()
    })
    .run(graph)
    .cover
}

#[test]
fn community_graph_reflects_daisy_overlap() {
    let bench = daisy_tree(&DaisyParams::default_shape(100), 2, 0.05, 31);
    let cover = detect(&bench.graph);
    let cg = CommunityGraph::build(&bench.graph, &cover);
    // Petals overlap the core: at least one pair must share nodes.
    let has_overlap = cg
        .related_pairs()
        .iter()
        .any(|&(_, _, overlap, _)| overlap > 0);
    assert!(has_overlap, "daisy cover should have overlapping pairs");
}

#[test]
fn dendrogram_cuts_interpolate_between_cover_and_root() {
    let bench = lfr(&LfrParams::small(300, 0.25, 32));
    let cover = detect(&bench.graph);
    let d = Dendrogram::build(&bench.graph, &cover, Linkage::Combined);
    let fine = d.cut(1.01);
    let coarse = d.cut(0.0);
    assert_eq!(fine.len(), cover.len(), "threshold above 1 keeps the base");
    assert!(coarse.len() <= fine.len());
    // Monotonicity of community count along the threshold sweep.
    let mut last = usize::MAX;
    for t in [0.9, 0.6, 0.3, 0.0] {
        let cut = d.cut(t);
        assert!(cut.len() <= last, "cut at {t} grew the cover");
        last = cut.len();
    }
}

#[test]
fn cutting_never_loses_nodes() {
    let bench = lfr(&LfrParams::small(300, 0.3, 33));
    let cover = detect(&bench.graph);
    let d = Dendrogram::build(&bench.graph, &cover, Linkage::Combined);
    let cut = d.cut(0.2);
    assert_eq!(
        cut.orphans().len(),
        cover.orphans().len(),
        "merging communities must not change which nodes are covered"
    );
}

#[test]
fn summary_of_good_cover_is_compact_and_faithful() {
    let bench = lfr(&LfrParams::small(400, 0.2, 34));
    let cover = detect(&bench.graph);
    assert!(
        theta(&bench.ground_truth, &cover) > 0.8,
        "precondition: decent cover"
    );
    let s = Summary::build(&bench.graph, &cover);
    assert!(
        s.compression_ratio(&bench.graph) < 0.5,
        "ratio {}",
        s.compression_ratio(&bench.graph)
    );
    assert!(
        s.reconstruction_error(&bench.graph) < 0.5,
        "error {}",
        s.reconstruction_error(&bench.graph)
    );
}

#[test]
fn summary_of_ground_truth_beats_random_cover() {
    let bench = lfr(&LfrParams::small(300, 0.2, 35));
    let good = Summary::build(&bench.graph, &bench.ground_truth);
    // A deliberately wrong cover: nodes sliced by index ranges.
    let k = bench.ground_truth.len();
    let size = bench.graph.node_count() / k;
    let wrong = oca_graph::Cover::new(
        bench.graph.node_count(),
        (0..k)
            .map(|i| {
                oca_graph::Community::from_raw(
                    (i * size) as u32..((i + 1) * size).min(bench.graph.node_count()) as u32,
                )
            })
            .collect(),
    );
    let bad = Summary::build(&bench.graph, &wrong);
    assert!(
        good.reconstruction_error(&bench.graph) < bad.reconstruction_error(&bench.graph),
        "true structure should summarize better: {} vs {}",
        good.reconstruction_error(&bench.graph),
        bad.reconstruction_error(&bench.graph)
    );
}
