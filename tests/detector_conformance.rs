//! Detector conformance suite: one shared set of contracts, asserted
//! against **every** entry of the `oca-api` registry. A newly registered
//! backend gets the full battery for free:
//!
//! * determinism under a fixed [`DetectContext`] seed — including, for
//!   any detector that exposes a `threads` option, bit-identical results
//!   at every thread count;
//! * valid covers (member ids in range, no empty communities, matching
//!   node count) on edge-case graphs — empty, singleton, disconnected,
//!   star;
//! * monotone per-stage progress ticks (completed work only);
//! * prompt cooperative cancellation with a partial-result error.

use oca_repro::gen::{lfr, LfrParams};
use oca_repro::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Builds every registered detector in its experiment-grade preset.
fn all_detectors(graph: &CsrGraph) -> Vec<(&'static str, Box<dyn CommunityDetector>)> {
    registry()
        .iter()
        .map(|spec| (spec.name(), spec.experiment(graph)))
        .collect()
}

fn edge_case_graphs() -> Vec<(&'static str, CsrGraph)> {
    let empty = CsrGraph::empty(0);
    let singleton = CsrGraph::empty(1);
    // Two 4-cliques with no connection between them.
    let mut edges = Vec::new();
    for base in [0u32, 4] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                edges.push((base + i, base + j));
            }
        }
    }
    let disconnected = oca_repro::graph::from_edges(8, edges);
    // A star: hub 0 with 12 leaves (no triangles at all).
    let star = oca_repro::graph::from_edges(13, (1..13u32).map(|leaf| (0, leaf)));
    vec![
        ("empty", empty),
        ("singleton", singleton),
        ("disconnected", disconnected),
        ("star", star),
    ]
}

/// A cover is valid for a graph when its node count matches, every member
/// id is in range, and no community is empty.
fn assert_valid_cover(name: &str, graph_name: &str, graph: &CsrGraph, cover: &Cover) {
    assert_eq!(
        cover.node_count(),
        graph.node_count(),
        "{name} on {graph_name}: cover node count mismatch"
    );
    for (i, community) in cover.communities().iter().enumerate() {
        assert!(
            !community.is_empty(),
            "{name} on {graph_name}: community #{i} is empty"
        );
        for &v in community.members() {
            assert!(
                v.index() < graph.node_count(),
                "{name} on {graph_name}: member {v:?} out of range"
            );
        }
    }
}

#[test]
fn every_detector_is_deterministic_under_a_fixed_seed() {
    let bench = lfr(&LfrParams::small(300, 0.3, 11));
    for (name, detector) in all_detectors(&bench.graph) {
        let a = detector
            .detect(&bench.graph, &mut DetectContext::new(17))
            .unwrap();
        let b = detector
            .detect(&bench.graph, &mut DetectContext::new(17))
            .unwrap();
        assert_eq!(a.cover, b.cover, "{name}: covers differ across runs");
        assert_eq!(
            a.iterations, b.iterations,
            "{name}: iteration counts differ across runs"
        );
    }
}

/// Every detector that exposes a `threads` option must produce the same
/// detection at any thread count: parallelism buys wall-clock time, never
/// a different answer. Registered via the option key, so a future
/// threaded backend inherits this contract automatically.
#[test]
fn thread_count_never_changes_a_threaded_detectors_output() {
    let bench = lfr(&LfrParams::small(300, 0.3, 41));
    let mut checked = 0;
    for spec in registry().iter() {
        if !spec.option_keys().contains(&"threads") {
            continue;
        }
        checked += 1;
        let mut reference = None;
        for threads in [1usize, 2, 4] {
            let detector = spec
                .build(&DetectorOptions::new().with("threads", &threads.to_string()))
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
            let detection = detector
                .detect(&bench.graph, &mut DetectContext::new(17))
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
            match &reference {
                None => reference = Some(detection),
                Some(r) => {
                    assert_eq!(
                        detection.cover,
                        r.cover,
                        "{}: cover differs at threads = {threads}",
                        spec.name()
                    );
                    assert_eq!(
                        detection.iterations,
                        r.iterations,
                        "{}: iteration cutoff differs at threads = {threads}",
                        spec.name()
                    );
                }
            }
        }
    }
    assert!(checked >= 1, "OCA must be covered by this contract");
}

/// Every hub-search option — ascent budgets, covered-hub pruning, the
/// penalized move rule and its tabu/plateau knobs — must preserve the
/// thread-determinism contract: for a fixed seed the detection is
/// bit-identical at any thread count, because each feature is a pure
/// function of the ticket and the shared round-start coverage snapshot.
#[test]
fn hub_search_options_preserve_thread_determinism() {
    let bench = lfr(&LfrParams::small(300, 0.3, 41));
    let reg = registry();
    let option_sets: [&[(&str, &str)]; 5] = [
        &[("ascent-budget", "4")],
        &[("hub-prune-degree", "8")],
        &[("move-rule", "penalized")],
        &[
            ("move-rule", "penalized"),
            ("plateau-moves", "8"),
            ("tabu-tenure", "4"),
        ],
        &[
            ("ascent-budget", "6"),
            ("hub-prune-degree", "8"),
            ("move-rule", "penalized"),
            ("plateau-moves", "8"),
            ("tabu-tenure", "4"),
        ],
    ];
    for set in option_sets {
        let mut reference = None;
        for threads in [1usize, 2, 4] {
            let mut opts = DetectorOptions::new().with("threads", &threads.to_string());
            for (key, value) in set {
                opts = opts.with(key, value);
            }
            let detector = reg
                .build("oca", &opts)
                .unwrap_or_else(|e| panic!("{set:?}: {e}"));
            let detection = detector
                .detect(&bench.graph, &mut DetectContext::new(17))
                .unwrap_or_else(|e| panic!("{set:?}: {e}"));
            match &reference {
                None => reference = Some(detection),
                Some(r) => {
                    assert_eq!(
                        detection.cover, r.cover,
                        "{set:?}: cover differs at threads = {threads}"
                    );
                    assert_eq!(
                        detection.iterations, r.iterations,
                        "{set:?}: iteration cutoff differs at threads = {threads}"
                    );
                }
            }
        }
    }
}

/// Progress ticks report *completed* work: per stage, `done` must be
/// monotone non-decreasing, and ticking a count captured before the work
/// ran (the old OCA driver's bug) is a contract violation.
#[test]
fn progress_ticks_are_monotone_per_stage() {
    let bench = lfr(&LfrParams::small(300, 0.3, 37));
    for (name, detector) in all_detectors(&bench.graph) {
        let violations: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let last_by_stage: Arc<Mutex<Vec<(&'static str, usize)>>> =
            Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&violations);
        let lasts = Arc::clone(&last_by_stage);
        let mut ctx = DetectContext::new(3).with_progress(move |p: Progress| {
            let mut lasts = lasts.lock().unwrap();
            match lasts.iter_mut().find(|(stage, _)| *stage == p.stage) {
                Some((stage, last)) => {
                    if p.done < *last {
                        sink.lock()
                            .unwrap()
                            .push(format!("stage {stage}: {} after {last}", p.done));
                    }
                    *last = p.done;
                }
                None => lasts.push((p.stage, p.done)),
            }
        });
        let detection = detector.detect(&bench.graph, &mut ctx).unwrap();
        let violations = violations.lock().unwrap();
        assert!(
            violations.is_empty(),
            "{name}: non-monotone ticks: {violations:?}"
        );
        // OCA's ascent stage must report every seed, the last one included.
        if name == "oca" {
            let lasts = last_by_stage.lock().unwrap();
            let (_, last) = lasts
                .iter()
                .find(|(stage, _)| *stage == "ascent")
                .expect("oca ticks the ascent stage");
            assert_eq!(
                *last, detection.iterations,
                "oca: final tick must report the last ascent"
            );
        }
    }
}

#[test]
fn every_detector_produces_valid_covers_on_edge_case_graphs() {
    for (graph_name, graph) in edge_case_graphs() {
        for (name, detector) in all_detectors(&graph) {
            let detection = detector
                .detect(&graph, &mut DetectContext::new(5))
                .unwrap_or_else(|e| panic!("{name} failed on {graph_name}: {e}"));
            assert!(
                detection.complete,
                "{name} incomplete on {graph_name} without a cap or cancellation"
            );
            assert_valid_cover(name, graph_name, &graph, &detection.cover);
        }
    }
}

/// The edge-case and determinism contracts also hold for OCA's optional
/// degree-ordered relabeling pass (covers must come back in original ids
/// even on degenerate graphs; see tests/relabeling.rs for the quality and
/// thread-count contracts).
#[test]
fn oca_relabeling_passes_the_edge_case_contracts() {
    let reg = registry();
    for (graph_name, graph) in edge_case_graphs() {
        let opts = DetectorOptions::new().with("relabel", "true");
        let detector = reg.build("oca", &opts).expect("relabel is a valid option");
        let a = detector
            .detect(&graph, &mut DetectContext::new(5))
            .unwrap_or_else(|e| panic!("oca+relabel failed on {graph_name}: {e}"));
        assert_valid_cover("oca+relabel", graph_name, &graph, &a.cover);
        let b = detector.detect(&graph, &mut DetectContext::new(5)).unwrap();
        assert_eq!(a.cover, b.cover, "oca+relabel on {graph_name}");
    }
}

#[test]
fn disconnected_cliques_are_found_separately() {
    let (_, disconnected) = edge_case_graphs().remove(2);
    let mut checked = 0;
    for spec in registry().iter() {
        // Point-query detectors (a `seed-node` option) answer for one
        // node, so one community is the *correct* cover here — the
        // whole-graph contract applies to global detectors only.
        if spec.option_keys().contains(&"seed-node") {
            continue;
        }
        checked += 1;
        let (name, detector) = (spec.name(), spec.experiment(&disconnected));
        let detection = detector
            .detect(&disconnected, &mut DetectContext::new(1))
            .unwrap();
        assert!(
            detection.cover.len() >= 2,
            "{name}: two disjoint cliques should yield at least two communities, got {}",
            detection.cover.len()
        );
        assert_eq!(detection.cover.overlap_node_count(), 0, "{name}");
    }
    assert!(checked >= 5, "the global detectors must stay covered");
}

/// The query-centric entry point: with `seed-node` pinned, every run of
/// `oca-local` answers with exactly one community containing the query,
/// identically across seeds of the surrounding context only when the
/// context seed is fixed (the seed drives the neighborhood expansion).
#[test]
fn oca_local_answers_for_the_pinned_query_node() {
    let (_, disconnected) = edge_case_graphs().remove(2);
    let reg = registry();
    for query in ["0", "5"] {
        let detector = reg
            .build(
                "oca-local",
                &DetectorOptions::new()
                    .with("seed-node", query)
                    .with("fixed-c", "0.9"),
            )
            .unwrap();
        let a = detector
            .detect(&disconnected, &mut DetectContext::new(9))
            .unwrap();
        let b = detector
            .detect(&disconnected, &mut DetectContext::new(9))
            .unwrap();
        assert_eq!(a.cover, b.cover, "query {query}: not deterministic");
        assert_eq!(a.cover.len(), 1, "query {query}: expected one community");
        let q: u32 = query.parse().unwrap();
        let community = &a.cover.communities()[0];
        assert!(community.contains(NodeId(q)), "query {query} not answered");
        // Disjoint cliques: the answer is exactly the query's own clique.
        let base = (q / 4) * 4;
        let members: Vec<u32> = community.members().iter().map(|v| v.raw()).collect();
        assert_eq!(members, (base..base + 4).collect::<Vec<_>>());
    }
}

#[test]
fn pre_cancelled_contexts_fail_promptly_with_a_partial_result() {
    let bench = lfr(&LfrParams::small(2000, 0.3, 23));
    for (name, detector) in all_detectors(&bench.graph) {
        let token = CancelToken::new();
        token.cancel();
        let mut ctx = DetectContext::new(7).with_cancel(token);
        let start = Instant::now();
        let result = detector.detect(&bench.graph, &mut ctx);
        let waited = start.elapsed();
        match result {
            Err(DetectError::Cancelled { partial }) => {
                assert!(!partial.complete, "{name}: partial flagged complete");
                assert_valid_cover(name, "lfr", &bench.graph, &partial.cover);
            }
            other => panic!("{name}: expected Cancelled, got {other:?}"),
        }
        assert!(
            waited < Duration::from_secs(5),
            "{name}: cancellation took {waited:?}"
        );
    }
}

#[test]
fn cancellation_from_a_progress_callback_is_honoured() {
    let bench = lfr(&LfrParams::small(1000, 0.3, 29));
    for (name, detector) in all_detectors(&bench.graph) {
        let token = CancelToken::new();
        let trigger = token.clone();
        let mut ctx = DetectContext::new(7)
            .with_cancel(token)
            .with_progress(move |_: Progress| trigger.cancel());
        match detector.detect(&bench.graph, &mut ctx) {
            Err(DetectError::Cancelled { .. }) => {}
            Ok(detection) => panic!(
                "{name}: completed ({} communities) despite cancellation at first tick",
                detection.cover.len()
            ),
            Err(other) => panic!("{name}: unexpected error {other}"),
        }
    }
}

#[test]
fn detection_telemetry_is_uniform() {
    let bench = lfr(&LfrParams::small(300, 0.3, 31));
    for (name, detector) in all_detectors(&bench.graph) {
        let detection = detector
            .detect(&bench.graph, &mut DetectContext::new(3))
            .unwrap();
        assert!(detection.complete, "{name}");
        assert!(
            detection.iterations > 0,
            "{name}: no outer iterations reported"
        );
        assert!(
            detection.elapsed > Duration::ZERO,
            "{name}: elapsed not measured"
        );
    }
}

#[test]
fn registry_and_display_names_stay_in_sync() {
    let g = CsrGraph::empty(0);
    let reg = registry();
    let mut display: Vec<&str> = Vec::new();
    for spec in reg.iter() {
        let detector = spec.experiment(&g);
        display.push(detector.name());
    }
    let total = display.len();
    display.sort_unstable();
    display.dedup();
    assert_eq!(display.len(), total, "display names must be unique");
    assert_eq!(total, reg.names().len());
}
