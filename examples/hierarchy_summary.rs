//! Future-work tour (paper Section VI): community hierarchy and graph
//! summarization on top of OCA's overlapping cover.
//!
//! ```text
//! cargo run --release --example hierarchy_summary
//! ```

use oca::{Oca, OcaConfig};
use oca_gen::{daisy_tree, DaisyParams};
use oca_hierarchy::{CommunityGraph, Dendrogram, Linkage, Summary};

fn main() {
    let bench = daisy_tree(&DaisyParams::default_shape(100), 4, 0.05, 99);
    println!(
        "daisy tree: {} nodes, {} edges, {} planted communities",
        bench.graph.node_count(),
        bench.graph.edge_count(),
        bench.ground_truth.len()
    );

    let result = Oca::new(OcaConfig::default()).run(&bench.graph);
    println!("OCA found {} communities\n", result.cover.len());

    // 1. Relations among communities (community graph).
    let cg = CommunityGraph::build(&bench.graph, &result.cover);
    let pairs = cg.related_pairs();
    println!("community graph: {} related pairs", pairs.len());
    for &(i, j, overlap, cross) in pairs.iter().take(8) {
        println!(
            "  #{i} ~ #{j}: {overlap} shared nodes, {cross} cross edges, jaccard {:.3}",
            cg.overlap_similarity(i as usize, j as usize)
        );
    }

    // 2. The hierarchy: cut the dendrogram at decreasing thresholds.
    let dendro = Dendrogram::build(&bench.graph, &result.cover, Linkage::Combined);
    println!("\ndendrogram: {} merge steps", dendro.merges().len());
    for threshold in [0.8, 0.4, 0.2, 0.05] {
        let cut = dendro.cut(threshold);
        println!("  cut at {threshold:.2}: {} communities", cut.len());
    }

    // 3. Summarization with fidelity numbers.
    let summary = Summary::build(&bench.graph, &result.cover);
    println!(
        "\nsummary: {} supernodes, {} superedges",
        summary.len(),
        summary.superedge_count()
    );
    println!(
        "compression ratio    {:.4} (lower = smaller summary)",
        summary.compression_ratio(&bench.graph)
    );
    println!(
        "reconstruction error {:.4} (0 = lossless)",
        summary.reconstruction_error(&bench.graph)
    );
}
