//! The vector-space view (Section II): compute the interaction strength of
//! different graph families and watch how `c = −1/λ_min` tracks structure.
//!
//! ```text
//! cargo run --release --example spectral_embedding
//! ```

use oca::fitness;
use oca_gen::{gnp, lfr, LfrParams};
use oca_graph::from_edges;
use oca_spectral::{interaction_strength, PowerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = PowerConfig::default();
    let mut rng = StdRng::seed_from_u64(1);

    println!("{:<28} {:>10} {:>8}", "graph", "lambda_min", "c");
    let show = |name: &str, g: &oca_graph::CsrGraph| {
        let s = interaction_strength(g, &cfg);
        println!("{name:<28} {:>10.3} {:>8.4}", s.lambda_min, s.c);
    };

    // K2: the extreme case, c → 1.
    show("single edge (K2)", &from_edges(2, [(0, 1)]));
    // A star: bipartite, lambda_min = -sqrt(deg).
    let star: Vec<(u32, u32)> = (1..=16u32).map(|i| (0, i)).collect();
    show("star K_{1,16}", &from_edges(17, star));
    // A community-structured LFR graph.
    show(
        "LFR n=1000 (mu=0.2)",
        &lfr(&LfrParams::small(1000, 0.2, 3)).graph,
    );
    // A structureless random graph of the same density.
    show("G(n=1000, p=0.02)", &gnp(1000, 0.02, &mut rng));

    // The fitness separation of Example 2 in the paper: at the same c, a
    // clique scores Θ(k²) while an independent set scores k.
    let c = 0.5;
    println!("\nExample 2 of the paper (c = {c}): phi-based fitness separation");
    println!("{:<8} {:>14} {:>18}", "k", "L(clique)", "L(independent)");
    for k in [4usize, 8, 16, 32] {
        println!(
            "{k:<8} {:>14.3} {:>18.3}",
            fitness(k, k * (k - 1) / 2, c),
            fitness(k, 0, c)
        );
    }
}
