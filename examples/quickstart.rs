//! Quickstart: find overlapping communities in Zachary's karate club.
//!
//! The karate club is the canonical social-network test case: 34 members,
//! 78 friendship ties, and a famous split into two factions — with a
//! handful of members socially tied to both. OCA's overlapping output
//! shows exactly those bridge members in more than one community.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use oca::{Oca, OcaConfig};
use oca_graph::from_edges;

/// Zachary (1977), 0-indexed edge list.
const KARATE: [(u32, u32); 78] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (0, 4),
    (0, 5),
    (0, 6),
    (0, 7),
    (0, 8),
    (0, 10),
    (0, 11),
    (0, 12),
    (0, 13),
    (0, 17),
    (0, 19),
    (0, 21),
    (0, 31),
    (1, 2),
    (1, 3),
    (1, 7),
    (1, 13),
    (1, 17),
    (1, 19),
    (1, 21),
    (1, 30),
    (2, 3),
    (2, 7),
    (2, 8),
    (2, 9),
    (2, 13),
    (2, 27),
    (2, 28),
    (2, 32),
    (3, 7),
    (3, 12),
    (3, 13),
    (4, 6),
    (4, 10),
    (5, 6),
    (5, 10),
    (5, 16),
    (6, 16),
    (8, 30),
    (8, 32),
    (8, 33),
    (9, 33),
    (13, 33),
    (14, 32),
    (14, 33),
    (15, 32),
    (15, 33),
    (18, 32),
    (18, 33),
    (19, 33),
    (20, 32),
    (20, 33),
    (22, 32),
    (22, 33),
    (23, 25),
    (23, 27),
    (23, 29),
    (23, 32),
    (23, 33),
    (24, 25),
    (24, 27),
    (24, 31),
    (25, 31),
    (26, 29),
    (26, 33),
    (27, 33),
    (28, 31),
    (28, 33),
    (29, 32),
    (29, 33),
    (30, 32),
    (30, 33),
    (31, 32),
    (31, 33),
    (32, 33),
];

fn main() {
    let graph = from_edges(34, KARATE);
    println!(
        "Zachary's karate club: {} members, {} ties",
        graph.node_count(),
        graph.edge_count()
    );

    let result = Oca::new(OcaConfig {
        assign_orphans: true,
        ..Default::default()
    })
    .run(&graph);

    println!(
        "interaction strength c = {:.4} (lambda_min = {:.3})",
        result.c, result.lambda_min
    );
    println!(
        "found {} communities from {} seeds in {:?}\n",
        result.cover.len(),
        result.seeds_tried,
        result.elapsed
    );
    for (i, community) in result.cover.communities().iter().enumerate() {
        let ids: Vec<String> = community.members().iter().map(|v| v.to_string()).collect();
        println!(
            "community #{i} ({} members): {}",
            community.len(),
            ids.join(" ")
        );
    }

    let overlapping: Vec<String> = result
        .cover
        .membership_index()
        .iter()
        .enumerate()
        .filter(|(_, m)| m.len() > 1)
        .map(|(v, _)| v.to_string())
        .collect();
    println!(
        "\nmembers in more than one community: {}",
        if overlapping.is_empty() {
            "none".to_string()
        } else {
            overlapping.join(" ")
        }
    );
}
