//! Daisy-tree demo: the paper's own overlapping benchmark (Section V).
//!
//! Generates a daisy tree — flowers of petals glued to a core, where some
//! nodes belong to both a petal and the core — runs OCA, and scores the
//! result with the paper's suitability Θ (eq. V.2).
//!
//! ```text
//! cargo run --release --example daisy_demo
//! ```

use oca::{Oca, OcaConfig};
use oca_gen::{daisy_tree, DaisyParams};
use oca_metrics::{overlapping_nmi, theta};

fn main() {
    let params = DaisyParams {
        p: 5,
        q: 7,
        n: 100,
        alpha: 0.9,
        beta: 0.9,
    };
    let bench = daisy_tree(&params, 9, 0.05, 4242);
    println!(
        "daisy tree: {} nodes, {} edges, {} planted communities ({} overlap nodes)",
        bench.graph.node_count(),
        bench.graph.edge_count(),
        bench.ground_truth.len(),
        bench.ground_truth.overlap_node_count()
    );

    let result = Oca::new(OcaConfig::default()).run(&bench.graph);
    println!(
        "OCA: {} communities in {:?} (c = {:.4})",
        result.cover.len(),
        result.elapsed,
        result.c
    );
    println!(
        "Theta  (paper eq. V.2) = {:.3}",
        theta(&bench.ground_truth, &result.cover)
    );
    println!(
        "NMI    (LFK overlap)   = {:.3}",
        overlapping_nmi(&bench.ground_truth, &result.cover)
    );
    println!(
        "found overlap nodes    = {}",
        result.cover.overlap_node_count()
    );

    // Show that the overlap is real: print one node in two communities.
    if let Some((node, memberships)) = result
        .cover
        .membership_index()
        .iter()
        .enumerate()
        .find(|(_, m)| m.len() > 1)
    {
        println!(
            "\nexample: node {node} belongs to communities {:?} — petal and core",
            memberships
        );
    }
}
