//! Head-to-head comparison: OCA vs LFK vs CFinder vs LPA on one LFR graph.
//!
//! A miniature of the paper's Figure 2 protocol: same graph, same
//! postprocessing, quality scored against the planted ground truth.
//!
//! ```text
//! cargo run --release --example compare_algorithms
//! ```

use oca_bench::{run_algorithm, shared_postprocess};
use oca_gen::{lfr, LfrParams};
use oca_metrics::{average_f1, overlapping_nmi, theta};

fn main() {
    let bench = lfr(&LfrParams::small(1000, 0.3, 77));
    println!(
        "LFR benchmark: {} nodes, {} edges, {} planted communities, mu = 0.3\n",
        bench.graph.node_count(),
        bench.graph.edge_count(),
        bench.ground_truth.len()
    );

    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>12} {:>10}",
        "algorithm", "theta", "nmi", "f1", "communities", "secs"
    );
    for name in ["oca", "lfk", "cfinder", "lpa"] {
        let out = run_algorithm(name, &bench.graph, 7);
        let cover = shared_postprocess(&out.cover);
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>8.3} {:>12} {:>10.3}",
            out.algorithm,
            theta(&bench.ground_truth, &cover),
            overlapping_nmi(&bench.ground_truth, &cover),
            average_f1(&bench.ground_truth, &cover),
            cover.len(),
            out.elapsed.as_secs_f64()
        );
    }
    println!("\n(paper expectation at mu = 0.3: OCA and LFK near 1.0, CFinder behind)");
}
