//! Dependency-free SIGINT/SIGTERM capture for graceful interruption.
//!
//! `detect` wants ^C to mean "stop at the next safe point, flush the
//! checkpoint / partial cover, exit cleanly" rather than die mid-write.
//! The handler only stores the signal number in an atomic; a watcher
//! thread in the command turns it into a [`oca_graph::CancelToken`]
//! cancellation, and the driver unwinds through its normal cancellation
//! path. After the first signal the default disposition is restored, so
//! a second ^C kills the process even if the graceful path wedges.

#[cfg(unix)]
mod imp {
    // The only unsafe here is the libc `signal(2)` binding; the handler
    // body itself is async-signal-safe (one atomic store, one re-arm).
    #![allow(unsafe_code)]

    use std::sync::atomic::{AtomicI32, Ordering};

    static PENDING: AtomicI32 = AtomicI32::new(0);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(signum: i32) {
        PENDING.store(signum, Ordering::SeqCst);
        // SAFETY: `signal(2)` is on POSIX's async-signal-safe list, and
        // re-arming the *default* disposition takes no locks; the
        // arguments are a valid signal number and SIG_DFL.
        unsafe {
            signal(signum, SIG_DFL);
        }
    }

    /// Installs the graceful handler for SIGINT and SIGTERM.
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `on_signal` is an `extern "C" fn(i32)` — exactly the
        // handler shape `signal(2)` expects — and it lives for the whole
        // program, so installing it cannot dangle.
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    /// The captured signal's name, if one arrived.
    pub fn pending() -> Option<&'static str> {
        match PENDING.load(Ordering::SeqCst) {
            0 => None,
            SIGINT => Some("SIGINT"),
            SIGTERM => Some("SIGTERM"),
            _ => Some("signal"),
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No-op off Unix: runs are only interruptible by process kill.
    pub fn install() {}

    /// Never reports a signal off Unix.
    pub fn pending() -> Option<&'static str> {
        None
    }
}

pub use imp::{install, pending};
