//! CLI subcommand implementations.

use crate::args::Cli;
use oca::{HaltingConfig, Oca, OcaConfig};
use oca_baselines::{cfinder, label_propagation, lfk, CFinderConfig, LfkConfig, LpaConfig};
use oca_gen::{
    barabasi_albert, daisy_tree, gnp, lfr, rmat, wiki_like, DaisyParams, LfrParams, RmatParams,
    WikiLikeParams,
};
use oca_graph::io::{read_edge_list_path, write_edge_list_path};
use oca_graph::{read_cover_path, write_cover_path, Cover, CsrGraph, GraphStats};
use oca_hierarchy::Summary;
use oca_metrics::{average_f1, extended_modularity, overlapping_nmi, theta};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Top-level dispatch; returns an error message on failure.
pub fn run(cli: &Cli) -> Result<(), String> {
    match cli.command.as_deref() {
        Some("generate") => generate(cli),
        Some("detect") => detect(cli),
        Some("eval") => eval(cli),
        Some("stats") => stats(cli),
        Some("summarize") => summarize(cli),
        Some("help") | None => {
            print!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

/// The usage text.
pub fn usage() -> String {
    "\
oca — Overlapping Community Search (ICDE 2010 reproduction)

USAGE: oca <command> [--key value]...

COMMANDS:
  generate   --family lfr|daisy|gnp|ba|rmat|wiki --output G.edges
             [--nodes N] [--mu F] [--seed S] [--truth T.cover]
  detect     --input G.edges --algorithm oca|lfk|cfinder|lpa
             [--output C.cover] [--seed S] [--threads T] [--orphans]
  eval       --input G.edges --truth T.cover --found C.cover
  stats      --input G.edges
  summarize  --input G.edges --cover C.cover
  help
"
    .to_string()
}

fn load_graph(cli: &Cli) -> Result<CsrGraph, String> {
    let path = cli.require("input")?;
    read_edge_list_path(path).map_err(|e| format!("reading {path}: {e}"))
}

fn generate(cli: &Cli) -> Result<(), String> {
    let family = cli.require("family")?.to_string();
    let output = cli.require("output")?.to_string();
    let nodes: usize = cli.get_strict("nodes", 1000)?;
    let seed: u64 = cli.get_strict("seed", 42)?;
    let mut rng = StdRng::seed_from_u64(seed);

    let (graph, truth): (CsrGraph, Option<Cover>) = match family.as_str() {
        "lfr" => {
            let mu: f64 = cli.get_strict("mu", 0.3)?;
            let b = lfr(&LfrParams::small(nodes, mu, seed));
            (b.graph, Some(b.ground_truth))
        }
        "daisy" => {
            let flowers = (nodes / 100).max(1);
            let b = daisy_tree(&DaisyParams::default_shape(100), flowers - 1, 0.05, seed);
            (b.graph, Some(b.ground_truth))
        }
        "gnp" => {
            let p: f64 = cli.get_strict("p", 0.01)?;
            (gnp(nodes, p, &mut rng), None)
        }
        "ba" => {
            let m: usize = cli.get_strict("m", 5)?;
            (barabasi_albert(nodes, m, &mut rng), None)
        }
        "rmat" => {
            let scale = (nodes.max(2) as f64).log2().ceil() as u32;
            (rmat(&RmatParams::graph500(scale, 8), &mut rng), None)
        }
        "wiki" => {
            let scale = (nodes.max(2) as f64).log2().ceil() as u32;
            let b = wiki_like(&WikiLikeParams::at_scale(scale, seed));
            (b.graph, Some(b.planted))
        }
        other => return Err(format!("unknown family {other:?}")),
    };

    write_edge_list_path(&graph, &output).map_err(|e| format!("writing {output}: {e}"))?;
    println!(
        "wrote {} ({} nodes, {} edges)",
        output,
        graph.node_count(),
        graph.edge_count()
    );
    if let Some(path) = cli.get_str("truth") {
        match truth {
            Some(t) => {
                write_cover_path(&t, path).map_err(|e| format!("writing {path}: {e}"))?;
                println!("wrote {} ({} communities)", path, t.len());
            }
            None => return Err(format!("family {family:?} has no ground truth")),
        }
    }
    Ok(())
}

fn detect(cli: &Cli) -> Result<(), String> {
    let graph = load_graph(cli)?;
    let algorithm = cli.get_str("algorithm").unwrap_or("oca").to_string();
    let seed: u64 = cli.get_strict("seed", 42)?;
    let threads: usize = cli.get_strict("threads", 1)?;
    if threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    let start = std::time::Instant::now();
    let cover = match algorithm.as_str() {
        "oca" => {
            let config = OcaConfig {
                halting: HaltingConfig {
                    max_seeds: 4 * graph.node_count().max(25),
                    target_coverage: 0.99,
                    stagnation_limit: 200,
                },
                threads,
                rng_seed: seed,
                assign_orphans: cli.has_flag("orphans"),
                ..Default::default()
            };
            let r = Oca::new(config).run(&graph);
            println!(
                "c = {:.4} (lambda_min = {:.3}), {} seeds",
                r.c, r.lambda_min, r.seeds_tried
            );
            r.cover
        }
        "lfk" => lfk(
            &graph,
            &LfkConfig {
                rng_seed: seed,
                ..Default::default()
            },
        ),
        "cfinder" => {
            let r = cfinder(
                &graph,
                &CFinderConfig {
                    k: cli.get_strict("k", 3)?,
                    ..Default::default()
                },
            );
            if !r.complete {
                eprintln!("warning: clique cap hit; cover is partial");
            }
            r.cover
        }
        "lpa" => label_propagation(
            &graph,
            &LpaConfig {
                rng_seed: seed,
                ..Default::default()
            },
        ),
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    println!(
        "{}: {} communities, coverage {:.3}, {} overlap nodes, {:.3}s",
        algorithm,
        cover.len(),
        cover.coverage(),
        cover.overlap_node_count(),
        start.elapsed().as_secs_f64()
    );
    if let Some(path) = cli.get_str("output") {
        write_cover_path(&cover, path).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn eval(cli: &Cli) -> Result<(), String> {
    let graph = load_graph(cli)?;
    let truth_path = cli.require("truth")?;
    let found_path = cli.require("found")?;
    let truth = read_cover_path(graph.node_count(), truth_path)
        .map_err(|e| format!("reading {truth_path}: {e}"))?;
    let found = read_cover_path(graph.node_count(), found_path)
        .map_err(|e| format!("reading {found_path}: {e}"))?;
    println!("theta (paper eq. V.2) = {:.4}", theta(&truth, &found));
    println!(
        "overlapping NMI       = {:.4}",
        overlapping_nmi(&truth, &found)
    );
    println!("average F1            = {:.4}", average_f1(&truth, &found));
    println!(
        "extended modularity   = {:.4}",
        extended_modularity(&graph, &found)
    );
    Ok(())
}

fn stats(cli: &Cli) -> Result<(), String> {
    let graph = load_graph(cli)?;
    let s = GraphStats::compute(&graph);
    println!("nodes        {}", s.nodes);
    println!("edges        {}", s.edges);
    println!("avg degree   {:.2}", s.avg_degree);
    println!("max degree   {}", s.max_degree);
    println!("isolated     {}", s.isolated);
    let comps = oca_graph::Components::compute(&graph);
    println!("components   {}", comps.count());
    let cores = oca_graph::CoreDecomposition::compute(&graph);
    println!("degeneracy   {}", cores.degeneracy());
    Ok(())
}

fn summarize(cli: &Cli) -> Result<(), String> {
    let graph = load_graph(cli)?;
    let cover_path = cli.require("cover")?;
    let cover = read_cover_path(graph.node_count(), cover_path)
        .map_err(|e| format!("reading {cover_path}: {e}"))?;
    let summary = Summary::build(&graph, &cover);
    println!("supernodes          {}", summary.len());
    println!("superedges          {}", summary.superedge_count());
    println!(
        "compression ratio   {:.4}",
        summary.compression_ratio(&graph)
    );
    println!(
        "reconstruction err  {:.4}",
        summary.reconstruction_error(&graph)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("oca_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cli(s: &str) -> Cli {
        Cli::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn generate_detect_eval_pipeline() {
        let dir = tmpdir();
        let g = dir.join("g.edges");
        let t = dir.join("t.cover");
        let c = dir.join("c.cover");
        run(&cli(&format!(
            "generate --family lfr --nodes 200 --mu 0.2 --output {} --truth {}",
            g.display(),
            t.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "detect --input {} --algorithm oca --output {}",
            g.display(),
            c.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "eval --input {} --truth {} --found {}",
            g.display(),
            t.display(),
            c.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "summarize --input {} --cover {}",
            g.display(),
            c.display()
        )))
        .unwrap();
        run(&cli(&format!("stats --input {}", g.display()))).unwrap();
    }

    #[test]
    fn all_algorithms_run_via_cli() {
        let dir = tmpdir();
        let g = dir.join("g2.edges");
        run(&cli(&format!(
            "generate --family daisy --nodes 300 --output {}",
            g.display()
        )))
        .unwrap();
        for alg in ["oca", "lfk", "cfinder", "lpa"] {
            run(&cli(&format!(
                "detect --input {} --algorithm {alg}",
                g.display()
            )))
            .unwrap();
        }
    }

    #[test]
    fn generators_without_truth() {
        let dir = tmpdir();
        for family in ["gnp", "ba", "rmat", "wiki"] {
            let g = dir.join(format!("{family}.edges"));
            run(&cli(&format!(
                "generate --family {family} --nodes 128 --output {}",
                g.display()
            )))
            .unwrap();
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&cli("frobnicate")).is_err());
        assert!(run(&cli("detect")).is_err());
        assert!(run(&cli("generate --family nope --output /tmp/x")).is_err());
        let err = run(&cli(
            "generate --family gnp --nodes 10 --output /tmp/oca_g.edges --truth /tmp/oca_t.cover",
        ))
        .unwrap_err();
        assert!(err.contains("no ground truth"));
    }

    #[test]
    fn help_prints() {
        run(&cli("help")).unwrap();
        run(&Cli::default()).unwrap();
        assert!(usage().contains("detect"));
    }
}
