//! CLI subcommand implementations.
//!
//! Community detection dispatches through the `oca-api` registry: the CLI
//! itself contains no per-algorithm `match`. Each subcommand declares its
//! accepted option/flag set, so unknown keys (typos like `--thread 4`)
//! are errors listing the valid options rather than silently ignored.

use crate::args::Cli;
use oca::{CStrategy, LocalConfig, LocalDetector, SearchConfig};
use oca_api::{registry, DetectContext, DetectorOptions, GraphSource, LoadedGraph, Progress};
use oca_gen::{
    barabasi_albert, daisy_tree, gnp, lfr, rmat, wiki_like, DaisyParams, LfrParams, RmatParams,
    WikiLikeParams,
};
use oca_graph::io::write_edge_list_path;
use oca_graph::{
    build_ocg_from_path, read_cover_path, read_ocg_info, verify_ocg_path, write_cover_path,
    BuildOptions, Cover, CsrGraph, GraphStats,
};
use oca_hierarchy::Summary;
use oca_metrics::{average_f1, extended_modularity, overlapping_nmi, theta};
use oca_serve::{load_cover_path, save_cover_path, RecomputeFn, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// Top-level dispatch; returns an error message on failure.
pub fn run(cli: &Cli) -> Result<(), String> {
    if cli.command.is_none() && cli.has_flag("list-algorithms") {
        print!("{}", algorithm_listing());
        return Ok(());
    }
    match cli.command.as_deref() {
        Some("generate") => generate(cli),
        Some("detect") | Some("run") => detect(cli),
        Some("eval") => eval(cli),
        Some("stats") => stats(cli),
        Some("summarize") => summarize(cli),
        Some("serve") => serve(cli),
        Some("cover") => cover(cli),
        Some("graph") => graph_cmd(cli),
        Some("help") | None => {
            print!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

/// The usage text.
pub fn usage() -> String {
    "\
oca — Overlapping Community Search (ICDE 2010 reproduction)

USAGE: oca <command> [--key value]...

COMMANDS:
  generate   --family lfr|daisy|gnp|ba|rmat|wiki --output G.edges
             [--nodes N] [--mu F] [--seed S] [--truth T.cover]
  detect     --input G.edges | --graph G.ocg
  (or: run)  [--algorithm NAME] [--output C.cover]
             [--seed S] [--progress] [--orphans]
             plus the algorithm's own options; see --list-algorithms
  eval       (--input G.edges | --graph G.ocg) --truth T.cover --found C.cover
  stats      --input G.edges | --graph G.ocg
  summarize  (--input G.edges | --graph G.ocg) --cover C.cover
  serve      (--input G.edges | --graph G.ocg) [--addr HOST:PORT]
             [--workers N] [--seed S] [--cover C.bin] [--save-cover C.bin]
             [--recompute-secs F] [--algorithm NAME] [--fixed-c F]
             [--max-seconds F] [--deadline-ms N] [--max-pending N]
             [--idle-secs F] [--max-line-bytes N]
  cover      save --input G.edges --cover C.cover --output C.bin [--fixed-c F]
             load --input G.edges --binary C.bin [--output C.cover]
  graph      build --input G.edges[.gz] --output G.ocg [--chunk-edges N]
                   [--min-nodes N] [--tmp-dir D] [--no-relabel] [--no-verify]
             info --graph G.ocg
             verify --graph G.ocg
  help

`detect --list-algorithms` lists every registered algorithm with its
options.

Graphs come from a text edge list (`--input`, gzip autodetected; skipped
self-loops and duplicates are reported) or from a prebuilt `.ocg` file
(`--graph`), which is memory-mapped in O(1) instead of parsed. `graph
build` produces `.ocg` from an edge list through a bounded-memory external
sort (`--chunk-edges` caps the RAM), applying the cache-friendly
degree-descending relabeling by default; covers on disk always use the
input's own node ids.

`serve` answers `query`/`local`/`topk`/`snapshot`/`stats`/`health` as
one-line JSON over TCP (try `nc` and type `query 0`). `--cover` warm-starts
from a binary cover instead of detecting at startup (a corrupt file falls
back to a cold start); `--recompute-secs` republishes fresh epochs in the
background, retrying with backoff on failure while the last good epoch
keeps serving. Overload and abuse controls: `--max-pending` bounds the
connection queue (typed `overloaded` beyond it), `--deadline-ms` caps
`local`/`topk` time (typed `deadline-exceeded` partial results),
`--idle-secs` reaps silent connections, `--max-line-bytes` caps request
lines. Send `shutdown` (or set `--max-seconds`) for a graceful drain and a
final stats line.
"
    .to_string()
}

/// Renders the registry as a listing for `--list-algorithms`.
fn algorithm_listing() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("registered algorithms:\n");
    for spec in registry().iter() {
        let _ = writeln!(out, "\n  {:<18} {}", spec.name(), spec.summary());
        for (key, help) in spec.options() {
            let _ = writeln!(out, "      --{key:<16} {help}");
        }
    }
    out
}

/// Resolves `--input` (edge list, gzip autodetected) or `--graph`
/// (prebuilt `.ocg`, memory-mapped) into a loaded graph. Edge-list
/// ingestion notes on stderr how many self-loops and duplicate edges
/// were skipped, so silently cleaned input is visible.
fn load_graph(cli: &Cli) -> Result<LoadedGraph, String> {
    let source = match (cli.get_str("graph"), cli.get_str("input")) {
        (Some(_), Some(_)) => {
            return Err("pass either --input or --graph, not both".to_string());
        }
        (Some(path), None) => GraphSource::Ocg(path.into()),
        (None, Some(path)) => GraphSource::from_path(path),
        (None, None) => return Err("missing required option --input (or --graph)".to_string()),
    };
    let loaded = source.load().map_err(|e| e.to_string())?;
    if let Some(report) = loaded.ingest {
        if report.self_loops > 0 || report.duplicates > 0 {
            eprintln!(
                "note: skipped {} self-loop(s) and {} duplicate edge(s) reading {}",
                report.self_loops,
                report.duplicates,
                source.path().display()
            );
        }
    }
    if loaded.graph.is_mapped() {
        eprintln!(
            "mapped {} ({} nodes, {} edges{})",
            source.path().display(),
            loaded.graph.node_count(),
            loaded.graph.edge_count(),
            if loaded.is_relabeled() {
                ", degree-ordered"
            } else {
                ""
            }
        );
    }
    Ok(loaded)
}

fn generate(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(
        &["family", "output", "nodes", "mu", "seed", "truth", "p", "m"],
        &[],
    )?;
    let family = cli.require("family")?.to_string();
    let output = cli.require("output")?.to_string();
    let nodes: usize = cli.get_strict("nodes", 1000)?;
    let seed: u64 = cli.get_strict("seed", 42)?;
    let mut rng = StdRng::seed_from_u64(seed);

    let (graph, truth): (CsrGraph, Option<Cover>) = match family.as_str() {
        "lfr" => {
            let mu: f64 = cli.get_strict("mu", 0.3)?;
            let b = lfr(&LfrParams::small(nodes, mu, seed));
            (b.graph, Some(b.ground_truth))
        }
        "daisy" => {
            let flowers = (nodes / 100).max(1);
            let b = daisy_tree(&DaisyParams::default_shape(100), flowers - 1, 0.05, seed);
            (b.graph, Some(b.ground_truth))
        }
        "gnp" => {
            let p: f64 = cli.get_strict("p", 0.01)?;
            (gnp(nodes, p, &mut rng), None)
        }
        "ba" => {
            let m: usize = cli.get_strict("m", 5)?;
            (barabasi_albert(nodes, m, &mut rng), None)
        }
        "rmat" => {
            let scale = (nodes.max(2) as f64).log2().ceil() as u32;
            (rmat(&RmatParams::graph500(scale, 8), &mut rng), None)
        }
        "wiki" => {
            let scale = (nodes.max(2) as f64).log2().ceil() as u32;
            let b = wiki_like(&WikiLikeParams::at_scale(scale, seed));
            (b.graph, Some(b.planted))
        }
        other => return Err(format!("unknown family {other:?}")),
    };

    write_edge_list_path(&graph, &output).map_err(|e| format!("writing {output}: {e}"))?;
    println!(
        "wrote {} ({} nodes, {} edges)",
        output,
        graph.node_count(),
        graph.edge_count()
    );
    if let Some(path) = cli.get_str("truth") {
        match truth {
            Some(t) => {
                write_cover_path(&t, path).map_err(|e| format!("writing {path}: {e}"))?;
                println!("wrote {} ({} communities)", path, t.len());
            }
            None => return Err(format!("family {family:?} has no ground truth")),
        }
    }
    Ok(())
}

/// Options the `detect` subcommand owns itself; everything else must be
/// declared by the selected algorithm's registry entry.
const DETECT_OPTIONS: [&str; 5] = ["input", "graph", "algorithm", "output", "seed"];
const DETECT_FLAGS: [&str; 3] = ["list-algorithms", "orphans", "progress"];

fn detect(cli: &Cli) -> Result<(), String> {
    let reg = registry();
    if cli.has_flag("list-algorithms") {
        print!("{}", algorithm_listing());
        return Ok(());
    }
    let algorithm = cli.get_str("algorithm").unwrap_or("oca").to_string();
    let spec = reg.get(&algorithm).map_err(|e| e.to_string())?;
    let mut valid: Vec<&str> = DETECT_OPTIONS.to_vec();
    valid.extend(spec.option_keys());
    cli.ensure_known(&valid, &DETECT_FLAGS)?;

    let loaded = load_graph(cli)?;
    let graph = &loaded.graph;
    let seed: u64 = cli.get_strict("seed", 42)?;
    let mut opts = DetectorOptions::new();
    for (key, value) in cli.option_pairs() {
        if !DETECT_OPTIONS.contains(&key) {
            opts.set(key, value);
        }
    }
    if cli.has_flag("orphans") {
        // Forwarded as an option so algorithms without an orphan rule
        // reject it with a typed UnknownOption error.
        opts.set("orphans", "true");
    }
    // Graph-scaled tuned defaults (e.g. OCA's seed budget proportional to
    // the node count), overridden key by key by the user's options.
    let detector = spec.build_tuned(graph, &opts).map_err(|e| e.to_string())?;

    let mut ctx = DetectContext::new(seed);
    if cli.has_flag("progress") {
        ctx = ctx.with_progress(|p: Progress| match p.total {
            Some(total) => eprint!("\r[{}] {}/{total}    ", p.stage, p.done),
            None => eprint!("\r[{}] {}    ", p.stage, p.done),
        });
    }
    let detection = detector
        .detect(graph, &mut ctx)
        .map_err(|e| e.to_string())?;
    if cli.has_flag("progress") {
        eprintln!();
    }
    if !detection.complete {
        eprintln!("warning: run incomplete (internal cap hit); cover is partial");
    }
    for (key, value) in &detection.stats {
        println!("{key} = {value}");
    }
    // Detection ran in the graph's compact id space; report and save the
    // cover in the input id space the user's files speak.
    let cover = loaded.cover_to_input(&detection.cover);
    println!(
        "{}: {} communities, coverage {:.3}, {} overlap nodes, {} iterations, {:.3}s",
        detector.name(),
        cover.len(),
        cover.coverage(),
        cover.overlap_node_count(),
        detection.iterations,
        detection.elapsed.as_secs_f64()
    );
    // Say *why* the run ended: a halt on stagnation or a seed budget with
    // nodes left uncovered means the cover is intentionally partial — the
    // paper keeps "just the most relevant nodes" — which is invisible from
    // the summary line alone.
    if let Some((_, reason)) = detection.stats.iter().find(|(k, _)| *k == "halt_reason") {
        if reason == "coverage" {
            println!("halted: reached the target coverage");
        } else if reason != "none" && cover.coverage() < 1.0 {
            println!(
                "halted: {reason} at coverage {:.3} — the cover is deliberately partial; \
                 raise --max-seeds / the halting budgets, or pass --orphans for a full cover",
                cover.coverage()
            );
        }
    }
    if let Some(path) = cli.get_str("output") {
        write_cover_path(&cover, path).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn eval(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(&["input", "graph", "truth", "found"], &[])?;
    let loaded = load_graph(cli)?;
    let graph = &loaded.graph;
    let truth_path = cli.require("truth")?;
    let found_path = cli.require("found")?;
    let truth = read_cover_path(graph.node_count(), truth_path)
        .map_err(|e| format!("reading {truth_path}: {e}"))?;
    let found = read_cover_path(graph.node_count(), found_path)
        .map_err(|e| format!("reading {found_path}: {e}"))?;
    // Cover files are in input ids; the three cover-only metrics are
    // invariant under the id bijection, but modularity touches the graph,
    // so the found cover crosses into compact space for it.
    println!("theta (paper eq. V.2) = {:.4}", theta(&truth, &found));
    println!(
        "overlapping NMI       = {:.4}",
        overlapping_nmi(&truth, &found)
    );
    println!("average F1            = {:.4}", average_f1(&truth, &found));
    println!(
        "extended modularity   = {:.4}",
        extended_modularity(graph, &loaded.cover_to_compact(&found))
    );
    Ok(())
}

fn stats(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(&["input", "graph"], &[])?;
    let graph = load_graph(cli)?.graph;
    let s = GraphStats::compute(&graph);
    println!("nodes        {}", s.nodes);
    println!("edges        {}", s.edges);
    println!("avg degree   {:.2}", s.avg_degree);
    println!("max degree   {}", s.max_degree);
    println!("isolated     {}", s.isolated);
    let comps = oca_graph::Components::compute(&graph);
    println!("components   {}", comps.count());
    let cores = oca_graph::CoreDecomposition::compute(&graph);
    println!("degeneracy   {}", cores.degeneracy());
    Ok(())
}

fn summarize(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(&["input", "graph", "cover"], &[])?;
    let loaded = load_graph(cli)?;
    let graph = &loaded.graph;
    let cover_path = cli.require("cover")?;
    let cover = read_cover_path(graph.node_count(), cover_path)
        .map_err(|e| format!("reading {cover_path}: {e}"))?;
    let cover = loaded.cover_to_compact(&cover);
    let summary = Summary::build(graph, &cover);
    println!("supernodes          {}", summary.len());
    println!("superedges          {}", summary.superedge_count());
    println!(
        "compression ratio   {:.4}",
        summary.compression_ratio(graph)
    );
    println!(
        "reconstruction err  {:.4}",
        summary.reconstruction_error(graph)
    );
    Ok(())
}

const SERVE_OPTIONS: [&str; 15] = [
    "input",
    "graph",
    "addr",
    "workers",
    "seed",
    "cover",
    "save-cover",
    "recompute-secs",
    "algorithm",
    "fixed-c",
    "max-seconds",
    "deadline-ms",
    "max-pending",
    "idle-secs",
    "max-line-bytes",
];

/// Builds the initial cover for `serve`: a warm start from a binary cover
/// file when `--cover` is given, otherwise a full detection run with the
/// chosen algorithm's tuned preset. A warm-start file that fails its
/// integrity checks (truncated by a crash mid-save, bit rot) is not fatal
/// — the reason is logged and detection runs cold instead; files that are
/// *valid but wrong* (different graph, unknown version) still abort,
/// because they signal operator error rather than damage.
fn initial_cover(
    cli: &Cli,
    loaded: &LoadedGraph,
    algorithm: &str,
    seed: u64,
) -> Result<Cover, String> {
    let graph = &loaded.graph;
    if let Some(path) = cli.get_str("cover") {
        match load_cover_path(path, Some(graph.node_count())) {
            Ok((cover, _)) => {
                println!("warm start: {} communities from {path}", cover.len());
                // Saved covers are in input ids; the server detects and
                // indexes in the graph's compact space.
                return Ok(loaded.cover_to_compact(&cover));
            }
            Err(e) if e.is_corruption() => {
                println!("warm start skipped: {path} is damaged ({e}); detecting from cold");
            }
            Err(e) => return Err(format!("loading {path}: {e}")),
        }
    }
    let reg = registry();
    let spec = reg.get(algorithm).map_err(|e| e.to_string())?;
    let detector = spec
        .build_tuned(graph, &DetectorOptions::new())
        .map_err(|e| e.to_string())?;
    let detection = detector
        .detect(graph, &mut DetectContext::new(seed))
        .map_err(|e| e.to_string())?;
    println!(
        "initial detection ({}): {} communities in {:.2}s",
        detector.name(),
        detection.cover.len(),
        detection.elapsed.as_secs_f64()
    );
    Ok(detection.cover)
}

fn serve(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(&SERVE_OPTIONS, &[])?;
    let loaded = load_graph(cli)?;
    let addr = cli.get_str("addr").unwrap_or("127.0.0.1:7010").to_string();
    let workers: usize = cli.get_strict("workers", 4)?;
    let seed: u64 = cli.get_strict("seed", 42)?;
    let recompute_secs: f64 = cli.get_strict("recompute-secs", 0.0)?;
    let max_seconds: f64 = cli.get_strict("max-seconds", 0.0)?;
    let deadline_ms: u64 = cli.get_strict("deadline-ms", 0)?;
    let max_pending: usize = cli.get_strict("max-pending", 128)?;
    let idle_secs: f64 = cli.get_strict("idle-secs", 120.0)?;
    let max_line_bytes: usize = cli.get_strict("max-line-bytes", 64 * 1024)?;
    let algorithm = cli.get_str("algorithm").unwrap_or("oca").to_string();

    let mut local = LocalConfig {
        // The serving default: a scaled move budget so a hub query cannot
        // stall a worker.
        search: SearchConfig {
            budget_factor: 64.0,
            ..Default::default()
        },
        ..Default::default()
    };
    if let Some(c) = cli.get_str("fixed-c") {
        let c: f64 = c
            .parse()
            .map_err(|_| format!("invalid value for --fixed-c: {c:?}"))?;
        local.c = CStrategy::Fixed(c);
    }

    let initial = initial_cover(cli, &loaded, &algorithm, seed)?;
    let relabeling = loaded.relabeling.clone();
    let graph = Arc::new(loaded.graph);
    let config = ServeConfig {
        workers,
        seed,
        recompute_interval: (recompute_secs > 0.0).then(|| Duration::from_secs_f64(recompute_secs)),
        max_duration: (max_seconds > 0.0).then(|| Duration::from_secs_f64(max_seconds)),
        local,
        max_pending,
        max_line_bytes,
        request_deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        idle_timeout: (idle_secs > 0.0).then(|| Duration::from_secs_f64(idle_secs)),
        ..Default::default()
    };
    let recompute: Option<Box<RecomputeFn>> = (recompute_secs > 0.0)
        .then(|| Box::new(oca_api::registry_recompute(algorithm)) as Box<RecomputeFn>);

    let mut server =
        Server::new(Arc::clone(&graph), initial, config, recompute).map_err(|e| e.to_string())?;
    if let Some(relabeling) = relabeling.clone() {
        server = server
            .with_relabeling(relabeling)
            .map_err(|e| e.to_string())?;
    }
    let listener =
        std::net::TcpListener::bind(&addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    println!(
        "serving {} nodes / {} edges on {bound} ({} workers); send `shutdown` to drain",
        graph.node_count(),
        graph.edge_count(),
        workers
    );
    let report = server.run(listener).map_err(|e| format!("serving: {e}"))?;
    if let Some(path) = cli.get_str("save-cover") {
        let snapshot = server.store().load();
        // Saved covers always live in input ids so they warm-start any
        // source (edge list or .ocg) over the same graph.
        let cover = match &relabeling {
            Some(r) => r.cover_to_original(&snapshot.cover),
            None => snapshot.cover.clone(),
        };
        save_cover_path(path, &cover, snapshot.c).map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "wrote {path} (epoch {}, {} communities)",
            snapshot.epoch,
            snapshot.cover.len()
        );
    }
    println!("{}", report.summary_line());
    Ok(())
}

fn cover(cli: &Cli) -> Result<(), String> {
    match cli.positional(0) {
        Some("save") => cover_save(cli),
        Some("load") => cover_load(cli),
        Some(other) => Err(format!(
            "unknown cover action {other:?}; expected `cover save` or `cover load`"
        )),
        None => Err("missing cover action; expected `cover save` or `cover load`".to_string()),
    }
}

/// `cover save`: text cover in, versioned checksummed binary out. The
/// stored interaction strength is spectral by default so a later
/// `serve --cover` warm-starts with the exact same `c`.
fn cover_save(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(&["input", "graph", "cover", "output", "fixed-c"], &[])?;
    let graph = load_graph(cli)?.graph;
    let cover_path = cli.require("cover")?;
    let output = cli.require("output")?;
    let cover = read_cover_path(graph.node_count(), cover_path)
        .map_err(|e| format!("reading {cover_path}: {e}"))?;
    let c = match cli.get_str("fixed-c") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --fixed-c: {v:?}"))?,
        None => LocalDetector::default_detector().resolve_c(&graph),
    };
    save_cover_path(output, &cover, c).map_err(|e| format!("writing {output}: {e}"))?;
    println!(
        "wrote {output} ({} communities, {} nodes, c = {c:.6})",
        cover.len(),
        cover.node_count()
    );
    Ok(())
}

/// `cover load`: verifies and summarizes a binary cover against a graph;
/// `--output` converts it back to the text format.
fn cover_load(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(&["input", "graph", "binary", "output"], &[])?;
    let graph = load_graph(cli)?.graph;
    let binary = cli.require("binary")?;
    let (cover, c) = load_cover_path(binary, Some(graph.node_count()))
        .map_err(|e| format!("loading {binary}: {e}"))?;
    println!(
        "{binary}: {} communities, coverage {:.3}, {} overlap nodes, c = {c:.6}",
        cover.len(),
        cover.coverage(),
        cover.overlap_node_count()
    );
    if let Some(path) = cli.get_str("output") {
        write_cover_path(&cover, path).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn graph_cmd(cli: &Cli) -> Result<(), String> {
    match cli.positional(0) {
        Some("build") => graph_build(cli),
        Some("info") => graph_info(cli),
        Some("verify") => graph_verify(cli),
        Some(other) => Err(format!(
            "unknown graph action {other:?}; expected `graph build`, `graph info` or `graph verify`"
        )),
        None => Err(
            "missing graph action; expected `graph build`, `graph info` or `graph verify`"
                .to_string(),
        ),
    }
}

/// `graph build`: edge list (plain or gzip) in, validated `.ocg` out,
/// through the bounded-memory external sort — the input never has to fit
/// in RAM.
fn graph_build(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(
        &["input", "output", "chunk-edges", "min-nodes", "tmp-dir"],
        &["no-relabel", "no-verify"],
    )?;
    let input = cli.require("input")?;
    let output = cli.require("output")?;
    let defaults = BuildOptions::default();
    let options = BuildOptions {
        chunk_edges: cli.get_strict("chunk-edges", defaults.chunk_edges)?,
        min_nodes: cli.get_strict("min-nodes", defaults.min_nodes)?,
        relabel: !cli.has_flag("no-relabel"),
        verify: !cli.has_flag("no-verify"),
        tmp_dir: cli.get_str("tmp-dir").map(Into::into),
    };
    let stats = build_ocg_from_path(input, output, &options).map_err(|e| e.to_string())?;
    println!(
        "wrote {output} ({} nodes, {} edges{})",
        stats.nodes,
        stats.edges,
        if options.relabel {
            ", degree-ordered"
        } else {
            ""
        }
    );
    println!(
        "read {} edge lines; skipped {} self-loop(s) and {} duplicate edge(s); {} sorted run(s)",
        stats.edges_read, stats.self_loops, stats.duplicates, stats.ingest_runs
    );
    Ok(())
}

/// `graph info`: the O(1) header read — no payload is touched.
fn graph_info(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(&["graph"], &[])?;
    let path = cli.require("graph")?;
    let info = read_ocg_info(path).map_err(|e| e.to_string())?;
    print_ocg_info(path, &info);
    Ok(())
}

/// `graph verify`: full checksum + structural validation, the expensive
/// counterpart of the O(1) open-time checks.
fn graph_verify(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(&["graph"], &[])?;
    let path = cli.require("graph")?;
    let info = verify_ocg_path(path).map_err(|e| e.to_string())?;
    println!("{path}: checksum and structure verified");
    print_ocg_info(path, &info);
    Ok(())
}

fn print_ocg_info(path: &str, info: &oca_graph::OcgInfo) {
    println!("{path}: ocg v{}", info.version);
    println!("nodes        {}", info.node_count);
    println!("edges        {}", info.edge_count);
    println!("self loops   {} (skipped at build)", info.self_loops);
    println!("duplicates   {} (skipped at build)", info.duplicates);
    println!("relabeled    {}", info.relabeled);
    println!("validated    {}", info.validated);
    println!("checksum     {:016x}", info.checksum);
    println!("file bytes   {}", info.byte_len);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("oca_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cli(s: &str) -> Cli {
        Cli::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn generate_detect_eval_pipeline() {
        let dir = tmpdir();
        let g = dir.join("g.edges");
        let t = dir.join("t.cover");
        let c = dir.join("c.cover");
        run(&cli(&format!(
            "generate --family lfr --nodes 200 --mu 0.2 --output {} --truth {}",
            g.display(),
            t.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "detect --input {} --algorithm oca --output {}",
            g.display(),
            c.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "eval --input {} --truth {} --found {}",
            g.display(),
            t.display(),
            c.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "summarize --input {} --cover {}",
            g.display(),
            c.display()
        )))
        .unwrap();
        run(&cli(&format!("stats --input {}", g.display()))).unwrap();
    }

    #[test]
    fn all_registered_algorithms_run_via_cli() {
        let dir = tmpdir();
        let g = dir.join("g2.edges");
        run(&cli(&format!(
            "generate --family daisy --nodes 300 --output {}",
            g.display()
        )))
        .unwrap();
        for alg in registry().names() {
            run(&cli(&format!(
                "detect --input {} --algorithm {alg}",
                g.display()
            )))
            .unwrap();
        }
        // `run` is an alias for `detect`, with algorithm options forwarded.
        run(&cli(&format!(
            "run --input {} --algorithm lfk --alpha 1.2",
            g.display()
        )))
        .unwrap();
    }

    #[test]
    fn oca_parallel_options_flow_through_detect() {
        let dir = tmpdir();
        let g = dir.join("g3.edges");
        run(&cli(&format!(
            "generate --family lfr --nodes 150 --mu 0.2 --output {}",
            g.display()
        )))
        .unwrap();
        // The ticket-ordered driver accepts threads/batch from the CLI;
        // thread count never changes the cover, so this is safe to vary.
        run(&cli(&format!(
            "detect --input {} --threads 2 --batch 16",
            g.display()
        )))
        .unwrap();
        let err = run(&cli(&format!("detect --input {} --batch 0", g.display()))).unwrap_err();
        assert!(err.contains("round"), "{err}");
    }

    #[test]
    fn list_algorithms_flag_works() {
        run(&cli("detect --list-algorithms")).unwrap();
        run(&cli("--list-algorithms")).unwrap();
        assert!(algorithm_listing().contains("cfinder-faithful"));
    }

    #[test]
    fn unknown_options_are_rejected_with_the_valid_set() {
        let err = run(&cli("detect --input g.edges --thread 4")).unwrap_err();
        assert!(err.contains("--thread"), "{err}");
        assert!(err.contains("--threads"), "{err}");

        // Algorithm-specific keys are validated against the registry entry.
        let err = run(&cli("detect --input g.edges --algorithm lfk --threads 4")).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
        assert!(err.contains("--alpha"), "{err}");

        let err = run(&cli("generate --family lfr --nodez 10 --output /tmp/x")).unwrap_err();
        assert!(err.contains("--nodez") && err.contains("--nodes"), "{err}");

        let err = run(&cli("stats --input g.edges --verbose")).unwrap_err();
        assert!(err.contains("--verbose"), "{err}");
    }

    #[test]
    fn unknown_algorithm_lists_registered_names() {
        let err = run(&cli("detect --input g.edges --algorithm nope")).unwrap_err();
        assert!(err.contains("nope") && err.contains("lpa"), "{err}");
    }

    #[test]
    fn generators_without_truth() {
        let dir = tmpdir();
        for family in ["gnp", "ba", "rmat", "wiki"] {
            let g = dir.join(format!("{family}.edges"));
            run(&cli(&format!(
                "generate --family {family} --nodes 128 --output {}",
                g.display()
            )))
            .unwrap();
        }
    }

    #[test]
    fn cover_round_trips_through_the_binary_format() {
        let dir = tmpdir();
        let g = dir.join("g4.edges");
        let text = dir.join("c4.cover");
        let bin = dir.join("c4.bin");
        let back = dir.join("c4_back.cover");
        run(&cli(&format!(
            "generate --family lfr --nodes 150 --mu 0.2 --output {} --truth {}",
            g.display(),
            text.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "cover save --input {} --cover {} --output {} --fixed-c 0.7",
            g.display(),
            text.display(),
            bin.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "cover load --input {} --binary {} --output {}",
            g.display(),
            bin.display(),
            back.display()
        )))
        .unwrap();
        let original = read_cover_path(150, text.to_str().unwrap()).unwrap();
        let round = read_cover_path(150, back.to_str().unwrap()).unwrap();
        assert_eq!(original, round);
        // Loading against the wrong graph is a typed mismatch error.
        let g2 = dir.join("g5.edges");
        run(&cli(&format!(
            "generate --family gnp --nodes 70 --output {}",
            g2.display()
        )))
        .unwrap();
        let err = run(&cli(&format!(
            "cover load --input {} --binary {}",
            g2.display(),
            bin.display()
        )))
        .unwrap_err();
        assert!(err.contains("150-node"), "{err}");
        // Bad actions are named.
        let err = run(&cli("cover frobnicate")).unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
        assert!(run(&cli("cover")).is_err());
    }

    #[test]
    fn serve_runs_detects_and_saves_a_warm_start_cover() {
        let dir = tmpdir();
        let g = dir.join("g6.edges");
        let bin = dir.join("c6.bin");
        run(&cli(&format!(
            "generate --family lfr --nodes 150 --mu 0.2 --output {}",
            g.display()
        )))
        .unwrap();
        // Cold start: detect, serve briefly, save the cover on shutdown.
        run(&cli(&format!(
            "serve --input {} --addr 127.0.0.1:0 --workers 2 --max-seconds 0.2 \
             --fixed-c 0.6 --save-cover {}",
            g.display(),
            bin.display()
        )))
        .unwrap();
        // Warm start from the saved binary cover.
        run(&cli(&format!(
            "serve --input {} --addr 127.0.0.1:0 --workers 1 --max-seconds 0.2 --cover {}",
            g.display(),
            bin.display()
        )))
        .unwrap();
        // Typo'd options are rejected with the valid set.
        let err = run(&cli(&format!("serve --input {} --worker 2", g.display()))).unwrap_err();
        assert!(
            err.contains("--worker") && err.contains("--workers"),
            "{err}"
        );
    }

    #[test]
    fn graph_build_info_verify_and_detect_from_ocg() {
        let dir = tmpdir();
        let edges = dir.join("g7.edges");
        let ocg = dir.join("g7.ocg");
        let truth = dir.join("t7.cover");
        let from_list = dir.join("c7_list.cover");
        let from_ocg = dir.join("c7_ocg.cover");
        run(&cli(&format!(
            "generate --family lfr --nodes 200 --mu 0.2 --output {} --truth {}",
            edges.display(),
            truth.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "graph build --input {} --output {}",
            edges.display(),
            ocg.display()
        )))
        .unwrap();
        run(&cli(&format!("graph info --graph {}", ocg.display()))).unwrap();
        run(&cli(&format!("graph verify --graph {}", ocg.display()))).unwrap();
        // Detection from the mmap-backed source writes covers in input
        // ids, so eval against the edge-list truth just works.
        run(&cli(&format!(
            "detect --graph {} --output {} --seed 7",
            ocg.display(),
            from_ocg.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "detect --input {} --output {} --seed 7",
            edges.display(),
            from_list.display()
        )))
        .unwrap();
        // Same graph, same seed: the two sources give the same cover in
        // input ids (the .ocg path is degree-relabeled internally, but
        // OCA's result is invariant to it only after mapping back — so
        // compare through eval instead of bytes).
        run(&cli(&format!(
            "eval --graph {} --truth {} --found {}",
            ocg.display(),
            truth.display(),
            from_ocg.display()
        )))
        .unwrap();
        run(&cli(&format!("stats --graph {}", ocg.display()))).unwrap();
        run(&cli(&format!(
            "summarize --graph {} --cover {}",
            ocg.display(),
            from_ocg.display()
        )))
        .unwrap();
        // Both sources at once is an error, as is neither.
        let err = run(&cli(&format!(
            "stats --input {} --graph {}",
            edges.display(),
            ocg.display()
        )))
        .unwrap_err();
        assert!(err.contains("not both"), "{err}");
        let err = run(&cli("stats")).unwrap_err();
        assert!(err.contains("--input"), "{err}");
        // Unknown graph actions are named.
        let err = run(&cli("graph frobnicate")).unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
        assert!(run(&cli("graph")).is_err());
    }

    #[test]
    fn serve_from_ocg_translates_ids() {
        let dir = tmpdir();
        let edges = dir.join("g8.edges");
        let ocg = dir.join("g8.ocg");
        let bin = dir.join("c8.bin");
        run(&cli(&format!(
            "generate --family lfr --nodes 150 --mu 0.2 --output {}",
            edges.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "graph build --input {} --output {}",
            edges.display(),
            ocg.display()
        )))
        .unwrap();
        // Serve the relabeled mmap graph; save the cover (input ids).
        run(&cli(&format!(
            "serve --graph {} --addr 127.0.0.1:0 --workers 1 --max-seconds 0.2 \
             --fixed-c 0.6 --save-cover {}",
            ocg.display(),
            bin.display()
        )))
        .unwrap();
        // The saved cover warm-starts both source kinds.
        run(&cli(&format!(
            "serve --graph {} --addr 127.0.0.1:0 --workers 1 --max-seconds 0.2 --cover {}",
            ocg.display(),
            bin.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "serve --input {} --addr 127.0.0.1:0 --workers 1 --max-seconds 0.2 --cover {}",
            edges.display(),
            bin.display()
        )))
        .unwrap();
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&cli("frobnicate")).is_err());
        assert!(run(&cli("detect")).is_err());
        assert!(run(&cli("generate --family nope --output /tmp/x")).is_err());
        let err = run(&cli(
            "generate --family gnp --nodes 10 --output /tmp/oca_g.edges --truth /tmp/oca_t.cover",
        ))
        .unwrap_err();
        assert!(err.contains("no ground truth"));
    }

    #[test]
    fn help_prints() {
        run(&cli("help")).unwrap();
        run(&Cli::default()).unwrap();
        assert!(usage().contains("detect"));
    }
}
