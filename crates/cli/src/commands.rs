//! CLI subcommand implementations.
//!
//! Community detection dispatches through the `oca-api` registry: the CLI
//! itself contains no per-algorithm `match`. Each subcommand declares its
//! accepted option/flag set, so unknown keys (typos like `--thread 4`)
//! are errors listing the valid options rather than silently ignored.

use crate::args::Cli;
use oca::{CStrategy, LocalConfig, LocalDetector, SearchConfig};
use oca_api::{registry, DetectContext, DetectorOptions, GraphSource, LoadedGraph, Progress};
use oca_gen::{
    barabasi_albert, daisy_tree, gnp, lfr, rmat, wiki_like, DaisyParams, LfrParams, RmatParams,
    WikiLikeParams,
};
use oca_graph::io::write_edge_list_path;
use oca_graph::{
    build_ocg_from_path, read_cover_path, read_ocg_info, verify_ocg_path, write_cover_path,
    BuildOptions, Cover, CsrGraph, GraphStats,
};
use oca_hierarchy::Summary;
use oca_metrics::{average_f1, extended_modularity, overlapping_nmi, theta};
use oca_serve::{load_cover_path, save_cover_path, PersistError, RecomputeFn, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// A command failure: the stderr message plus the process exit code.
/// Plain string errors exit 1; the integrity-checking commands (`cover
/// load`, `graph verify`) use [`EXIT_CHECKSUM_MISMATCH`],
/// [`EXIT_TRUNCATED`] and [`EXIT_VERSION_MISMATCH`] so restart scripts
/// can tell damage (retry from a backup) from staleness (rebuild).
#[derive(Debug)]
pub struct CmdError {
    /// What went wrong, for stderr.
    pub message: String,
    /// The process exit code (non-zero).
    pub code: i32,
}

impl From<String> for CmdError {
    fn from(message: String) -> Self {
        CmdError { message, code: 1 }
    }
}

impl std::fmt::Display for CmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (exit {})", self.message, self.code)
    }
}

/// Exit code when a file's content checksum does not match (bit rot,
/// torn write that kept the length).
pub const EXIT_CHECKSUM_MISMATCH: i32 = 3;
/// Exit code when a file ends before its declared contents do.
pub const EXIT_TRUNCATED: i32 = 4;
/// Exit code when a file's format version is not one this build reads.
pub const EXIT_VERSION_MISMATCH: i32 = 5;

/// Maps an integrity class to its dedicated exit code.
fn integrity_exit(class: oca_graph::IntegrityClass) -> i32 {
    use oca_graph::IntegrityClass::*;
    match class {
        ChecksumMismatch => EXIT_CHECKSUM_MISMATCH,
        Truncated => EXIT_TRUNCATED,
        VersionMismatch => EXIT_VERSION_MISMATCH,
    }
}

/// Top-level dispatch; returns the message and exit code on failure.
pub fn run(cli: &Cli) -> Result<(), CmdError> {
    if cli.command.is_none() && cli.has_flag("list-algorithms") {
        print!("{}", algorithm_listing());
        return Ok(());
    }
    match cli.command.as_deref() {
        Some("generate") => generate(cli).map_err(CmdError::from),
        Some("detect") | Some("run") => detect(cli).map_err(CmdError::from),
        Some("eval") => eval(cli).map_err(CmdError::from),
        Some("stats") => stats(cli).map_err(CmdError::from),
        Some("summarize") => summarize(cli).map_err(CmdError::from),
        Some("serve") => serve(cli).map_err(CmdError::from),
        Some("cover") => cover(cli),
        Some("graph") => graph_cmd(cli),
        Some("help") | None => {
            print!("{}", usage());
            Ok(())
        }
        Some(other) => Err(CmdError::from(format!(
            "unknown command {other:?}\n\n{}",
            usage()
        ))),
    }
}

/// The usage text.
pub fn usage() -> String {
    "\
oca — Overlapping Community Search (ICDE 2010 reproduction)

USAGE: oca <command> [--key value]...

COMMANDS:
  generate   --family lfr|daisy|gnp|ba|rmat|wiki --output G.edges
             [--nodes N] [--mu F] [--seed S] [--truth T.cover]
  detect     --input G.edges | --graph G.ocg
  (or: run)  [--algorithm NAME] [--output C.cover]
             [--seed S] [--progress] [--orphans]
             [--checkpoint F.ockpt [--resume]] [--save-cover C.cover]
             plus the algorithm's own options; see --list-algorithms
  eval       (--input G.edges | --graph G.ocg) --truth T.cover --found C.cover
  stats      --input G.edges | --graph G.ocg
  summarize  (--input G.edges | --graph G.ocg) --cover C.cover
  serve      (--input G.edges | --graph G.ocg) [--addr HOST:PORT]
             [--workers N] [--seed S] [--cover C.bin] [--save-cover C.bin]
             [--recompute-secs F] [--recompute-checkpoint F.ockpt]
             [--algorithm NAME] [--fixed-c F]
             [--max-seconds F] [--deadline-ms N] [--max-pending N]
             [--idle-secs F] [--max-line-bytes N]
  cover      save --input G.edges --cover C.cover --output C.bin [--fixed-c F]
             load --input G.edges --binary C.bin [--output C.cover]
  graph      build --input G.edges[.gz] --output G.ocg [--chunk-edges N]
                   [--min-nodes N] [--tmp-dir D] [--no-relabel] [--no-verify]
             info --graph G.ocg
             verify --graph G.ocg
  help

`detect --list-algorithms` lists every registered algorithm with its
options.

Graphs come from a text edge list (`--input`, gzip autodetected; skipped
self-loops and duplicates are reported) or from a prebuilt `.ocg` file
(`--graph`), which is memory-mapped in O(1) instead of parsed. `graph
build` produces `.ocg` from an edge list through a bounded-memory external
sort (`--chunk-edges` caps the RAM), applying the cache-friendly
degree-descending relabeling by default; covers on disk always use the
input's own node ids.

Long `detect` runs survive crashes: `--checkpoint F.ockpt` persists the
driver's round-boundary state atomically; after a crash (or ^C) rerun the
same command with `--resume` and the run continues where it stopped,
producing the bit-identical cover an uninterrupted run would have. ^C and
SIGTERM always stop at the next safe point, flush the checkpoint (if
armed) and write the partial cover to `--save-cover` (if given) before
exiting cleanly. `cover load` and `graph verify` exit 3 on a checksum
mismatch, 4 on truncation and 5 on a version mismatch (1 for everything
else), naming the class in the message.

`serve` answers `query`/`local`/`topk`/`snapshot`/`stats`/`health` as
one-line JSON over TCP (try `nc` and type `query 0`). `--cover` warm-starts
from a binary cover instead of detecting at startup (a corrupt file falls
back to a cold start); `--recompute-secs` republishes fresh epochs in the
background, retrying with backoff on failure while the last good epoch
keeps serving. Overload and abuse controls: `--max-pending` bounds the
connection queue (typed `overloaded` beyond it), `--deadline-ms` caps
`local`/`topk` time (typed `deadline-exceeded` partial results),
`--idle-secs` reaps silent connections, `--max-line-bytes` caps request
lines. Send `shutdown` (or set `--max-seconds`) for a graceful drain and a
final stats line.
"
    .to_string()
}

/// Renders the registry as a listing for `--list-algorithms`.
fn algorithm_listing() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("registered algorithms:\n");
    for spec in registry().iter() {
        let _ = writeln!(out, "\n  {:<18} {}", spec.name(), spec.summary());
        for (key, help) in spec.options() {
            let _ = writeln!(out, "      --{key:<16} {help}");
        }
    }
    out
}

/// Resolves `--input` (edge list, gzip autodetected) or `--graph`
/// (prebuilt `.ocg`, memory-mapped) into a loaded graph. Edge-list
/// ingestion notes on stderr how many self-loops and duplicate edges
/// were skipped, so silently cleaned input is visible.
fn load_graph(cli: &Cli) -> Result<LoadedGraph, String> {
    let source = match (cli.get_str("graph"), cli.get_str("input")) {
        (Some(_), Some(_)) => {
            return Err("pass either --input or --graph, not both".to_string());
        }
        (Some(path), None) => GraphSource::Ocg(path.into()),
        (None, Some(path)) => GraphSource::from_path(path),
        (None, None) => return Err("missing required option --input (or --graph)".to_string()),
    };
    let loaded = source.load().map_err(|e| e.to_string())?;
    if let Some(report) = loaded.ingest {
        if report.self_loops > 0 || report.duplicates > 0 {
            eprintln!(
                "note: skipped {} self-loop(s) and {} duplicate edge(s) reading {}",
                report.self_loops,
                report.duplicates,
                source.path().display()
            );
        }
    }
    if loaded.graph.is_mapped() {
        eprintln!(
            "mapped {} ({} nodes, {} edges{})",
            source.path().display(),
            loaded.graph.node_count(),
            loaded.graph.edge_count(),
            if loaded.is_relabeled() {
                ", degree-ordered"
            } else {
                ""
            }
        );
    }
    Ok(loaded)
}

fn generate(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(
        &["family", "output", "nodes", "mu", "seed", "truth", "p", "m"],
        &[],
    )?;
    let family = cli.require("family")?.to_string();
    let output = cli.require("output")?.to_string();
    let nodes: usize = cli.get_strict("nodes", 1000)?;
    let seed: u64 = cli.get_strict("seed", 42)?;
    let mut rng = StdRng::seed_from_u64(seed);

    let (graph, truth): (CsrGraph, Option<Cover>) = match family.as_str() {
        "lfr" => {
            let mu: f64 = cli.get_strict("mu", 0.3)?;
            let b = lfr(&LfrParams::small(nodes, mu, seed));
            (b.graph, Some(b.ground_truth))
        }
        "daisy" => {
            let flowers = (nodes / 100).max(1);
            let b = daisy_tree(&DaisyParams::default_shape(100), flowers - 1, 0.05, seed);
            (b.graph, Some(b.ground_truth))
        }
        "gnp" => {
            let p: f64 = cli.get_strict("p", 0.01)?;
            (gnp(nodes, p, &mut rng), None)
        }
        "ba" => {
            let m: usize = cli.get_strict("m", 5)?;
            (barabasi_albert(nodes, m, &mut rng), None)
        }
        "rmat" => {
            let scale = (nodes.max(2) as f64).log2().ceil() as u32;
            (rmat(&RmatParams::graph500(scale, 8), &mut rng), None)
        }
        "wiki" => {
            let scale = (nodes.max(2) as f64).log2().ceil() as u32;
            let b = wiki_like(&WikiLikeParams::at_scale(scale, seed));
            (b.graph, Some(b.planted))
        }
        other => return Err(format!("unknown family {other:?}")),
    };

    write_edge_list_path(&graph, &output).map_err(|e| format!("writing {output}: {e}"))?;
    println!(
        "wrote {} ({} nodes, {} edges)",
        output,
        graph.node_count(),
        graph.edge_count()
    );
    if let Some(path) = cli.get_str("truth") {
        match truth {
            Some(t) => {
                write_cover_path(&t, path).map_err(|e| format!("writing {path}: {e}"))?;
                println!("wrote {} ({} communities)", path, t.len());
            }
            None => return Err(format!("family {family:?} has no ground truth")),
        }
    }
    Ok(())
}

/// Options the `detect` subcommand owns itself; everything else must be
/// declared by the selected algorithm's registry entry.
const DETECT_OPTIONS: [&str; 7] = [
    "input",
    "graph",
    "algorithm",
    "output",
    "seed",
    "checkpoint",
    "save-cover",
];
const DETECT_FLAGS: [&str; 4] = ["list-algorithms", "orphans", "progress", "resume"];

/// Writes `cover` to `path` in the text format through a temp-and-rename,
/// so an interruption (even a second ^C) can never leave a half-written
/// cover behind.
fn save_cover_atomic(cover: &Cover, path: &str) -> Result<(), String> {
    oca_graph::atomic_write_path(std::path::Path::new(path), |w| {
        oca_graph::write_cover(cover, w).map_err(std::io::Error::other)
    })
    .map_err(|e| format!("writing {path}: {e}"))
}

fn detect(cli: &Cli) -> Result<(), String> {
    let reg = registry();
    if cli.has_flag("list-algorithms") {
        print!("{}", algorithm_listing());
        return Ok(());
    }
    let algorithm = cli.get_str("algorithm").unwrap_or("oca").to_string();
    let spec = reg.get(&algorithm).map_err(|e| e.to_string())?;
    let mut valid: Vec<&str> = DETECT_OPTIONS.to_vec();
    valid.extend(spec.option_keys());
    cli.ensure_known(&valid, &DETECT_FLAGS)?;

    let loaded = load_graph(cli)?;
    let graph = &loaded.graph;
    let seed: u64 = cli.get_strict("seed", 42)?;
    let mut opts = DetectorOptions::new();
    for (key, value) in cli.option_pairs() {
        if !DETECT_OPTIONS.contains(&key) {
            opts.set(key, value);
        }
    }
    if cli.has_flag("orphans") {
        // Forwarded as an option so algorithms without an orphan rule
        // reject it with a typed UnknownOption error.
        opts.set("orphans", "true");
    }
    // `--checkpoint` / `--resume` forward as the registry's checkpoint
    // options, so algorithms without checkpoint support reject them with
    // a typed UnknownOption error like any other key.
    let checkpoint_path = cli.get_str("checkpoint").map(str::to_string);
    if let Some(path) = &checkpoint_path {
        opts.set("checkpoint-path", path);
        opts.set(
            "checkpoint-resume",
            if cli.has_flag("resume") {
                "strict"
            } else {
                "fresh"
            },
        );
    } else if cli.has_flag("resume") {
        return Err("--resume needs --checkpoint <path>".to_string());
    }
    // Graph-scaled tuned defaults (e.g. OCA's seed budget proportional to
    // the node count), overridden key by key by the user's options.
    let detector = spec.build_tuned(graph, &opts).map_err(|e| e.to_string())?;

    // ^C / SIGTERM cancel the run at the next safe point instead of
    // killing it: the driver flushes its checkpoint (if armed) and hands
    // back the partial cover.
    crate::signals::install();
    let cancel = oca_api::CancelToken::new();
    let watcher_flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
    {
        let token = cancel.clone();
        let done = Arc::clone(&watcher_flag);
        std::thread::spawn(move || {
            while !done.load(std::sync::atomic::Ordering::Relaxed) {
                if crate::signals::pending().is_some() {
                    token.cancel();
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        });
    }
    let mut ctx = DetectContext::new(seed).with_cancel(cancel);
    if cli.has_flag("progress") {
        ctx = ctx.with_progress(|p: Progress| match p.total {
            Some(total) => eprint!("\r[{}] {}/{total}    ", p.stage, p.done),
            None => eprint!("\r[{}] {}    ", p.stage, p.done),
        });
    }
    let outcome = detector.detect(graph, &mut ctx);
    watcher_flag.store(true, std::sync::atomic::Ordering::Relaxed);
    if cli.has_flag("progress") {
        eprintln!();
    }
    let detection = match outcome {
        Ok(detection) => detection,
        Err(oca_api::DetectError::Cancelled { partial }) => {
            let signal = crate::signals::pending().unwrap_or("cancellation");
            for (key, value) in &partial.stats {
                println!("{key} = {value}");
            }
            let cover = loaded.cover_to_input(&partial.cover);
            println!(
                "interrupted by {signal}: partial cover with {} communities, \
                 coverage {:.3}, {} iterations",
                cover.len(),
                cover.coverage(),
                partial.iterations
            );
            match &checkpoint_path {
                Some(ckpt) => println!(
                    "checkpoint flushed to {ckpt}; rerun with --resume to continue \
                     where this run stopped"
                ),
                None => println!(
                    "halted: interrupted — no checkpoint was armed, so a rerun \
                     starts over (pass --checkpoint <path> next time)"
                ),
            }
            if let Some(path) = cli.get_str("save-cover") {
                save_cover_atomic(&cover, path)?;
                println!("wrote partial cover to {path}");
            }
            // A graceful interruption is a clean exit: everything the run
            // promised to persist is on disk.
            return Ok(());
        }
        Err(e) => return Err(e.to_string()),
    };
    if !detection.complete {
        eprintln!("warning: run incomplete (internal cap hit); cover is partial");
    }
    for (key, value) in &detection.stats {
        println!("{key} = {value}");
    }
    // Detection ran in the graph's compact id space; report and save the
    // cover in the input id space the user's files speak.
    let cover = loaded.cover_to_input(&detection.cover);
    println!(
        "{}: {} communities, coverage {:.3}, {} overlap nodes, {} iterations, {:.3}s",
        detector.name(),
        cover.len(),
        cover.coverage(),
        cover.overlap_node_count(),
        detection.iterations,
        detection.elapsed.as_secs_f64()
    );
    // Say *why* the run ended: a halt on stagnation or a seed budget with
    // nodes left uncovered means the cover is intentionally partial — the
    // paper keeps "just the most relevant nodes" — which is invisible from
    // the summary line alone.
    if let Some((_, reason)) = detection.stats.iter().find(|(k, _)| *k == "halt_reason") {
        if reason == "coverage" {
            println!("halted: reached the target coverage");
        } else if reason != "none" && cover.coverage() < 1.0 {
            println!(
                "halted: {reason} at coverage {:.3} — the cover is deliberately partial; \
                 raise --max-seeds / the halting budgets, or pass --orphans for a full cover",
                cover.coverage()
            );
        }
    }
    if let Some(path) = cli.get_str("output") {
        write_cover_path(&cover, path).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = cli.get_str("save-cover") {
        save_cover_atomic(&cover, path)?;
        println!("wrote {path}");
    }
    Ok(())
}

fn eval(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(&["input", "graph", "truth", "found"], &[])?;
    let loaded = load_graph(cli)?;
    let graph = &loaded.graph;
    let truth_path = cli.require("truth")?;
    let found_path = cli.require("found")?;
    let truth = read_cover_path(graph.node_count(), truth_path)
        .map_err(|e| format!("reading {truth_path}: {e}"))?;
    let found = read_cover_path(graph.node_count(), found_path)
        .map_err(|e| format!("reading {found_path}: {e}"))?;
    // Cover files are in input ids; the three cover-only metrics are
    // invariant under the id bijection, but modularity touches the graph,
    // so the found cover crosses into compact space for it.
    println!("theta (paper eq. V.2) = {:.4}", theta(&truth, &found));
    println!(
        "overlapping NMI       = {:.4}",
        overlapping_nmi(&truth, &found)
    );
    println!("average F1            = {:.4}", average_f1(&truth, &found));
    println!(
        "extended modularity   = {:.4}",
        extended_modularity(graph, &loaded.cover_to_compact(&found))
    );
    Ok(())
}

fn stats(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(&["input", "graph"], &[])?;
    let graph = load_graph(cli)?.graph;
    let s = GraphStats::compute(&graph);
    println!("nodes        {}", s.nodes);
    println!("edges        {}", s.edges);
    println!("avg degree   {:.2}", s.avg_degree);
    println!("max degree   {}", s.max_degree);
    println!("isolated     {}", s.isolated);
    let comps = oca_graph::Components::compute(&graph);
    println!("components   {}", comps.count());
    let cores = oca_graph::CoreDecomposition::compute(&graph);
    println!("degeneracy   {}", cores.degeneracy());
    Ok(())
}

fn summarize(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(&["input", "graph", "cover"], &[])?;
    let loaded = load_graph(cli)?;
    let graph = &loaded.graph;
    let cover_path = cli.require("cover")?;
    let cover = read_cover_path(graph.node_count(), cover_path)
        .map_err(|e| format!("reading {cover_path}: {e}"))?;
    let cover = loaded.cover_to_compact(&cover);
    let summary = Summary::build(graph, &cover);
    println!("supernodes          {}", summary.len());
    println!("superedges          {}", summary.superedge_count());
    println!(
        "compression ratio   {:.4}",
        summary.compression_ratio(graph)
    );
    println!(
        "reconstruction err  {:.4}",
        summary.reconstruction_error(graph)
    );
    Ok(())
}

const SERVE_OPTIONS: [&str; 16] = [
    "input",
    "graph",
    "addr",
    "workers",
    "seed",
    "cover",
    "save-cover",
    "recompute-secs",
    "recompute-checkpoint",
    "algorithm",
    "fixed-c",
    "max-seconds",
    "deadline-ms",
    "max-pending",
    "idle-secs",
    "max-line-bytes",
];

/// Builds the initial cover for `serve`: a warm start from a binary cover
/// file when `--cover` is given, otherwise a full detection run with the
/// chosen algorithm's tuned preset. A warm-start file that fails its
/// integrity checks (truncated by a crash mid-save, bit rot) is not fatal
/// — the reason is logged and detection runs cold instead; files that are
/// *valid but wrong* (different graph, unknown version) still abort,
/// because they signal operator error rather than damage.
fn initial_cover(
    cli: &Cli,
    loaded: &LoadedGraph,
    algorithm: &str,
    seed: u64,
) -> Result<Cover, String> {
    let graph = &loaded.graph;
    if let Some(path) = cli.get_str("cover") {
        match load_cover_path(path, Some(graph.node_count())) {
            Ok((cover, _)) => {
                println!("warm start: {} communities from {path}", cover.len());
                // Saved covers are in input ids; the server detects and
                // indexes in the graph's compact space.
                return Ok(loaded.cover_to_compact(&cover));
            }
            Err(e) if e.is_corruption() => {
                println!("warm start skipped: {path} is damaged ({e}); detecting from cold");
            }
            Err(e) => return Err(format!("loading {path}: {e}")),
        }
    }
    let reg = registry();
    let spec = reg.get(algorithm).map_err(|e| e.to_string())?;
    let detector = spec
        .build_tuned(graph, &DetectorOptions::new())
        .map_err(|e| e.to_string())?;
    let detection = detector
        .detect(graph, &mut DetectContext::new(seed))
        .map_err(|e| e.to_string())?;
    println!(
        "initial detection ({}): {} communities in {:.2}s",
        detector.name(),
        detection.cover.len(),
        detection.elapsed.as_secs_f64()
    );
    Ok(detection.cover)
}

fn serve(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(&SERVE_OPTIONS, &[])?;
    let loaded = load_graph(cli)?;
    let addr = cli.get_str("addr").unwrap_or("127.0.0.1:7010").to_string();
    let workers: usize = cli.get_strict("workers", 4)?;
    let seed: u64 = cli.get_strict("seed", 42)?;
    let recompute_secs: f64 = cli.get_strict("recompute-secs", 0.0)?;
    let max_seconds: f64 = cli.get_strict("max-seconds", 0.0)?;
    let deadline_ms: u64 = cli.get_strict("deadline-ms", 0)?;
    let max_pending: usize = cli.get_strict("max-pending", 128)?;
    let idle_secs: f64 = cli.get_strict("idle-secs", 120.0)?;
    let max_line_bytes: usize = cli.get_strict("max-line-bytes", 64 * 1024)?;
    let algorithm = cli.get_str("algorithm").unwrap_or("oca").to_string();

    let mut local = LocalConfig {
        // The serving default: a scaled move budget so a hub query cannot
        // stall a worker.
        search: SearchConfig {
            budget_factor: 64.0,
            ..Default::default()
        },
        ..Default::default()
    };
    if let Some(c) = cli.get_str("fixed-c") {
        let c: f64 = c
            .parse()
            .map_err(|_| format!("invalid value for --fixed-c: {c:?}"))?;
        local.c = CStrategy::Fixed(c);
    }

    let initial = initial_cover(cli, &loaded, &algorithm, seed)?;
    let relabeling = loaded.relabeling.clone();
    let graph = Arc::new(loaded.graph);
    let config = ServeConfig {
        workers,
        seed,
        recompute_interval: (recompute_secs > 0.0).then(|| Duration::from_secs_f64(recompute_secs)),
        max_duration: (max_seconds > 0.0).then(|| Duration::from_secs_f64(max_seconds)),
        local,
        max_pending,
        max_line_bytes,
        request_deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        idle_timeout: (idle_secs > 0.0).then(|| Duration::from_secs_f64(idle_secs)),
        ..Default::default()
    };
    let recompute_ckpt = cli.get_str("recompute-checkpoint").map(str::to_string);
    if recompute_ckpt.is_some() && recompute_secs <= 0.0 {
        return Err("--recompute-checkpoint needs --recompute-secs".to_string());
    }
    let recompute: Option<Box<RecomputeFn>> = (recompute_secs > 0.0).then(|| {
        let mut ropts = DetectorOptions::new();
        if let Some(path) = &recompute_ckpt {
            // Background recompute checkpoints its rounds and salvages on
            // damage: a restarted server resumes a long recompute mid-way
            // (the driver adopts the checkpoint's recorded seed), and a
            // torn file can never wedge the unattended loop.
            ropts.set("checkpoint-path", path);
            ropts.set("checkpoint-resume", "salvage");
        }
        Box::new(oca_api::registry_recompute_with(algorithm, ropts)) as Box<RecomputeFn>
    });

    let mut server =
        Server::new(Arc::clone(&graph), initial, config, recompute).map_err(|e| e.to_string())?;
    if let Some(relabeling) = relabeling.clone() {
        server = server
            .with_relabeling(relabeling)
            .map_err(|e| e.to_string())?;
    }
    let listener =
        std::net::TcpListener::bind(&addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    println!(
        "serving {} nodes / {} edges on {bound} ({} workers); send `shutdown` to drain",
        graph.node_count(),
        graph.edge_count(),
        workers
    );
    let report = server.run(listener).map_err(|e| format!("serving: {e}"))?;
    if let Some(path) = cli.get_str("save-cover") {
        let snapshot = server.store().load();
        // Saved covers always live in input ids so they warm-start any
        // source (edge list or .ocg) over the same graph.
        let cover = match &relabeling {
            Some(r) => r.cover_to_original(&snapshot.cover),
            None => snapshot.cover.clone(),
        };
        save_cover_path(path, &cover, snapshot.c).map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "wrote {path} (epoch {}, {} communities)",
            snapshot.epoch,
            snapshot.cover.len()
        );
    }
    println!("{}", report.summary_line());
    Ok(())
}

fn cover(cli: &Cli) -> Result<(), CmdError> {
    match cli.positional(0) {
        Some("save") => cover_save(cli).map_err(CmdError::from),
        Some("load") => cover_load(cli),
        Some(other) => Err(CmdError::from(format!(
            "unknown cover action {other:?}; expected `cover save` or `cover load`"
        ))),
        None => Err(CmdError::from(
            "missing cover action; expected `cover save` or `cover load`".to_string(),
        )),
    }
}

/// `cover save`: text cover in, versioned checksummed binary out. The
/// stored interaction strength is spectral by default so a later
/// `serve --cover` warm-starts with the exact same `c`.
fn cover_save(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(&["input", "graph", "cover", "output", "fixed-c"], &[])?;
    let graph = load_graph(cli)?.graph;
    let cover_path = cli.require("cover")?;
    let output = cli.require("output")?;
    let cover = read_cover_path(graph.node_count(), cover_path)
        .map_err(|e| format!("reading {cover_path}: {e}"))?;
    let c = match cli.get_str("fixed-c") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --fixed-c: {v:?}"))?,
        None => LocalDetector::default_detector().resolve_c(&graph),
    };
    save_cover_path(output, &cover, c).map_err(|e| format!("writing {output}: {e}"))?;
    println!(
        "wrote {output} ({} communities, {} nodes, c = {c:.6})",
        cover.len(),
        cover.node_count()
    );
    Ok(())
}

/// `cover load`: verifies and summarizes a binary cover against a graph;
/// `--output` converts it back to the text format. Integrity failures
/// exit with their class's dedicated code and name the class, so a
/// restart script can distinguish a damaged file from a stale one.
fn cover_load(cli: &Cli) -> Result<(), CmdError> {
    cli.ensure_known(&["input", "graph", "binary", "output"], &[])
        .map_err(CmdError::from)?;
    let graph = load_graph(cli).map_err(CmdError::from)?.graph;
    let binary = cli.require("binary").map_err(CmdError::from)?;
    let (cover, c) = load_cover_path(binary, Some(graph.node_count())).map_err(|e| {
        let class = match &e {
            PersistError::ChecksumMismatch => Some(oca_graph::IntegrityClass::ChecksumMismatch),
            PersistError::Truncated => Some(oca_graph::IntegrityClass::Truncated),
            PersistError::UnsupportedVersion(_) => Some(oca_graph::IntegrityClass::VersionMismatch),
            _ => None,
        };
        match class {
            Some(class) => CmdError {
                message: format!("loading {binary}: {e} [{}]", class.label()),
                code: integrity_exit(class),
            },
            None => CmdError::from(format!("loading {binary}: {e}")),
        }
    })?;
    println!(
        "{binary}: {} communities, coverage {:.3}, {} overlap nodes, c = {c:.6}",
        cover.len(),
        cover.coverage(),
        cover.overlap_node_count()
    );
    if let Some(path) = cli.get_str("output") {
        write_cover_path(&cover, path)
            .map_err(|e| CmdError::from(format!("writing {path}: {e}")))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn graph_cmd(cli: &Cli) -> Result<(), CmdError> {
    match cli.positional(0) {
        Some("build") => graph_build(cli).map_err(CmdError::from),
        Some("info") => graph_info(cli).map_err(CmdError::from),
        Some("verify") => graph_verify(cli),
        Some(other) => Err(CmdError::from(format!(
            "unknown graph action {other:?}; expected `graph build`, `graph info` or `graph verify`"
        ))),
        None => Err(CmdError::from(
            "missing graph action; expected `graph build`, `graph info` or `graph verify`"
                .to_string(),
        )),
    }
}

/// `graph build`: edge list (plain or gzip) in, validated `.ocg` out,
/// through the bounded-memory external sort — the input never has to fit
/// in RAM.
fn graph_build(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(
        &["input", "output", "chunk-edges", "min-nodes", "tmp-dir"],
        &["no-relabel", "no-verify"],
    )?;
    let input = cli.require("input")?;
    let output = cli.require("output")?;
    let defaults = BuildOptions::default();
    let options = BuildOptions {
        chunk_edges: cli.get_strict("chunk-edges", defaults.chunk_edges)?,
        min_nodes: cli.get_strict("min-nodes", defaults.min_nodes)?,
        relabel: !cli.has_flag("no-relabel"),
        verify: !cli.has_flag("no-verify"),
        tmp_dir: cli.get_str("tmp-dir").map(Into::into),
    };
    let stats = build_ocg_from_path(input, output, &options).map_err(|e| e.to_string())?;
    println!(
        "wrote {output} ({} nodes, {} edges{})",
        stats.nodes,
        stats.edges,
        if options.relabel {
            ", degree-ordered"
        } else {
            ""
        }
    );
    println!(
        "read {} edge lines; skipped {} self-loop(s) and {} duplicate edge(s); {} sorted run(s)",
        stats.edges_read, stats.self_loops, stats.duplicates, stats.ingest_runs
    );
    Ok(())
}

/// `graph info`: the O(1) header read — no payload is touched.
fn graph_info(cli: &Cli) -> Result<(), String> {
    cli.ensure_known(&["graph"], &[])?;
    let path = cli.require("graph")?;
    let info = read_ocg_info(path).map_err(|e| e.to_string())?;
    print_ocg_info(path, &info);
    Ok(())
}

/// `graph verify`: full checksum + structural validation, the expensive
/// counterpart of the O(1) open-time checks. Like `cover load`, the
/// three integrity classes exit with their own codes and are named in
/// the message.
fn graph_verify(cli: &Cli) -> Result<(), CmdError> {
    cli.ensure_known(&["graph"], &[]).map_err(CmdError::from)?;
    let path = cli.require("graph").map_err(CmdError::from)?;
    let info = verify_ocg_path(path).map_err(|e| match e.integrity_class() {
        Some(class) => CmdError {
            message: format!("{e} [{}]", class.label()),
            code: integrity_exit(class),
        },
        None => CmdError::from(e.to_string()),
    })?;
    println!("{path}: checksum and structure verified");
    print_ocg_info(path, &info);
    Ok(())
}

fn print_ocg_info(path: &str, info: &oca_graph::OcgInfo) {
    println!("{path}: ocg v{}", info.version);
    println!("nodes        {}", info.node_count);
    println!("edges        {}", info.edge_count);
    println!("self loops   {} (skipped at build)", info.self_loops);
    println!("duplicates   {} (skipped at build)", info.duplicates);
    println!("relabeled    {}", info.relabeled);
    println!("validated    {}", info.validated);
    println!("checksum     {:016x}", info.checksum);
    println!("file bytes   {}", info.byte_len);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("oca_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cli(s: &str) -> Cli {
        Cli::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn generate_detect_eval_pipeline() {
        let dir = tmpdir();
        let g = dir.join("g.edges");
        let t = dir.join("t.cover");
        let c = dir.join("c.cover");
        run(&cli(&format!(
            "generate --family lfr --nodes 200 --mu 0.2 --output {} --truth {}",
            g.display(),
            t.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "detect --input {} --algorithm oca --output {}",
            g.display(),
            c.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "eval --input {} --truth {} --found {}",
            g.display(),
            t.display(),
            c.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "summarize --input {} --cover {}",
            g.display(),
            c.display()
        )))
        .unwrap();
        run(&cli(&format!("stats --input {}", g.display()))).unwrap();
    }

    #[test]
    fn all_registered_algorithms_run_via_cli() {
        let dir = tmpdir();
        let g = dir.join("g2.edges");
        run(&cli(&format!(
            "generate --family daisy --nodes 300 --output {}",
            g.display()
        )))
        .unwrap();
        for alg in registry().names() {
            run(&cli(&format!(
                "detect --input {} --algorithm {alg}",
                g.display()
            )))
            .unwrap();
        }
        // `run` is an alias for `detect`, with algorithm options forwarded.
        run(&cli(&format!(
            "run --input {} --algorithm lfk --alpha 1.2",
            g.display()
        )))
        .unwrap();
    }

    #[test]
    fn oca_parallel_options_flow_through_detect() {
        let dir = tmpdir();
        let g = dir.join("g3.edges");
        run(&cli(&format!(
            "generate --family lfr --nodes 150 --mu 0.2 --output {}",
            g.display()
        )))
        .unwrap();
        // The ticket-ordered driver accepts threads/batch from the CLI;
        // thread count never changes the cover, so this is safe to vary.
        run(&cli(&format!(
            "detect --input {} --threads 2 --batch 16",
            g.display()
        )))
        .unwrap();
        let err = run(&cli(&format!("detect --input {} --batch 0", g.display()))).unwrap_err();
        assert!(err.message.contains("round"), "{err}");
    }

    #[test]
    fn list_algorithms_flag_works() {
        run(&cli("detect --list-algorithms")).unwrap();
        run(&cli("--list-algorithms")).unwrap();
        assert!(algorithm_listing().contains("cfinder-faithful"));
    }

    #[test]
    fn unknown_options_are_rejected_with_the_valid_set() {
        let err = run(&cli("detect --input g.edges --thread 4")).unwrap_err();
        assert!(err.message.contains("--thread"), "{err}");
        assert!(err.message.contains("--threads"), "{err}");

        // Algorithm-specific keys are validated against the registry entry.
        let err = run(&cli("detect --input g.edges --algorithm lfk --threads 4")).unwrap_err();
        assert!(err.message.contains("--threads"), "{err}");
        assert!(err.message.contains("--alpha"), "{err}");

        let err = run(&cli("generate --family lfr --nodez 10 --output /tmp/x")).unwrap_err();
        assert!(
            err.message.contains("--nodez") && err.message.contains("--nodes"),
            "{err}"
        );

        let err = run(&cli("stats --input g.edges --verbose")).unwrap_err();
        assert!(err.message.contains("--verbose"), "{err}");
    }

    #[test]
    fn unknown_algorithm_lists_registered_names() {
        let err = run(&cli("detect --input g.edges --algorithm nope")).unwrap_err();
        assert!(
            err.message.contains("nope") && err.message.contains("lpa"),
            "{err}"
        );
    }

    #[test]
    fn generators_without_truth() {
        let dir = tmpdir();
        for family in ["gnp", "ba", "rmat", "wiki"] {
            let g = dir.join(format!("{family}.edges"));
            run(&cli(&format!(
                "generate --family {family} --nodes 128 --output {}",
                g.display()
            )))
            .unwrap();
        }
    }

    #[test]
    fn cover_round_trips_through_the_binary_format() {
        let dir = tmpdir();
        let g = dir.join("g4.edges");
        let text = dir.join("c4.cover");
        let bin = dir.join("c4.bin");
        let back = dir.join("c4_back.cover");
        run(&cli(&format!(
            "generate --family lfr --nodes 150 --mu 0.2 --output {} --truth {}",
            g.display(),
            text.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "cover save --input {} --cover {} --output {} --fixed-c 0.7",
            g.display(),
            text.display(),
            bin.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "cover load --input {} --binary {} --output {}",
            g.display(),
            bin.display(),
            back.display()
        )))
        .unwrap();
        let original = read_cover_path(150, text.to_str().unwrap()).unwrap();
        let round = read_cover_path(150, back.to_str().unwrap()).unwrap();
        assert_eq!(original, round);
        // Loading against the wrong graph is a typed mismatch error.
        let g2 = dir.join("g5.edges");
        run(&cli(&format!(
            "generate --family gnp --nodes 70 --output {}",
            g2.display()
        )))
        .unwrap();
        let err = run(&cli(&format!(
            "cover load --input {} --binary {}",
            g2.display(),
            bin.display()
        )))
        .unwrap_err();
        assert!(err.message.contains("150-node"), "{err}");
        // Bad actions are named.
        let err = run(&cli("cover frobnicate")).unwrap_err();
        assert!(err.message.contains("frobnicate"), "{err}");
        assert!(run(&cli("cover")).is_err());
    }

    #[test]
    fn serve_runs_detects_and_saves_a_warm_start_cover() {
        let dir = tmpdir();
        let g = dir.join("g6.edges");
        let bin = dir.join("c6.bin");
        run(&cli(&format!(
            "generate --family lfr --nodes 150 --mu 0.2 --output {}",
            g.display()
        )))
        .unwrap();
        // Cold start: detect, serve briefly, save the cover on shutdown.
        run(&cli(&format!(
            "serve --input {} --addr 127.0.0.1:0 --workers 2 --max-seconds 0.2 \
             --fixed-c 0.6 --save-cover {}",
            g.display(),
            bin.display()
        )))
        .unwrap();
        // Warm start from the saved binary cover.
        run(&cli(&format!(
            "serve --input {} --addr 127.0.0.1:0 --workers 1 --max-seconds 0.2 --cover {}",
            g.display(),
            bin.display()
        )))
        .unwrap();
        // Typo'd options are rejected with the valid set.
        let err = run(&cli(&format!("serve --input {} --worker 2", g.display()))).unwrap_err();
        assert!(
            err.message.contains("--worker") && err.message.contains("--workers"),
            "{err}"
        );
    }

    #[test]
    fn graph_build_info_verify_and_detect_from_ocg() {
        let dir = tmpdir();
        let edges = dir.join("g7.edges");
        let ocg = dir.join("g7.ocg");
        let truth = dir.join("t7.cover");
        let from_list = dir.join("c7_list.cover");
        let from_ocg = dir.join("c7_ocg.cover");
        run(&cli(&format!(
            "generate --family lfr --nodes 200 --mu 0.2 --output {} --truth {}",
            edges.display(),
            truth.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "graph build --input {} --output {}",
            edges.display(),
            ocg.display()
        )))
        .unwrap();
        run(&cli(&format!("graph info --graph {}", ocg.display()))).unwrap();
        run(&cli(&format!("graph verify --graph {}", ocg.display()))).unwrap();
        // Detection from the mmap-backed source writes covers in input
        // ids, so eval against the edge-list truth just works.
        run(&cli(&format!(
            "detect --graph {} --output {} --seed 7",
            ocg.display(),
            from_ocg.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "detect --input {} --output {} --seed 7",
            edges.display(),
            from_list.display()
        )))
        .unwrap();
        // Same graph, same seed: the two sources give the same cover in
        // input ids (the .ocg path is degree-relabeled internally, but
        // OCA's result is invariant to it only after mapping back — so
        // compare through eval instead of bytes).
        run(&cli(&format!(
            "eval --graph {} --truth {} --found {}",
            ocg.display(),
            truth.display(),
            from_ocg.display()
        )))
        .unwrap();
        run(&cli(&format!("stats --graph {}", ocg.display()))).unwrap();
        run(&cli(&format!(
            "summarize --graph {} --cover {}",
            ocg.display(),
            from_ocg.display()
        )))
        .unwrap();
        // Both sources at once is an error, as is neither.
        let err = run(&cli(&format!(
            "stats --input {} --graph {}",
            edges.display(),
            ocg.display()
        )))
        .unwrap_err();
        assert!(err.message.contains("not both"), "{err}");
        let err = run(&cli("stats")).unwrap_err();
        assert!(err.message.contains("--input"), "{err}");
        // Unknown graph actions are named.
        let err = run(&cli("graph frobnicate")).unwrap_err();
        assert!(err.message.contains("frobnicate"), "{err}");
        assert!(run(&cli("graph")).is_err());
    }

    #[test]
    fn serve_from_ocg_translates_ids() {
        let dir = tmpdir();
        let edges = dir.join("g8.edges");
        let ocg = dir.join("g8.ocg");
        let bin = dir.join("c8.bin");
        run(&cli(&format!(
            "generate --family lfr --nodes 150 --mu 0.2 --output {}",
            edges.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "graph build --input {} --output {}",
            edges.display(),
            ocg.display()
        )))
        .unwrap();
        // Serve the relabeled mmap graph; save the cover (input ids).
        run(&cli(&format!(
            "serve --graph {} --addr 127.0.0.1:0 --workers 1 --max-seconds 0.2 \
             --fixed-c 0.6 --save-cover {}",
            ocg.display(),
            bin.display()
        )))
        .unwrap();
        // The saved cover warm-starts both source kinds.
        run(&cli(&format!(
            "serve --graph {} --addr 127.0.0.1:0 --workers 1 --max-seconds 0.2 --cover {}",
            ocg.display(),
            bin.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "serve --input {} --addr 127.0.0.1:0 --workers 1 --max-seconds 0.2 --cover {}",
            edges.display(),
            bin.display()
        )))
        .unwrap();
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&cli("frobnicate")).is_err());
        assert!(run(&cli("detect")).is_err());
        assert!(run(&cli("generate --family nope --output /tmp/x")).is_err());
        let err = run(&cli(
            "generate --family gnp --nodes 10 --output /tmp/oca_g.edges --truth /tmp/oca_t.cover",
        ))
        .unwrap_err();
        assert!(err.message.contains("no ground truth"));
    }

    #[test]
    fn help_prints() {
        run(&cli("help")).unwrap();
        run(&Cli::default()).unwrap();
        assert!(usage().contains("detect"));
    }

    #[test]
    fn detect_with_checkpoint_completes_and_spends_the_file() {
        let dir = tmpdir();
        let g = dir.join("g9.edges");
        let ckpt = dir.join("run9.ockpt");
        let saved = dir.join("c9.cover");
        run(&cli(&format!(
            "generate --family lfr --nodes 150 --mu 0.2 --output {}",
            g.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "detect --input {} --checkpoint {} --save-cover {}",
            g.display(),
            ckpt.display(),
            saved.display()
        )))
        .unwrap();
        // A completed run removes its spent checkpoint and the atomic
        // cover write landed (readable as a text cover).
        assert!(!ckpt.exists(), "spent checkpoint should be removed");
        let cover = read_cover_path(150, saved.to_str().unwrap()).unwrap();
        assert!(!cover.is_empty());
        // Resuming a spent (missing) checkpoint under --resume is the
        // strict policy: the missing file just starts fresh.
        run(&cli(&format!(
            "detect --input {} --checkpoint {} --resume",
            g.display(),
            ckpt.display()
        )))
        .unwrap();
        // --resume is meaningless without --checkpoint.
        let err = run(&cli(&format!("detect --input {} --resume", g.display()))).unwrap_err();
        assert!(err.message.contains("--checkpoint"), "{err}");
        // Algorithms without checkpoint support reject the key as typed.
        let err = run(&cli(&format!(
            "detect --input {} --algorithm lpa --checkpoint {}",
            g.display(),
            ckpt.display()
        )))
        .unwrap_err();
        assert!(err.message.contains("checkpoint"), "{err}");
    }

    #[test]
    fn cover_load_exit_codes_distinguish_the_damage() {
        let dir = tmpdir();
        let g = dir.join("g10.edges");
        let text = dir.join("c10.cover");
        let bin = dir.join("c10.bin");
        run(&cli(&format!(
            "generate --family lfr --nodes 150 --mu 0.2 --output {} --truth {}",
            g.display(),
            text.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "cover save --input {} --cover {} --output {} --fixed-c 0.7",
            g.display(),
            text.display(),
            bin.display()
        )))
        .unwrap();
        let pristine = std::fs::read(&bin).unwrap();
        let load = |path: &std::path::Path| {
            run(&cli(&format!(
                "cover load --input {} --binary {}",
                g.display(),
                path.display()
            )))
        };

        // Truncation: cut inside the fixed header (magic intact).
        let cut = dir.join("c10_cut.bin");
        std::fs::write(&cut, &pristine[..20]).unwrap();
        let err = load(&cut).unwrap_err();
        assert_eq!(err.code, EXIT_TRUNCATED, "{err}");
        assert!(err.message.contains("truncation"), "{err}");

        // Bit rot: flip a payload byte; the trailing checksum catches it.
        let mut rotted = pristine.clone();
        let mid = rotted.len() - 12;
        rotted[mid] ^= 0xFF;
        let rot = dir.join("c10_rot.bin");
        std::fs::write(&rot, &rotted).unwrap();
        let err = load(&rot).unwrap_err();
        assert_eq!(err.code, EXIT_CHECKSUM_MISMATCH, "{err}");
        assert!(err.message.contains("checksum-mismatch"), "{err}");

        // Version skew: patch the u32 version field (checked before the
        // checksum, so this reports as staleness, not damage).
        let mut future = pristine.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        let ver = dir.join("c10_ver.bin");
        std::fs::write(&ver, &future).unwrap();
        let err = load(&ver).unwrap_err();
        assert_eq!(err.code, EXIT_VERSION_MISMATCH, "{err}");
        assert!(err.message.contains("version-mismatch"), "{err}");
    }

    #[test]
    fn graph_verify_exit_codes_distinguish_the_damage() {
        let dir = tmpdir();
        let edges = dir.join("g11.edges");
        let ocg = dir.join("g11.ocg");
        run(&cli(&format!(
            "generate --family gnp --nodes 100 --output {}",
            edges.display()
        )))
        .unwrap();
        run(&cli(&format!(
            "graph build --input {} --output {}",
            edges.display(),
            ocg.display()
        )))
        .unwrap();
        let pristine = std::fs::read(&ocg).unwrap();

        // Payload corruption: checksum mismatch, exit 3.
        let mut rotted = pristine.clone();
        let last = rotted.len() - 1;
        rotted[last] ^= 0xFF;
        let rot = dir.join("g11_rot.ocg");
        std::fs::write(&rot, &rotted).unwrap();
        let err = run(&cli(&format!("graph verify --graph {}", rot.display()))).unwrap_err();
        assert_eq!(err.code, EXIT_CHECKSUM_MISMATCH, "{err}");
        assert!(err.message.contains("checksum-mismatch"), "{err}");

        // Truncation: the header implies more bytes than the file has.
        let cut = dir.join("g11_cut.ocg");
        std::fs::write(&cut, &pristine[..pristine.len() - 8]).unwrap();
        let err = run(&cli(&format!("graph verify --graph {}", cut.display()))).unwrap_err();
        assert_eq!(err.code, EXIT_TRUNCATED, "{err}");
        assert!(err.message.contains("truncation"), "{err}");
    }

    #[test]
    fn serve_recompute_checkpoint_needs_recompute_and_runs() {
        let dir = tmpdir();
        let g = dir.join("g12.edges");
        let ckpt = dir.join("serve12.ockpt");
        run(&cli(&format!(
            "generate --family lfr --nodes 150 --mu 0.2 --output {}",
            g.display()
        )))
        .unwrap();
        let err = run(&cli(&format!(
            "serve --input {} --addr 127.0.0.1:0 --max-seconds 0.1 --recompute-checkpoint {}",
            g.display(),
            ckpt.display()
        )))
        .unwrap_err();
        assert!(err.message.contains("--recompute-secs"), "{err}");
        // With the interval set, a short serve run with a checkpointing
        // background recompute comes up and drains cleanly.
        run(&cli(&format!(
            "serve --input {} --addr 127.0.0.1:0 --workers 1 --max-seconds 0.3 \
             --recompute-secs 0.1 --recompute-checkpoint {}",
            g.display(),
            ckpt.display()
        )))
        .unwrap();
    }
}
