//! The `oca` command-line tool: generate benchmark graphs, detect
//! overlapping communities (OCA and baselines), evaluate against ground
//! truth, and summarize. Run `oca help` for usage.

mod args;
mod commands;
mod signals;

fn main() {
    let cli = args::Cli::from_env();
    if let Err(err) = commands::run(&cli) {
        eprintln!("error: {}", err.message);
        std::process::exit(err.code);
    }
}
