//! Minimal `--key value` argument parsing (the sanctioned dependency set
//! has no CLI crate, so this is hand-rolled and well-tested).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    /// The subcommand (first positional argument).
    pub command: Option<String>,
    /// All `--key value` pairs (last occurrence wins).
    options: HashMap<String, String>,
    /// Bare `--flag`s with no value.
    flags: Vec<String>,
}

impl Cli {
    /// Parses an argument vector (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        let mut cli = Cli::default();
        let mut i = 0usize;
        while i < args.len() {
            if let Some(key) = args[i].strip_prefix("--") {
                let next_is_value = args
                    .get(i + 1)
                    .map(|v| !v.starts_with("--"))
                    .unwrap_or(false);
                if next_is_value {
                    cli.options.insert(key.to_string(), args[i + 1].clone());
                    i += 2;
                } else {
                    cli.flags.push(key.to_string());
                    i += 1;
                }
            } else {
                if cli.command.is_none() {
                    cli.command = Some(args[i].clone());
                }
                i += 1;
            }
        }
        cli
    }

    /// Parses from the process environment.
    pub fn from_env() -> Self {
        Cli::parse(std::env::args().skip(1))
    }

    /// Typed option lookup with a default; malformed values are reported
    /// as errors rather than silently replaced by the default.
    pub fn get_strict<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v:?}")),
        }
    }

    /// String option lookup.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get_str(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// True if `--flag` was given (with no value).
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Cli {
        Cli::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn subcommand_and_options() {
        let cli = parse("detect --input g.edges --algorithm oca --seed 7");
        assert_eq!(cli.command.as_deref(), Some("detect"));
        assert_eq!(cli.get_str("input"), Some("g.edges"));
        assert_eq!(cli.get_strict::<u64>("seed", 0), Ok(7));
        assert_eq!(cli.get_strict::<usize>("missing", 42), Ok(42));
    }

    #[test]
    fn flags_without_values() {
        let cli = parse("generate --family lfr --quiet --nodes 100");
        assert!(cli.has_flag("quiet"));
        assert!(!cli.has_flag("loud"));
        assert_eq!(cli.get_strict::<usize>("nodes", 0), Ok(100));
    }

    #[test]
    fn trailing_flag() {
        let cli = parse("stats --verbose");
        assert!(cli.has_flag("verbose"));
        assert_eq!(cli.command.as_deref(), Some("stats"));
    }

    #[test]
    fn get_strict_rejects_malformed_values() {
        let cli = parse("detect --threads eight --seed 7");
        assert_eq!(cli.get_strict::<usize>("threads", 1).ok(), None);
        assert!(cli
            .get_strict::<usize>("threads", 1)
            .unwrap_err()
            .contains("--threads"));
        assert_eq!(cli.get_strict::<usize>("missing", 3), Ok(3));
        assert_eq!(cli.get_strict::<u64>("seed", 0), Ok(7));
        // Negative numbers are not swallowed into the default either.
        let cli = parse("detect --threads -4");
        assert!(cli.get_strict::<usize>("threads", 1).is_err());
    }

    #[test]
    fn last_option_wins() {
        let cli = parse("x --seed 1 --seed 2");
        assert_eq!(cli.get_strict::<u64>("seed", 0), Ok(2));
    }

    #[test]
    fn require_reports_missing() {
        let cli = parse("detect");
        assert!(cli.require("input").is_err());
        assert!(cli.require("input").unwrap_err().contains("--input"));
    }

    #[test]
    fn empty_args() {
        let cli = parse("");
        assert!(cli.command.is_none());
    }
}
