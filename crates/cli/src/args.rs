//! Minimal `--key value` argument parsing (the sanctioned dependency set
//! has no CLI crate, so this is hand-rolled and well-tested).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    /// The subcommand (first positional argument).
    pub command: Option<String>,
    /// Positional arguments after the subcommand (e.g. the `save` in
    /// `cover save`).
    positionals: Vec<String>,
    /// All `--key value` pairs (last occurrence wins).
    options: HashMap<String, String>,
    /// Bare `--flag`s with no value.
    flags: Vec<String>,
}

impl Cli {
    /// Parses an argument vector (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        let mut cli = Cli::default();
        let mut i = 0usize;
        while i < args.len() {
            if let Some(key) = args[i].strip_prefix("--") {
                let next_is_value = args
                    .get(i + 1)
                    .map(|v| !v.starts_with("--"))
                    .unwrap_or(false);
                if next_is_value {
                    cli.options.insert(key.to_string(), args[i + 1].clone());
                    i += 2;
                } else {
                    cli.flags.push(key.to_string());
                    i += 1;
                }
            } else {
                if cli.command.is_none() {
                    cli.command = Some(args[i].clone());
                } else {
                    cli.positionals.push(args[i].clone());
                }
                i += 1;
            }
        }
        cli
    }

    /// Parses from the process environment.
    pub fn from_env() -> Self {
        Cli::parse(std::env::args().skip(1))
    }

    /// Typed option lookup with a default; malformed values are reported
    /// as errors rather than silently replaced by the default.
    pub fn get_strict<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v:?}")),
        }
    }

    /// String option lookup.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get_str(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// The `i`-th positional argument after the subcommand.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(|s| s.as_str())
    }

    /// True if `--flag` was given (with no value).
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// All `--key value` option keys that were given.
    pub fn option_keys(&self) -> impl Iterator<Item = &str> {
        self.options.keys().map(|k| k.as_str())
    }

    /// The value of every given option, by key.
    pub fn option_pairs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.options.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Rejects options and flags the subcommand does not declare, so a
    /// typo like `--thread 4` is an error listing the valid set instead of
    /// being silently ignored.
    pub fn ensure_known(&self, options: &[&str], flags: &[&str]) -> Result<(), String> {
        let list = |keys: &[&str]| {
            keys.iter()
                .map(|k| format!("--{k}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut unknown_options: Vec<&str> = self
            .option_keys()
            .filter(|k| !options.contains(k))
            .collect();
        unknown_options.sort_unstable();
        if let Some(key) = unknown_options.first() {
            return Err(format!(
                "unknown option --{key}; valid options: {}",
                list(options)
            ));
        }
        let unknown_flag = self.flags.iter().find(|f| !flags.contains(&f.as_str()));
        if let Some(flag) = unknown_flag {
            return Err(if flags.is_empty() {
                format!("unknown flag --{flag}; this command takes no flags")
            } else {
                format!("unknown flag --{flag}; valid flags: {}", list(flags))
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Cli {
        Cli::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn subcommand_and_options() {
        let cli = parse("detect --input g.edges --algorithm oca --seed 7");
        assert_eq!(cli.command.as_deref(), Some("detect"));
        assert_eq!(cli.get_str("input"), Some("g.edges"));
        assert_eq!(cli.get_strict::<u64>("seed", 0), Ok(7));
        assert_eq!(cli.get_strict::<usize>("missing", 42), Ok(42));
    }

    #[test]
    fn flags_without_values() {
        let cli = parse("generate --family lfr --quiet --nodes 100");
        assert!(cli.has_flag("quiet"));
        assert!(!cli.has_flag("loud"));
        assert_eq!(cli.get_strict::<usize>("nodes", 0), Ok(100));
    }

    #[test]
    fn trailing_flag() {
        let cli = parse("stats --verbose");
        assert!(cli.has_flag("verbose"));
        assert_eq!(cli.command.as_deref(), Some("stats"));
    }

    #[test]
    fn extra_positionals_are_kept_in_order() {
        let cli = parse("cover save --input g.edges extra");
        assert_eq!(cli.command.as_deref(), Some("cover"));
        assert_eq!(cli.positional(0), Some("save"));
        assert_eq!(cli.positional(1), Some("extra"));
        assert_eq!(cli.positional(2), None);
        assert_eq!(cli.get_str("input"), Some("g.edges"));
    }

    #[test]
    fn get_strict_rejects_malformed_values() {
        let cli = parse("detect --threads eight --seed 7");
        assert_eq!(cli.get_strict::<usize>("threads", 1).ok(), None);
        assert!(cli
            .get_strict::<usize>("threads", 1)
            .unwrap_err()
            .contains("--threads"));
        assert_eq!(cli.get_strict::<usize>("missing", 3), Ok(3));
        assert_eq!(cli.get_strict::<u64>("seed", 0), Ok(7));
        // Negative numbers are not swallowed into the default either.
        let cli = parse("detect --threads -4");
        assert!(cli.get_strict::<usize>("threads", 1).is_err());
    }

    #[test]
    fn last_option_wins() {
        let cli = parse("x --seed 1 --seed 2");
        assert_eq!(cli.get_strict::<u64>("seed", 0), Ok(2));
    }

    #[test]
    fn require_reports_missing() {
        let cli = parse("detect");
        assert!(cli.require("input").is_err());
        assert!(cli.require("input").unwrap_err().contains("--input"));
    }

    #[test]
    fn empty_args() {
        let cli = parse("");
        assert!(cli.command.is_none());
    }

    #[test]
    fn ensure_known_accepts_declared_sets() {
        let cli = parse("detect --input g.edges --seed 7 --quiet");
        cli.ensure_known(&["input", "seed"], &["quiet"]).unwrap();
    }

    #[test]
    fn ensure_known_rejects_typo_options_listing_valid_ones() {
        let cli = parse("detect --input g.edges --thread 4");
        let err = cli.ensure_known(&["input", "threads"], &[]).unwrap_err();
        assert!(err.contains("--thread"), "{err}");
        assert!(err.contains("--threads"), "{err}");
        assert!(err.contains("--input"), "{err}");
    }

    #[test]
    fn ensure_known_rejects_unknown_flags() {
        let cli = parse("stats --input g.edges --verbos");
        let err = cli.ensure_known(&["input"], &["verbose"]).unwrap_err();
        assert!(
            err.contains("--verbos") && err.contains("--verbose"),
            "{err}"
        );
        let err = cli.ensure_known(&["input"], &[]).unwrap_err();
        assert!(err.contains("no flags"), "{err}");
    }
}
