//! Versioned, immutable cover snapshots and the store that publishes them.
//!
//! The serving memory model: a [`CoverSnapshot`] is immutable after
//! construction — the cover, its inverted index, and the epoch id are
//! frozen together, so every fact a reader derives from one snapshot is
//! consistent with every other fact from the same snapshot. The
//! [`SnapshotStore`] holds the current snapshot behind an `Arc`: readers
//! clone the `Arc` (a single atomic increment under a briefly-held read
//! lock) and then work entirely lock-free on their pinned snapshot, while
//! the recompute thread builds the next snapshot's index *outside* any
//! lock and swaps the `Arc` in one short write section. Readers therefore
//! never wait on a rebuild, and a reader that pinned epoch `e` keeps a
//! complete epoch-`e` view even after `e + 1` is published — the old
//! snapshot is freed when its last reader drops it.

use crate::index::CoverIndex;
use oca_graph::Cover;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One immutable, versioned view of a cover: the cover, its inverted
/// index, and the interaction strength it was detected with.
#[derive(Debug)]
pub struct CoverSnapshot {
    /// Monotonically increasing version; the warm-start snapshot is epoch
    /// 1 and every successful recompute publishes the next epoch.
    pub epoch: u64,
    /// The cover itself.
    pub cover: Cover,
    /// Inverted node→community index over `cover`.
    pub index: CoverIndex,
    /// Interaction strength `c` the cover was detected with (also used by
    /// `local` queries answered against this snapshot).
    pub c: f64,
    /// When this snapshot was constructed. `stats` reports the current
    /// snapshot's age from this — a growing age alongside recompute
    /// failures is the operator's staleness signal.
    pub published_at: Instant,
}

impl CoverSnapshot {
    /// Builds the snapshot for `cover`, constructing its index. The epoch
    /// is assigned by [`SnapshotStore::publish`]; standalone construction
    /// (tests, persistence round-trips) gets epoch 0.
    pub fn new(cover: Cover, c: f64) -> Self {
        let index = CoverIndex::build(&cover);
        CoverSnapshot {
            epoch: 0,
            cover,
            index,
            c,
            published_at: Instant::now(),
        }
    }

    /// Seconds since this snapshot was constructed.
    pub fn age_secs(&self) -> f64 {
        self.published_at.elapsed().as_secs_f64()
    }

    /// Number of nodes of the underlying graph.
    pub fn node_count(&self) -> usize {
        self.cover.node_count()
    }
}

/// The publication point: readers pin the current snapshot, the recompute
/// thread swaps in new epochs. See the [module docs](self) for the memory
/// model.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<CoverSnapshot>>,
    /// Last published epoch, readable without the lock (stats/health).
    epoch: AtomicU64,
}

impl SnapshotStore {
    /// A store whose first snapshot is `cover` at epoch 1.
    pub fn new(cover: Cover, c: f64) -> Self {
        let mut snapshot = CoverSnapshot::new(cover, c);
        snapshot.epoch = 1;
        SnapshotStore {
            current: RwLock::new(Arc::new(snapshot)),
            epoch: AtomicU64::new(1),
        }
    }

    /// Pins the current snapshot. O(1): one `Arc` clone under a read lock
    /// held for the duration of the clone only. The returned snapshot
    /// stays valid (and immutable) however many epochs are published
    /// after it.
    pub fn load(&self) -> Arc<CoverSnapshot> {
        Arc::clone(&self.current.read())
    }

    /// Publishes `cover` as the next epoch and returns it. The index is
    /// built *before* the write lock is taken, so readers are blocked only
    /// for the pointer swap itself.
    pub fn publish(&self, cover: Cover, c: f64) -> u64 {
        let mut snapshot = CoverSnapshot::new(cover, c);
        let mut current = self.current.write();
        let epoch = current.epoch + 1;
        snapshot.epoch = epoch;
        *current = Arc::new(snapshot);
        drop(current);
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    /// The last published epoch (lock-free).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::{Community, NodeId};

    fn cover(node_count: usize, sets: &[&[u32]]) -> Cover {
        Cover::new(
            node_count,
            sets.iter()
                .map(|s| Community::from_raw(s.iter().copied()))
                .collect(),
        )
    }

    #[test]
    fn store_starts_at_epoch_one_and_increments() {
        let store = SnapshotStore::new(cover(4, &[&[0, 1]]), 0.5);
        assert_eq!(store.epoch(), 1);
        let first = store.load();
        assert_eq!(first.epoch, 1);
        let e = store.publish(cover(4, &[&[0, 1], &[2, 3]]), 0.5);
        assert_eq!(e, 2);
        assert_eq!(store.epoch(), 2);
        assert_eq!(store.load().epoch, 2);
    }

    #[test]
    fn pinned_snapshots_survive_publication() {
        let store = SnapshotStore::new(cover(4, &[&[0, 1]]), 0.5);
        let pinned = store.load();
        store.publish(cover(4, &[&[2, 3]]), 0.5);
        // The pinned epoch-1 view is unchanged and internally consistent.
        assert_eq!(pinned.epoch, 1);
        assert_eq!(pinned.cover.len(), 1);
        assert_eq!(pinned.index.communities_of(NodeId(0)), &[0]);
        assert!(pinned.index.communities_of(NodeId(2)).is_empty());
        // The new epoch sees the new cover.
        let now = store.load();
        assert_eq!(now.epoch, 2);
        assert!(now.index.communities_of(NodeId(0)).is_empty());
        assert_eq!(now.index.communities_of(NodeId(2)), &[0]);
    }

    #[test]
    fn snapshot_index_matches_its_cover() {
        let snap = CoverSnapshot::new(cover(5, &[&[0, 1, 2], &[2, 3]]), 0.7);
        assert_eq!(snap.node_count(), 5);
        assert_eq!(snap.index.communities_of(NodeId(2)), &[0, 1]);
        assert_eq!(snap.c, 0.7);
    }
}
