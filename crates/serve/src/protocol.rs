//! The line protocol: plain-text requests in, one-line JSON responses out.
//!
//! Requests are single lines of whitespace-separated tokens — trivially
//! producible from `nc`/`telnet`, a shell script, or the bundled
//! [`crate::Client`]:
//!
//! ```text
//! query <v>        communities containing node v (from the index)
//! local <v>        fresh seeded ascent from v on the current snapshot
//! topk <v> <k>     top-k communities by overlap with v's neighborhood
//! snapshot         current epoch + cover summary
//! stats            request counters and latency percentiles
//! health           liveness + current epoch
//! shutdown         begin graceful shutdown (drains in-flight requests)
//! ```
//!
//! Every response is exactly one JSON line with an `"ok"` discriminator.
//! Malformed requests get a typed error object — never a dropped
//! connection:
//!
//! ```text
//! {"ok":false,"error":{"kind":"bad-request","message":"unknown command \"qeury\""}}
//! ```

use std::fmt::Write as _;

/// A parsed client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// `query <v>` — indexed membership lookup.
    Query(u32),
    /// `local <v>` — seeded local detection from `v`.
    Local(u32),
    /// `topk <v> <k>` — top-k communities by neighborhood overlap.
    TopK(u32, usize),
    /// `snapshot` — epoch + cover summary.
    Snapshot,
    /// `stats` — counters and latency percentiles.
    Stats,
    /// `health` — liveness probe.
    Health,
    /// `shutdown` — graceful shutdown.
    Shutdown,
}

/// A protocol-level error, rendered as the `"error"` object of a JSON
/// response. `kind` is a stable machine-readable discriminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Stable error class: `bad-request`, `out-of-bounds`, `cancelled`,
    /// `deadline-exceeded`, `overloaded`, `shutting-down`, `internal`.
    pub kind: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl ProtocolError {
    /// A malformed or unknown request line.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ProtocolError {
            kind: "bad-request",
            message: message.into(),
        }
    }

    /// A structurally valid request naming a node outside the graph.
    pub fn out_of_bounds(node: u32, node_count: usize) -> Self {
        ProtocolError {
            kind: "out-of-bounds",
            message: format!("node {node} out of bounds (graph has {node_count} nodes)"),
        }
    }

    /// The server's pending-connection queue is full; retry with backoff.
    pub fn overloaded() -> Self {
        ProtocolError {
            kind: "overloaded",
            message: "server overloaded, retry later".to_string(),
        }
    }

    /// The per-request deadline expired before the operation finished.
    pub fn deadline_exceeded(message: impl Into<String>) -> Self {
        ProtocolError {
            kind: "deadline-exceeded",
            message: message.into(),
        }
    }

    /// The server is draining connections for shutdown.
    pub fn shutting_down() -> Self {
        ProtocolError {
            kind: "shutting-down",
            message: "server is shutting down".to_string(),
        }
    }

    /// A request whose handler panicked; the fault was isolated to this
    /// request and the connection remains usable.
    pub fn internal(message: impl Into<String>) -> Self {
        ProtocolError {
            kind: "internal",
            message: message.into(),
        }
    }

    /// The response line for this error.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ok\":false,\"error\":{{\"kind\":\"{}\",\"message\":\"{}\"}}}}",
            self.kind,
            json_escape(&self.message)
        )
    }
}

impl Request {
    /// Parses one request line. Surplus tokens, missing arguments,
    /// non-numeric arguments and unknown commands are each reported with a
    /// message naming the problem.
    pub fn parse(line: &str) -> Result<Request, ProtocolError> {
        let mut tokens = line.split_whitespace();
        let Some(command) = tokens.next() else {
            return Err(ProtocolError::bad_request("empty request"));
        };
        let rest: Vec<&str> = tokens.collect();
        let arity = |want: usize| -> Result<(), ProtocolError> {
            if rest.len() == want {
                Ok(())
            } else {
                Err(ProtocolError::bad_request(format!(
                    "{command} takes {want} argument{}, got {}",
                    if want == 1 { "" } else { "s" },
                    rest.len()
                )))
            }
        };
        let node = |token: &str| -> Result<u32, ProtocolError> {
            token.parse::<u32>().map_err(|_| {
                ProtocolError::bad_request(format!("expected a node id, got {token:?}"))
            })
        };
        match command {
            "query" => {
                arity(1)?;
                Ok(Request::Query(node(rest[0])?))
            }
            "local" => {
                arity(1)?;
                Ok(Request::Local(node(rest[0])?))
            }
            "topk" => {
                arity(2)?;
                let k = rest[1].parse::<usize>().map_err(|_| {
                    ProtocolError::bad_request(format!("expected a count, got {:?}", rest[1]))
                })?;
                if k == 0 {
                    return Err(ProtocolError::bad_request("k must be at least 1"));
                }
                Ok(Request::TopK(node(rest[0])?, k))
            }
            "snapshot" => {
                arity(0)?;
                Ok(Request::Snapshot)
            }
            "stats" => {
                arity(0)?;
                Ok(Request::Stats)
            }
            "health" => {
                arity(0)?;
                Ok(Request::Health)
            }
            "shutdown" => {
                arity(0)?;
                Ok(Request::Shutdown)
            }
            other => Err(ProtocolError::bad_request(format!(
                "unknown command {other:?}"
            ))),
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Appends a JSON array of raw node ids to `out` (no trailing separator).
pub fn push_id_array(out: &mut String, ids: impl IntoIterator<Item = u32>) {
    out.push('[');
    for (i, id) in ids.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{id}");
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_requests_parse() {
        assert_eq!(Request::parse("query 5"), Ok(Request::Query(5)));
        assert_eq!(Request::parse("  local 0 "), Ok(Request::Local(0)));
        assert_eq!(Request::parse("topk 3 10"), Ok(Request::TopK(3, 10)));
        assert_eq!(Request::parse("snapshot"), Ok(Request::Snapshot));
        assert_eq!(Request::parse("stats"), Ok(Request::Stats));
        assert_eq!(Request::parse("health"), Ok(Request::Health));
        assert_eq!(Request::parse("shutdown"), Ok(Request::Shutdown));
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        let cases = [
            ("", "empty"),
            ("qeury 5", "unknown command"),
            ("query", "takes 1 argument"),
            ("query 1 2", "takes 1 argument"),
            ("query x", "expected a node id"),
            ("query -1", "expected a node id"),
            ("topk 3", "takes 2 arguments"),
            ("topk 3 zero", "expected a count"),
            ("topk 3 0", "at least 1"),
            ("health now", "takes 0 arguments"),
        ];
        for (line, needle) in cases {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.kind, "bad-request");
            assert!(
                err.message.contains(needle),
                "{line:?}: {:?} should mention {needle:?}",
                err.message
            );
        }
    }

    #[test]
    fn robustness_error_kinds_are_stable() {
        assert_eq!(ProtocolError::overloaded().kind, "overloaded");
        assert_eq!(
            ProtocolError::deadline_exceeded("local 3 timed out").kind,
            "deadline-exceeded"
        );
        assert_eq!(ProtocolError::shutting_down().kind, "shutting-down");
        assert_eq!(ProtocolError::internal("handler panicked").kind, "internal");
        assert!(ProtocolError::overloaded()
            .to_json()
            .starts_with("{\"ok\":false"));
    }

    #[test]
    fn error_json_is_escaped() {
        let err = ProtocolError::bad_request("bad \"quote\"\nline");
        let json = err.to_json();
        assert_eq!(
            json,
            "{\"ok\":false,\"error\":{\"kind\":\"bad-request\",\"message\":\"bad \\\"quote\\\"\\nline\"}}"
        );
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(json_escape("tab\there"), "tab\\there");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn id_arrays_render_compactly() {
        let mut s = String::new();
        push_id_array(&mut s, [1, 2, 3]);
        assert_eq!(s, "[1,2,3]");
        let mut s = String::new();
        push_id_array(&mut s, []);
        assert_eq!(s, "[]");
    }
}
