//! Binary cover persistence: save a detected cover once, warm-start the
//! server from it after a restart instead of re-running detection.
//!
//! The format is deliberately dumb and versioned (hand-rolled — the
//! workspace has no serialization dependency):
//!
//! ```text
//! magic      8  b"OCACOVER"
//! version    4  u32 LE (currently 1)
//! node_count 8  u64 LE
//! count      8  u64 LE    number of communities
//! c          8  f64 LE    interaction strength the cover was detected with
//! per community:
//!   len      4  u32 LE
//!   members  4·len u32 LE (sorted node ids)
//! checksum   8  u64 LE    FNV-1a over every preceding byte
//! ```
//!
//! Loading validates the magic, version, checksum, and every node id
//! against the expected graph size, surfacing each failure as a distinct
//! [`PersistError`] — a cover saved against one graph cannot be silently
//! served against another.

use oca_graph::{Community, Cover};
use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// File magic of the binary cover format.
pub const MAGIC: [u8; 8] = *b"OCACOVER";
/// Current format version.
pub const VERSION: u32 = 1;

/// Errors of the binary cover format.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file ends before its declared contents do.
    Truncated,
    /// The trailing checksum does not match the contents.
    ChecksumMismatch,
    /// The cover was saved for a graph of a different size.
    NodeCountMismatch {
        /// Node count of the graph being served.
        expected: usize,
        /// Node count recorded in the file.
        found: usize,
    },
    /// A member id exceeds the file's own declared node count.
    NodeOutOfBounds {
        /// The offending node id.
        node: u32,
        /// The file's declared node count.
        node_count: usize,
    },
}

impl PersistError {
    /// True for errors that mean *this file's bytes are damaged* — a torn
    /// write or bit rot — rather than a usage error (wrong path, wrong
    /// graph, future version). The serving recovery path falls back to a
    /// cold start on corruption, because the damage says nothing about the
    /// operator's intent; mismatch errors still abort, because serving a
    /// different graph than the cover was built for would be silent
    /// nonsense.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            PersistError::Truncated | PersistError::ChecksumMismatch
        )
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "cover file I/O error: {e}"),
            PersistError::BadMagic => write!(f, "not a cover file (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "cover file version {v} not supported (max {VERSION})")
            }
            PersistError::Truncated => write!(f, "cover file is truncated"),
            PersistError::ChecksumMismatch => write!(f, "cover file checksum mismatch"),
            PersistError::NodeCountMismatch { expected, found } => write!(
                f,
                "cover file is for a {found}-node graph, the loaded graph has {expected} nodes"
            ),
            PersistError::NodeOutOfBounds { node, node_count } => write!(
                f,
                "cover file names node {node} but declares only {node_count} nodes"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// FNV-1a over `bytes` — fast, dependency-free, and plenty for detecting
/// truncation and bit rot (this is an integrity check, not authentication).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serializes `cover` (detected with interaction strength `c`) to `writer`.
pub fn save_cover<W: Write>(writer: &mut W, cover: &Cover, c: f64) -> Result<(), PersistError> {
    let mut buf: Vec<u8> = Vec::with_capacity(64);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(cover.node_count() as u64).to_le_bytes());
    buf.extend_from_slice(&(cover.len() as u64).to_le_bytes());
    buf.extend_from_slice(&c.to_le_bytes());
    for community in cover.communities() {
        buf.extend_from_slice(&(community.len() as u32).to_le_bytes());
        for &v in community.members() {
            buf.extend_from_slice(&v.raw().to_le_bytes());
        }
    }
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    writer.write_all(&buf)?;
    Ok(())
}

/// Saves `cover` to a file at `path`, atomically: the bytes go to a temp
/// file that is fsynced and renamed over `path`, so a crash mid-save (even
/// `SIGKILL`) leaves either the previous complete cover or the new one —
/// never a truncated file that would fail its own checksum on warm start.
pub fn save_cover_path<P: AsRef<Path>>(path: P, cover: &Cover, c: f64) -> Result<(), PersistError> {
    oca_graph::atomic_write_path(path.as_ref(), |w| {
        save_cover(w, cover, c).map_err(|e| match e {
            PersistError::Io(io) => io,
            other => std::io::Error::other(other.to_string()),
        })
    })?;
    Ok(())
}

/// A little-endian cursor over the loaded file body.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.at.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.bytes.len() {
            return Err(PersistError::Truncated);
        }
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Deserializes a cover from `reader`, validating magic, version, checksum
/// and node-id bounds. When `expected_node_count` is given (the serving
/// path — the graph is already loaded), a file saved for a different graph
/// size is rejected with [`PersistError::NodeCountMismatch`].
pub fn load_cover<R: Read>(
    reader: &mut R,
    expected_node_count: Option<usize>,
) -> Result<(Cover, f64), PersistError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    if bytes.len() < MAGIC.len() + 4 + 8 + 8 + 8 + 8 {
        // Distinguish "not our format" from "our format, cut short" by
        // however much of the magic survives.
        let have = bytes.len().min(MAGIC.len());
        return Err(if bytes[..have] == MAGIC[..have] {
            PersistError::Truncated
        } else {
            PersistError::BadMagic
        });
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let mut cur = Cursor { bytes: body, at: 0 };
    if cur.take(MAGIC.len())? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = cur.u32()?;
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let stored = u64::from_le_bytes(trailer.try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(PersistError::ChecksumMismatch);
    }
    let node_count = cur.u64()? as usize;
    let community_count = cur.u64()? as usize;
    let c = cur.f64()?;
    if let Some(expected) = expected_node_count {
        if expected != node_count {
            return Err(PersistError::NodeCountMismatch {
                expected,
                found: node_count,
            });
        }
    }
    let mut communities = Vec::with_capacity(community_count.min(1 << 20));
    for _ in 0..community_count {
        let len = cur.u32()? as usize;
        let raw = cur.take(len * 4)?;
        let mut ids = Vec::with_capacity(len);
        for chunk in raw.chunks_exact(4) {
            let id = u32::from_le_bytes(chunk.try_into().unwrap());
            if id as usize >= node_count {
                return Err(PersistError::NodeOutOfBounds {
                    node: id,
                    node_count,
                });
            }
            ids.push(id);
        }
        communities.push(Community::from_raw(ids));
    }
    if cur.at != body.len() {
        // Trailing garbage would have broken the checksum already, but be
        // explicit: the declared community count must consume the body.
        return Err(PersistError::Truncated);
    }
    Ok((Cover::new(node_count, communities), c))
}

/// Loads a cover from a file at `path`.
pub fn load_cover_path<P: AsRef<Path>>(
    path: P,
    expected_node_count: Option<usize>,
) -> Result<(Cover, f64), PersistError> {
    let mut file = File::open(path)?;
    load_cover(&mut file, expected_node_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::NodeId;

    fn sample_cover() -> Cover {
        Cover::new(
            10,
            vec![
                Community::from_raw([0, 1, 2, 3]),
                Community::from_raw([3, 4, 5]),
                Community::from_raw([9]),
            ],
        )
    }

    fn save_to_vec(cover: &Cover, c: f64) -> Vec<u8> {
        let mut buf = Vec::new();
        save_cover(&mut buf, cover, c).unwrap();
        buf
    }

    #[test]
    fn round_trip_preserves_everything() {
        let cover = sample_cover();
        let bytes = save_to_vec(&cover, 0.375);
        let (loaded, c) = load_cover(&mut bytes.as_slice(), Some(10)).unwrap();
        assert_eq!(loaded, cover);
        assert_eq!(c, 0.375);
        assert!(loaded.communities()[0].contains(NodeId(2)));
    }

    #[test]
    fn empty_cover_round_trips() {
        let cover = Cover::empty(5);
        let bytes = save_to_vec(&cover, 0.5);
        let (loaded, _) = load_cover(&mut bytes.as_slice(), None).unwrap();
        assert_eq!(loaded, cover);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = save_to_vec(&sample_cover(), 0.5);
        bytes[0] = b'X';
        assert!(matches!(
            load_cover(&mut bytes.as_slice(), None),
            Err(PersistError::BadMagic)
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = save_to_vec(&sample_cover(), 0.5);
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            load_cover(&mut bytes.as_slice(), None),
            Err(PersistError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn flipped_bit_breaks_the_checksum() {
        let mut bytes = save_to_vec(&sample_cover(), 0.5);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            load_cover(&mut bytes.as_slice(), None),
            Err(PersistError::ChecksumMismatch)
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = save_to_vec(&sample_cover(), 0.5);
        for cut in [bytes.len() - 1, bytes.len() - 9, 20, 1] {
            let err = load_cover(&mut &bytes[..cut], None).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::Truncated | PersistError::ChecksumMismatch
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn mismatched_graph_size_is_a_typed_error() {
        let bytes = save_to_vec(&sample_cover(), 0.5);
        match load_cover(&mut bytes.as_slice(), Some(11)).unwrap_err() {
            PersistError::NodeCountMismatch { expected, found } => {
                assert_eq!((expected, found), (11, 10));
            }
            other => panic!("expected NodeCountMismatch, got {other}"),
        }
    }

    #[test]
    fn out_of_bounds_member_is_rejected_even_with_valid_checksum() {
        // Forge a file whose declared node count is too small for its own
        // members: rebuild the checksum so only the bounds check can fire.
        let cover = sample_cover();
        let mut bytes = save_to_vec(&cover, 0.5);
        bytes.truncate(bytes.len() - 8);
        bytes[12..20].copy_from_slice(&4u64.to_le_bytes());
        let checksum = super::fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        match load_cover(&mut bytes.as_slice(), None).unwrap_err() {
            PersistError::NodeOutOfBounds { node, node_count } => {
                assert!(node as usize >= node_count);
            }
            other => panic!("expected NodeOutOfBounds, got {other}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("oca-serve-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cover.bin");
        let cover = sample_cover();
        save_cover_path(&path, &cover, 0.25).unwrap();
        let (loaded, c) = load_cover_path(&path, Some(10)).unwrap();
        assert_eq!(loaded, cover);
        assert_eq!(c, 0.25);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_classification_separates_damage_from_mismatch() {
        assert!(PersistError::Truncated.is_corruption());
        assert!(PersistError::ChecksumMismatch.is_corruption());
        assert!(!PersistError::BadMagic.is_corruption());
        assert!(!PersistError::UnsupportedVersion(9).is_corruption());
        assert!(!PersistError::NodeCountMismatch {
            expected: 1,
            found: 2
        }
        .is_corruption());
        assert!(!PersistError::Io(std::io::Error::other("disk")).is_corruption());
    }

    #[test]
    fn save_leaves_no_temp_debris_and_replaces_atomically() {
        let dir = std::env::temp_dir().join(format!("oca-serve-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cover.bin");
        save_cover_path(&path, &sample_cover(), 0.5).unwrap();
        save_cover_path(&path, &Cover::empty(10), 0.5).unwrap();
        let (loaded, _) = load_cover_path(&path, Some(10)).unwrap();
        assert_eq!(loaded.len(), 0);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|name| name.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp debris: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_display_the_problem() {
        let e = PersistError::NodeCountMismatch {
            expected: 5,
            found: 7,
        };
        assert!(e.to_string().contains('5') && e.to_string().contains('7'));
        assert!(PersistError::BadMagic.to_string().contains("magic"));
    }
}
