//! The inverted node→community index: `query v` in O(memberships of v).
//!
//! A [`Cover`] stores communities as sorted member lists — answering
//! "which communities contain v?" from it means a binary search in every
//! community. The index inverts that once per cover into a CSR-shaped
//! `(offsets, community_ids)` pair, the same two-flat-array layout the
//! graph itself uses: the communities of node `v` are the slice
//! `community_ids[offsets[v] .. offsets[v + 1]]`, in ascending community
//! order. Build cost is one counting pass plus one fill pass over the
//! cover's members; memory is one `u32` per membership plus one per node.

use oca_graph::{CancelToken, Cover, CsrGraph, EpochCounters, NodeId};

/// How often `top_overlapping_cancellable` polls its token: every
/// `CANCEL_POLL_MASK + 1` neighbors (a power of two so the check is a
/// mask). Polling is cheap (one relaxed load when not cancelled) but not
/// free per neighbor at hub degrees.
const CANCEL_POLL_MASK: usize = 1023;

/// Immutable inverted index from node id to the communities containing it.
#[derive(Debug, Clone)]
pub struct CoverIndex {
    /// `offsets[v] .. offsets[v + 1]` bounds node v's memberships; length
    /// `node_count + 1`.
    offsets: Vec<u32>,
    /// Community indices, grouped by node, ascending within each node.
    community_ids: Vec<u32>,
}

impl CoverIndex {
    /// Builds the index for `cover` with two passes over its membership
    /// lists (count, then fill — the classic CSR construction).
    pub fn build(cover: &Cover) -> Self {
        let n = cover.node_count();
        let mut offsets = vec![0u32; n + 1];
        for c in cover.communities() {
            for &v in c.members() {
                offsets[v.index() + 1] += 1;
            }
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut community_ids = vec![0u32; offsets[n] as usize];
        // Communities are visited in ascending index order and each member
        // list is sorted, so every node's slice comes out ascending.
        for (ci, c) in cover.communities().iter().enumerate() {
            for &v in c.members() {
                let slot = cursor[v.index()];
                community_ids[slot as usize] = ci as u32;
                cursor[v.index()] = slot + 1;
            }
        }
        CoverIndex {
            offsets,
            community_ids,
        }
    }

    /// Number of nodes the index covers.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of (node, community) memberships.
    pub fn membership_count(&self) -> usize {
        self.community_ids.len()
    }

    /// The communities containing `v`, as ascending cover indices. Empty
    /// for orphans. Panics if `v` is out of bounds — callers validate
    /// against [`CoverIndex::node_count`] first (the server's protocol
    /// layer turns that into a typed error).
    pub fn communities_of(&self, v: NodeId) -> &[u32] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.community_ids[lo..hi]
    }

    /// The `k` communities with the largest overlap with the closed
    /// neighborhood of `v`, as `(community index, overlap)` sorted by
    /// descending overlap then ascending index — the indexed counterpart
    /// of [`Cover::top_overlapping`]. Instead of scoring every community,
    /// it bumps a counter per membership of `v` and its neighbors
    /// (`O(deg(v) · avg memberships)`), so the cost tracks the query
    /// node's degree, not the cover size. `counters` is caller-owned
    /// scratch (length ≥ the cover's community count) so sustained query
    /// loops never allocate.
    pub fn top_overlapping(
        &self,
        graph: &CsrGraph,
        v: NodeId,
        k: usize,
        counters: &mut EpochCounters,
    ) -> Vec<(u32, usize)> {
        let (scored, interrupted) = self.top_overlapping_cancellable(graph, v, k, counters, None);
        debug_assert!(!interrupted);
        scored
    }

    /// [`CoverIndex::top_overlapping`] with a cancellation point every
    /// 1024 neighbors scanned. Returns the scores
    /// accumulated so far plus `true` when interrupted — a deadline that
    /// fires mid-scan still yields a usable (if partial) ranking over the
    /// neighbors seen, which the server labels as partial rather than
    /// discarding.
    pub fn top_overlapping_cancellable(
        &self,
        graph: &CsrGraph,
        v: NodeId,
        k: usize,
        counters: &mut EpochCounters,
        cancel: Option<&CancelToken>,
    ) -> (Vec<(u32, usize)>, bool) {
        counters.begin();
        for &ci in self.communities_of(v) {
            counters.bump(ci);
        }
        let mut interrupted = false;
        for (seen, &u) in graph.neighbors(v).iter().enumerate() {
            if seen & CANCEL_POLL_MASK == CANCEL_POLL_MASK
                && cancel.is_some_and(CancelToken::is_cancelled)
            {
                interrupted = true;
                break;
            }
            for &ci in self.communities_of(u) {
                counters.bump(ci);
            }
        }
        let mut scored: Vec<(u32, usize)> = counters
            .touched()
            .iter()
            .map(|&ci| (ci, counters.get(ci) as usize))
            .collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        (scored, interrupted)
    }

    /// Approximate heap footprint in bytes (the two flat arrays).
    pub fn memory_bytes(&self) -> usize {
        (self.offsets.len() + self.community_ids.len()) * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::{from_edges, Community};

    fn c(ids: &[u32]) -> Community {
        Community::from_raw(ids.iter().copied())
    }

    #[test]
    fn index_inverts_the_cover() {
        let cover = Cover::new(6, vec![c(&[0, 1, 2]), c(&[2, 3]), c(&[5])]);
        let idx = CoverIndex::build(&cover);
        assert_eq!(idx.node_count(), 6);
        assert_eq!(idx.membership_count(), 6);
        assert_eq!(idx.communities_of(NodeId(0)), &[0]);
        assert_eq!(idx.communities_of(NodeId(2)), &[0, 1], "overlap, ascending");
        assert_eq!(idx.communities_of(NodeId(4)), &[] as &[u32], "orphan");
        assert_eq!(idx.communities_of(NodeId(5)), &[2]);
    }

    #[test]
    fn index_agrees_with_membership_index() {
        let cover = Cover::new(
            8,
            vec![c(&[0, 1, 2, 3]), c(&[2, 3, 4, 5]), c(&[0, 7]), c(&[3])],
        );
        let idx = CoverIndex::build(&cover);
        for (v, expect) in cover.membership_index().into_iter().enumerate() {
            assert_eq!(idx.communities_of(NodeId(v as u32)), expect.as_slice());
        }
    }

    #[test]
    fn empty_cover_indexes_every_node_as_orphan() {
        let idx = CoverIndex::build(&Cover::empty(4));
        assert_eq!(idx.node_count(), 4);
        assert_eq!(idx.membership_count(), 0);
        assert!(idx.communities_of(NodeId(3)).is_empty());
    }

    #[test]
    fn cancelled_topk_returns_partial_and_flags_it() {
        // A hub with enough neighbors to cross the poll mask at least once.
        let n = 3000u32;
        let g = from_edges(n as usize, (1..n).map(|u| (0, u)));
        let communities: Vec<Community> = (1..n).map(|u| c(&[0, u])).collect();
        let cover = Cover::new(n as usize, communities);
        let idx = CoverIndex::build(&cover);
        let mut counters = EpochCounters::new(cover.len());
        let token = CancelToken::new();
        token.cancel();
        let (scored, interrupted) =
            idx.top_overlapping_cancellable(&g, NodeId(0), 10, &mut counters, Some(&token));
        assert!(interrupted);
        // Partial, not empty: the hub's own memberships and the neighbors
        // scanned before the first poll are all counted.
        assert!(!scored.is_empty());
        // Uncancelled runs are never flagged and match the plain path.
        let (full, flag) = idx.top_overlapping_cancellable(
            &g,
            NodeId(0),
            10,
            &mut counters,
            Some(&CancelToken::new()),
        );
        assert!(!flag);
        assert_eq!(full, idx.top_overlapping(&g, NodeId(0), 10, &mut counters));
    }

    #[test]
    fn indexed_topk_matches_the_cover_reference() {
        let g = from_edges(6, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let cover = Cover::new(6, vec![c(&[0, 1, 2]), c(&[2, 3, 4]), c(&[5])]);
        let idx = CoverIndex::build(&cover);
        let mut counters = EpochCounters::new(cover.len());
        for v in 0..6u32 {
            for k in [1usize, 2, 10] {
                assert_eq!(
                    idx.top_overlapping(&g, NodeId(v), k, &mut counters),
                    cover.top_overlapping(&g, NodeId(v), k),
                    "node {v}, k {k}"
                );
            }
        }
    }
}
