//! The long-running query server: TCP accept loop, worker-thread pool,
//! background recompute, graceful shutdown, and the bundled [`Client`].
//!
//! Threading model: the caller's thread runs the accept loop; accepted
//! connections are queued over a **bounded** mpsc channel to a pool of
//! worker threads (each owning its reusable [`CommunityState`] and scratch
//! counters, so steady-state queries allocate only their response string).
//! An optional recompute thread periodically re-detects the cover and
//! publishes it through the [`SnapshotStore`] — readers keep answering
//! from their pinned snapshot throughout. Shutdown is cooperative via the
//! shared [`CancelToken`]: the acceptor stops queueing and closes the
//! channel, workers finish the request in flight (plus any queued
//! connections) and exit, and the recompute thread aborts its in-flight
//! detection through the same token.
//!
//! ## Failure containment
//!
//! The server is built to stay up, answering, and honest about its state
//! under partial failure:
//!
//! * **Panic isolation.** A panic inside request dispatch is caught at the
//!   request boundary, answered with a typed `internal` error, and the
//!   connection (and worker) keep serving with freshly rebuilt scratch. A
//!   panic that unwinds a whole worker thread is swallowed at the thread
//!   boundary and the accept loop respawns a replacement; both are counted
//!   in `stats`.
//! * **Overload protection.** The connection queue is bounded
//!   ([`ServeConfig::max_pending`]); when full, new connections get a
//!   one-line typed `overloaded` rejection instead of unbounded queueing.
//!   Request lines are capped at [`ServeConfig::max_line_bytes`] (typed
//!   `bad-request`, connection survives), idle connections are reaped
//!   after [`ServeConfig::idle_timeout`], and `local`/`topk` honour a
//!   per-request deadline ([`ServeConfig::request_deadline`]) by returning
//!   a partial result labelled `deadline-exceeded`.
//! * **Recompute resilience.** A failing or panicking recompute never
//!   takes the serving path down: the last good epoch keeps serving,
//!   retries back off exponentially (capped), and `health` reports the
//!   pool as degraded until a recompute succeeds again.
//!
//! Failures can also be injected deterministically through
//! [`crate::faults::FaultPlan`] — that is how the chaos harness and the
//! robustness tests drive every path above.

use crate::faults::FaultPlan;
use crate::protocol::{push_id_array, ProtocolError, Request};
use crate::snapshot::SnapshotStore;
use oca::{ticket_seed, CommunityState, LocalConfig, LocalDetector};
use oca_graph::{
    CancelToken, Cover, CsrGraph, DetectContext, DetectError, EpochCounters, NodeId, Relabeling,
};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, ErrorKind, Read as _, Write as _};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How long a worker blocks on an idle connection before re-checking the
/// cancellation token.
const READ_POLL: Duration = Duration::from_millis(100);
/// How long the acceptor sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// Longest the acceptor keeps answering late connections with a typed
/// `shutting-down` line while workers drain. Workers notice cancellation
/// within [`READ_POLL`], so this cap only matters if a worker is wedged in
/// a long request.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);
/// Recompute backoff cap: consecutive failures double the retry interval
/// up to `interval << MAX_BACKOFF_SHIFT` (32×).
const MAX_BACKOFF_SHIFT: u32 = 5;

/// Rebuilds the cover for a new epoch: `(graph, seed, cancel)` to a cover,
/// or an error message explaining why this round produced none (logged and
/// counted; the server keeps serving the last good epoch and retries with
/// backoff). Implementations should wire `cancel` into their
/// [`DetectContext`] so server shutdown aborts an in-flight recompute
/// promptly.
pub type RecomputeFn = dyn Fn(&CsrGraph, u64, &CancelToken) -> Result<Cover, String> + Send + Sync;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (= maximum concurrently served connections).
    pub workers: usize,
    /// Master seed: `local <v>` answers derive from
    /// `ticket_seed(seed, v)`, so they are identical whichever worker
    /// serves them; recompute round `r` runs with `ticket_seed(seed, r)`.
    pub seed: u64,
    /// Publish a recomputed cover this often (`None` disables recompute).
    pub recompute_interval: Option<Duration>,
    /// Auto-shutdown after this long (testing/benchmarks); `None` runs
    /// until `shutdown` or external cancellation.
    pub max_duration: Option<Duration>,
    /// Configuration of the `local` endpoint's detector. Its
    /// interaction-strength strategy is resolved once at server start —
    /// `c` is a property of the (static) graph, not of any cover.
    pub local: LocalConfig,
    /// Accepted connections waiting for a free worker beyond this are
    /// rejected with a typed `overloaded` line instead of queueing
    /// without bound.
    pub max_pending: usize,
    /// Longest accepted request line in bytes; longer lines are consumed
    /// and answered with a typed `bad-request` (the connection survives).
    pub max_line_bytes: usize,
    /// Per-request deadline for `local` and `topk`. When it fires the
    /// request returns what it has, labelled `deadline-exceeded`, instead
    /// of holding a worker indefinitely. `None` disables deadlines.
    pub request_deadline: Option<Duration>,
    /// Connections with no traffic for this long are closed so slow or
    /// abandoned clients cannot pin workers forever. `None` disables
    /// reaping.
    pub idle_timeout: Option<Duration>,
    /// Deterministic fault injection (chaos testing); defaults to off.
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            seed: 0x0CA,
            recompute_interval: None,
            max_duration: None,
            local: LocalConfig::default(),
            max_pending: 128,
            max_line_bytes: 64 * 1024,
            request_deadline: None,
            idle_timeout: Some(Duration::from_secs(120)),
            faults: FaultPlan::none(),
        }
    }
}

/// A log₂-bucketed latency histogram with lock-free recording. Bucket `b`
/// covers `[2^b, 2^(b+1))` nanoseconds; quantiles report the upper bound
/// of the matched bucket, i.e. within 2× of the true value — plenty for a
/// `stats` endpoint (benchmarks measure client-side with exact timings).
#[derive(Debug)]
struct Histogram {
    buckets: [AtomicU64; 40],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    fn record(&self, nanos: u64) {
        let bucket = (63 - (nanos | 1).leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// The `q`-quantile in microseconds (0 when nothing was recorded).
    fn quantile_us(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (bucket, &count) in counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= target {
                return (1u64 << (bucket + 1)) as f64 / 1_000.0;
            }
        }
        f64::INFINITY
    }
}

/// One endpoint's counters.
#[derive(Debug, Default)]
struct OpStats {
    count: AtomicU64,
    hist: Histogram,
}

impl OpStats {
    fn record(&self, elapsed: Duration) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.hist.record(elapsed.as_nanos() as u64);
    }
}

/// Server-wide counters, shared across workers.
#[derive(Debug, Default)]
struct ServeStats {
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    recomputes: AtomicU64,
    // Robustness counters.
    live_workers: AtomicU64,
    panics: AtomicU64,
    respawns: AtomicU64,
    overloaded_rejects: AtomicU64,
    oversized_lines: AtomicU64,
    idle_reaped: AtomicU64,
    deadline_hits: AtomicU64,
    shutdown_rejects: AtomicU64,
    recompute_failures: AtomicU64,
    consecutive_recompute_failures: AtomicU64,
    last_recovery_ms: AtomicU64,
    last_recompute_error: parking_lot::Mutex<String>,
    query: OpStats,
    local: OpStats,
    topk: OpStats,
}

/// Decrements the live-worker gauge when its worker thread exits, however
/// it exits — the counter was incremented by the spawner *before* the
/// thread started, so the supervisor never observes a phantom worker.
struct LiveWorkerGuard<'a>(&'a ServeStats);

impl Drop for LiveWorkerGuard<'_> {
    fn drop(&mut self) {
        self.0.live_workers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Latency summary of one endpoint in the final [`ServeReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpLatency {
    /// Requests served.
    pub count: u64,
    /// Median latency in microseconds (log-bucket upper bound).
    pub p50_us: f64,
    /// 99th-percentile latency in microseconds (log-bucket upper bound).
    pub p99_us: f64,
}

/// What the server did over its lifetime, returned by [`Server::run`]
/// after shutdown completes (the CLI renders this as the final stats
/// line).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Connections accepted.
    pub connections: u64,
    /// Requests served (including ones answered with protocol errors).
    pub requests: u64,
    /// Requests answered with an error object.
    pub errors: u64,
    /// Cover recomputes published.
    pub recomputes: u64,
    /// Epoch at shutdown.
    pub final_epoch: u64,
    /// Panics caught (request handlers, worker threads, recompute).
    pub panics: u64,
    /// Worker threads respawned after dying.
    pub respawns: u64,
    /// Connections rejected with `overloaded`.
    pub overloaded_rejects: u64,
    /// Request lines rejected for exceeding the size cap.
    pub oversized_lines: u64,
    /// Idle connections reaped.
    pub idle_reaped: u64,
    /// Requests answered with a `deadline-exceeded` partial result.
    pub deadline_hits: u64,
    /// Requests rejected with `shutting-down` during drain.
    pub shutdown_rejects: u64,
    /// Recompute rounds that failed (error or panic).
    pub recompute_failures: u64,
    /// Whether the server was degraded (dead workers or a failing
    /// recompute) at the moment of shutdown.
    pub degraded: bool,
    /// `query` endpoint latency.
    pub query: OpLatency,
    /// `local` endpoint latency.
    pub local: OpLatency,
    /// `topk` endpoint latency.
    pub topk: OpLatency,
}

impl ServeReport {
    /// The one-line summary the CLI prints at shutdown.
    pub fn summary_line(&self) -> String {
        format!(
            "served {} requests over {} connections (errors {}, recomputes {}, final epoch {}); \
             query p50/p99 {:.1}/{:.1}us over {}, local p50/p99 {:.1}/{:.1}us over {}, \
             topk p50/p99 {:.1}/{:.1}us over {}; \
             robustness: panics {}, respawns {}, overloaded {}, oversized {}, idle-reaped {}, \
             deadline {}, shutdown-rejects {}, recompute-failures {}{}",
            self.requests,
            self.connections,
            self.errors,
            self.recomputes,
            self.final_epoch,
            self.query.p50_us,
            self.query.p99_us,
            self.query.count,
            self.local.p50_us,
            self.local.p99_us,
            self.local.count,
            self.topk.p50_us,
            self.topk.p99_us,
            self.topk.count,
            self.panics,
            self.respawns,
            self.overloaded_rejects,
            self.oversized_lines,
            self.idle_reaped,
            self.deadline_hits,
            self.shutdown_rejects,
            self.recompute_failures,
            if self.degraded { " (degraded)" } else { "" },
        )
    }
}

/// Per-worker reusable scratch: the `CommunityState` (O(n) to build, so
/// built once per worker) and the `topk` overlap counters.
struct WorkerScratch<'g> {
    state: CommunityState<'g>,
    counters: EpochCounters,
}

/// Best-effort text of a panic payload for the typed `internal` response.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

/// The query server. Construct with [`Server::new`], then call
/// [`Server::run`] with a bound listener; `run` blocks until shutdown and
/// returns the [`ServeReport`].
pub struct Server {
    graph: std::sync::Arc<CsrGraph>,
    store: SnapshotStore,
    config: ServeConfig,
    detector: LocalDetector,
    c: f64,
    cancel: CancelToken,
    stats: ServeStats,
    recompute: Option<Box<RecomputeFn>>,
    relabeling: Option<Relabeling>,
    started: Instant,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("node_count", &self.graph.node_count())
            .field("epoch", &self.store.epoch())
            .field("workers", &self.config.workers)
            .field("has_recompute", &self.recompute.is_some())
            .finish()
    }
}

impl Server {
    /// Builds a server warm-started with `cover` (epoch 1). `recompute`
    /// (if given, together with `config.recompute_interval`) periodically
    /// rebuilds the cover and publishes the next epoch.
    pub fn new(
        graph: std::sync::Arc<CsrGraph>,
        cover: Cover,
        config: ServeConfig,
        recompute: Option<Box<RecomputeFn>>,
    ) -> Result<Server, DetectError> {
        if config.workers < 1 {
            return Err(DetectError::InvalidConfig {
                algorithm: "serve",
                message: "need at least one worker thread".to_string(),
            });
        }
        if cover.node_count() != graph.node_count() {
            return Err(DetectError::InvalidConfig {
                algorithm: "serve",
                message: format!(
                    "cover is over {} nodes but the graph has {}",
                    cover.node_count(),
                    graph.node_count()
                ),
            });
        }
        let detector = LocalDetector::new(config.local.clone())?;
        let c = detector.resolve_c(&graph);
        Ok(Server {
            store: SnapshotStore::new(cover, c),
            graph,
            config,
            detector,
            c,
            cancel: CancelToken::new(),
            stats: ServeStats::default(),
            recompute,
            relabeling: None,
            started: Instant::now(),
        })
    }

    /// Serves a relabeled (e.g. degree-ordered `.ocg`) graph under its
    /// *input* id space: request node ids are translated to compact ids
    /// before dispatch, and member arrays in responses are translated
    /// back, so clients never see the storage layout. The warm-start
    /// cover passed to [`Server::new`] must already be in compact ids.
    pub fn with_relabeling(mut self, relabeling: Relabeling) -> Result<Server, DetectError> {
        if relabeling.len() != self.graph.node_count() {
            return Err(DetectError::InvalidConfig {
                algorithm: "serve",
                message: format!(
                    "relabeling covers {} nodes but the graph has {}",
                    relabeling.len(),
                    self.graph.node_count()
                ),
            });
        }
        self.relabeling = (!relabeling.is_identity()).then_some(relabeling);
        Ok(self)
    }

    /// Maps a compact node id back to the id space clients speak.
    #[inline]
    fn external_id(&self, v: NodeId) -> u32 {
        match &self.relabeling {
            Some(r) => r.to_original(v).raw(),
            None => v.raw(),
        }
    }

    /// A clone of the shutdown token — cancel it (e.g. from a signal
    /// handler or a test) to begin graceful shutdown.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The snapshot store (the bench reads epochs through this).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// The token governing one request: a child carrying the configured
    /// deadline (so a timeout cancels the request, not the server), or
    /// the shutdown token itself when deadlines are off.
    fn request_token(&self) -> CancelToken {
        match self.config.request_deadline {
            Some(d) => self.cancel.child_with_deadline(Instant::now() + d),
            None => self.cancel.clone(),
        }
    }

    /// True when the server is running but impaired: dead (not yet
    /// respawned) workers, or a recompute that is currently failing.
    fn degraded_reason(&self) -> Option<String> {
        let live = self.stats.live_workers.load(Ordering::Relaxed) as usize;
        // The gauge only moves once `run` spawns the pool; a server that
        // is not running yet is not degraded.
        if live > 0 && live < self.config.workers {
            return Some(format!("{live}/{} workers live", self.config.workers));
        }
        let fails = self
            .stats
            .consecutive_recompute_failures
            .load(Ordering::Relaxed);
        if fails > 0 {
            return Some(format!("{fails} consecutive recompute failures"));
        }
        None
    }

    /// Serves until shutdown (a `shutdown` request, cancellation of
    /// [`Server::cancel_token`], or `config.max_duration` elapsing), then
    /// drains and returns the lifetime report.
    pub fn run(&self, listener: TcpListener) -> std::io::Result<ServeReport> {
        listener.set_nonblocking(true)?;
        let deadline = self.config.max_duration.map(|d| Instant::now() + d);
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(self.config.max_pending.max(1));
        let conn_rx = Mutex::new(conn_rx);
        let conn_rx = &conn_rx;
        std::thread::scope(|scope| {
            // Spawning increments the gauge *before* the thread exists, so
            // the supervisor below can never over-respawn; the guard
            // decrements when the thread exits for any reason. A panic
            // that unwinds the whole worker (not just a request) is
            // swallowed here so the scope's implicit join cannot re-raise
            // it on the accept thread.
            let spawn_worker = || {
                self.stats.live_workers.fetch_add(1, Ordering::Relaxed);
                scope.spawn(move || {
                    let _live = LiveWorkerGuard(&self.stats);
                    if catch_unwind(AssertUnwindSafe(|| self.worker_loop(conn_rx))).is_err() {
                        self.stats.panics.fetch_add(1, Ordering::Relaxed);
                    }
                });
            };
            for _ in 0..self.config.workers {
                spawn_worker();
            }
            if let (Some(interval), Some(recompute)) =
                (self.config.recompute_interval, self.recompute.as_deref())
            {
                scope.spawn(move || self.recompute_loop(interval, recompute));
            }
            // Accept loop on the calling thread; it doubles as the worker
            // supervisor.
            loop {
                if self.cancel.is_cancelled() {
                    break;
                }
                if let Some(deadline) = deadline {
                    if Instant::now() >= deadline {
                        self.cancel.cancel();
                        break;
                    }
                }
                let live = self.stats.live_workers.load(Ordering::Relaxed) as usize;
                if live < self.config.workers {
                    self.stats.respawns.fetch_add(1, Ordering::Relaxed);
                    spawn_worker();
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        self.stats.connections.fetch_add(1, Ordering::Relaxed);
                        match conn_tx.try_send(stream) {
                            Ok(()) => {}
                            Err(TrySendError::Full(stream)) => self.reject(
                                stream,
                                &ProtocolError::overloaded(),
                                &self.stats.overloaded_rejects,
                            ),
                            // The receiver lives in this frame, so a
                            // disconnect is impossible; bail defensively.
                            Err(TrySendError::Disconnected(_)) => break,
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
            // Drain: closing the channel lets workers finish queued
            // connections and exit. While they do, late connections get a
            // typed `shutting-down` line rather than silence.
            drop(conn_tx);
            let grace = Instant::now() + SHUTDOWN_GRACE;
            while self.stats.live_workers.load(Ordering::Relaxed) > 0 && Instant::now() < grace {
                match listener.accept() {
                    Ok((stream, _)) => {
                        self.stats.connections.fetch_add(1, Ordering::Relaxed);
                        self.reject(
                            stream,
                            &ProtocolError::shutting_down(),
                            &self.stats.shutdown_rejects,
                        );
                    }
                    _ => std::thread::sleep(ACCEPT_POLL),
                }
            }
        });
        Ok(self.report())
    }

    /// Answers a connection that will not be served (queue full, or
    /// draining for shutdown) with a single typed error line, then closes
    /// it. Best-effort: a peer that already vanished just loses the line.
    fn reject(&self, mut stream: TcpStream, error: &ProtocolError, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_nodelay(true);
        let _ = stream.write_all(error.to_json().as_bytes());
        let _ = stream.write_all(b"\n");
    }

    /// The lifetime report so far.
    fn report(&self) -> ServeReport {
        let op = |s: &OpStats| OpLatency {
            count: s.count.load(Ordering::Relaxed),
            p50_us: s.hist.quantile_us(0.50),
            p99_us: s.hist.quantile_us(0.99),
        };
        ServeReport {
            connections: self.stats.connections.load(Ordering::Relaxed),
            requests: self.stats.requests.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            recomputes: self.stats.recomputes.load(Ordering::Relaxed),
            final_epoch: self.store.epoch(),
            panics: self.stats.panics.load(Ordering::Relaxed),
            respawns: self.stats.respawns.load(Ordering::Relaxed),
            overloaded_rejects: self.stats.overloaded_rejects.load(Ordering::Relaxed),
            oversized_lines: self.stats.oversized_lines.load(Ordering::Relaxed),
            idle_reaped: self.stats.idle_reaped.load(Ordering::Relaxed),
            deadline_hits: self.stats.deadline_hits.load(Ordering::Relaxed),
            shutdown_rejects: self.stats.shutdown_rejects.load(Ordering::Relaxed),
            recompute_failures: self.stats.recompute_failures.load(Ordering::Relaxed),
            degraded: self
                .stats
                .consecutive_recompute_failures
                .load(Ordering::Relaxed)
                > 0,
            query: op(&self.stats.query),
            local: op(&self.stats.local),
            topk: op(&self.stats.topk),
        }
    }

    fn worker_loop(&self, conn_rx: &Mutex<mpsc::Receiver<TcpStream>>) {
        let mut scratch = WorkerScratch {
            state: CommunityState::new(&self.graph, self.c),
            counters: EpochCounters::new(0),
        };
        loop {
            // Hold the lock only while waiting for the next connection;
            // a disconnected channel (acceptor exited) ends the worker
            // after the queue is drained.
            let stream = match conn_rx.lock().unwrap_or_else(|p| p.into_inner()).recv() {
                Ok(stream) => stream,
                Err(_) => break,
            };
            let _ = self.serve_connection(stream, &mut scratch);
            // Fail point: die *between* connections, unwinding the whole
            // thread past the per-request isolation — this is what the
            // supervisor's respawn path is for.
            if self.config.faults.should_kill_worker() {
                panic!("injected worker kill");
            }
        }
    }

    /// Serves one connection until the peer closes it, an I/O error,
    /// shutdown, or the idle reaper. Complete request lines are always
    /// answered — with a typed error if oversized, non-UTF-8, received
    /// during drain, or if their handler panicked.
    fn serve_connection<'g>(
        &'g self,
        stream: TcpStream,
        scratch: &mut WorkerScratch<'g>,
    ) -> std::io::Result<()> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(READ_POLL))?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        // Accumulates the current request line, bounded by
        // `max_line_bytes`; once a line overflows, `discarding` swallows
        // the remainder so one huge line costs one error response, not an
        // unbounded buffer.
        let mut line: Vec<u8> = Vec::new();
        let mut discarding = false;
        let mut last_activity = Instant::now();
        let max_line = self.config.max_line_bytes.max(1);
        loop {
            let (consumed, complete) = match reader.fill_buf() {
                Ok([]) => break, // EOF
                Ok(buf) => {
                    last_activity = Instant::now();
                    let newline = buf.iter().position(|&b| b == b'\n');
                    let take = newline.unwrap_or(buf.len());
                    if !discarding {
                        if line.len() + take > max_line {
                            discarding = true;
                            line.clear();
                        } else {
                            line.extend_from_slice(&buf[..take]);
                        }
                    }
                    match newline {
                        Some(pos) => (pos + 1, true),
                        None => (take, false),
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    // Idle: a partially read line stays in `line` and
                    // completes on a later pass.
                    if self.cancel.is_cancelled() {
                        break;
                    }
                    if let Some(idle) = self.config.idle_timeout {
                        if last_activity.elapsed() >= idle {
                            self.stats.idle_reaped.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                    continue;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            reader.consume(consumed);
            if !complete {
                continue;
            }
            let mut close_after = false;
            let response = if discarding {
                discarding = false;
                self.stats.requests.fetch_add(1, Ordering::Relaxed);
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                self.stats.oversized_lines.fetch_add(1, Ordering::Relaxed);
                ProtocolError::bad_request(format!("request line exceeds {max_line} bytes"))
                    .to_json()
            } else if self.cancel.is_cancelled() {
                // Drain semantics: whatever was in flight when shutdown
                // began has been answered; requests arriving after it get
                // a typed rejection and the connection closes.
                self.stats.requests.fetch_add(1, Ordering::Relaxed);
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                self.stats.shutdown_rejects.fetch_add(1, Ordering::Relaxed);
                close_after = true;
                ProtocolError::shutting_down().to_json()
            } else {
                match std::str::from_utf8(&line) {
                    Ok(text) => self.respond_isolated(text.trim(), scratch),
                    Err(_) => {
                        self.stats.requests.fetch_add(1, Ordering::Relaxed);
                        self.stats.errors.fetch_add(1, Ordering::Relaxed);
                        ProtocolError::bad_request("request was not valid UTF-8").to_json()
                    }
                }
            };
            line.clear();
            writer.write_all(response.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            if close_after {
                break;
            }
        }
        Ok(())
    }

    /// [`Server::respond`] behind a panic boundary: a handler panic is
    /// converted to a typed `internal` error and the worker's scratch is
    /// rebuilt (the unwind may have left it mid-mutation), so the
    /// connection — and the worker — keep serving.
    fn respond_isolated<'g>(&'g self, line: &str, scratch: &mut WorkerScratch<'g>) -> String {
        match catch_unwind(AssertUnwindSafe(|| self.respond(line, scratch))) {
            Ok(response) => response,
            Err(payload) => {
                self.stats.panics.fetch_add(1, Ordering::Relaxed);
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                scratch.state = CommunityState::new(&self.graph, self.c);
                scratch.counters = EpochCounters::new(0);
                ProtocolError::internal(format!(
                    "request handler panicked: {}",
                    panic_message(payload.as_ref())
                ))
                .to_json()
            }
        }
    }

    /// Produces the JSON response line for one request line.
    fn respond(&self, line: &str, scratch: &mut WorkerScratch<'_>) -> String {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(e) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                return e.to_json();
            }
        };
        // Fail point: panic inside dispatch of a data request, exercising
        // the per-request isolation in `respond_isolated`.
        if matches!(
            request,
            Request::Query(_) | Request::Local(_) | Request::TopK(_, _)
        ) && self.config.faults.should_panic_request()
        {
            panic!("injected request panic");
        }
        let timed = Instant::now();
        let result = match request {
            Request::Query(v) => {
                let r = self.do_query(v);
                self.stats.query.record(timed.elapsed());
                r
            }
            Request::Local(v) => {
                let r = self.do_local(v, scratch);
                self.stats.local.record(timed.elapsed());
                r
            }
            Request::TopK(v, k) => {
                let r = self.do_topk(v, k, scratch);
                self.stats.topk.record(timed.elapsed());
                r
            }
            Request::Snapshot => Ok(self.do_snapshot()),
            Request::Stats => Ok(self.do_stats()),
            Request::Health => Ok(self.do_health()),
            Request::Shutdown => {
                self.cancel.cancel();
                Ok(format!(
                    "{{\"ok\":true,\"op\":\"shutdown\",\"epoch\":{},\"draining\":true}}",
                    self.store.epoch()
                ))
            }
        };
        match result {
            Ok(json) => json,
            Err(e) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                e.to_json()
            }
        }
    }

    fn check_node(&self, v: u32) -> Result<NodeId, ProtocolError> {
        let n = self.graph.node_count();
        if (v as usize) < n {
            Ok(match &self.relabeling {
                Some(r) => r.to_compact(NodeId(v)),
                None => NodeId(v),
            })
        } else {
            Err(ProtocolError::out_of_bounds(v, n))
        }
    }

    fn do_query(&self, v: u32) -> Result<String, ProtocolError> {
        let node = self.check_node(v)?;
        let snapshot = self.store.load();
        let ids = snapshot.index.communities_of(node);
        let mut out = String::with_capacity(64 + ids.len() * 32);
        let _ = write!(
            out,
            "{{\"ok\":true,\"op\":\"query\",\"epoch\":{},\"node\":{v},\"count\":{},\"communities\":[",
            snapshot.epoch,
            ids.len()
        );
        for (i, &ci) in ids.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let community = &snapshot.cover.communities()[ci as usize];
            let _ = write!(
                out,
                "{{\"id\":{ci},\"size\":{},\"members\":",
                community.len()
            );
            push_id_array(
                &mut out,
                community.members().iter().map(|&m| self.external_id(m)),
            );
            out.push('}');
        }
        out.push_str("]}");
        Ok(out)
    }

    fn do_local(&self, v: u32, scratch: &mut WorkerScratch<'_>) -> Result<String, ProtocolError> {
        let node = self.check_node(v)?;
        let token = self.request_token();
        // Fail point: stall after the deadline clock started, so the
        // deadline observably fires mid-request.
        if let Some(stall) = self.config.faults.request_stall() {
            std::thread::sleep(stall);
        }
        let ctx = DetectContext::new(self.config.seed).with_cancel(token.clone());
        let found =
            match self
                .detector
                .detect_with(&self.graph, &mut scratch.state, self.c, &[node], &ctx)
            {
                Ok(found) => found,
                Err(DetectError::Cancelled { partial })
                    if token.deadline_exceeded() && !self.cancel.is_cancelled() =>
                {
                    // Deadline, not shutdown: return the community grown so
                    // far, labelled as partial.
                    self.stats.deadline_hits.fetch_add(1, Ordering::Relaxed);
                    let members: &[NodeId] = partial
                        .cover
                        .communities()
                        .first()
                        .map(|c| c.members())
                        .unwrap_or(&[]);
                    let mut out = String::with_capacity(128 + members.len() * 8);
                    let _ = write!(
                    out,
                    "{{\"ok\":true,\"op\":\"local\",\"epoch\":{},\"node\":{v},\"partial\":true,\
                     \"why\":\"deadline-exceeded\",\"size\":{},\"members\":",
                    self.store.epoch(),
                    members.len()
                );
                    push_id_array(&mut out, members.iter().map(|&m| self.external_id(m)));
                    out.push('}');
                    return Ok(out);
                }
                Err(DetectError::Cancelled { .. }) => {
                    return Err(ProtocolError {
                        kind: "cancelled",
                        message: "server is shutting down".to_string(),
                    });
                }
                Err(other) => return Err(ProtocolError::internal(other.to_string())),
            };
        let mut out = String::with_capacity(96 + found.community.len() * 8);
        let _ = write!(
            out,
            "{{\"ok\":true,\"op\":\"local\",\"epoch\":{},\"node\":{v},\"size\":{},\
             \"fitness\":{:.6},\"moves\":{},\"converged\":{},\"stop\":\"{}\",\"members\":",
            self.store.epoch(),
            found.community.len(),
            found.fitness,
            found.moves,
            found.converged,
            found.stop.label()
        );
        push_id_array(
            &mut out,
            found
                .community
                .members()
                .iter()
                .map(|&m| self.external_id(m)),
        );
        out.push('}');
        Ok(out)
    }

    fn do_topk(
        &self,
        v: u32,
        k: usize,
        scratch: &mut WorkerScratch<'_>,
    ) -> Result<String, ProtocolError> {
        let node = self.check_node(v)?;
        let token = self.request_token();
        if let Some(stall) = self.config.faults.request_stall() {
            std::thread::sleep(stall);
        }
        let snapshot = self.store.load();
        if scratch.counters.len() < snapshot.cover.len() {
            scratch.counters = EpochCounters::new(snapshot.cover.len());
        }
        let (top, interrupted) = snapshot.index.top_overlapping_cancellable(
            &self.graph,
            node,
            k,
            &mut scratch.counters,
            Some(&token),
        );
        let partial = if interrupted {
            if token.deadline_exceeded() && !self.cancel.is_cancelled() {
                self.stats.deadline_hits.fetch_add(1, Ordering::Relaxed);
                true
            } else {
                return Err(ProtocolError {
                    kind: "cancelled",
                    message: "server is shutting down".to_string(),
                });
            }
        } else {
            false
        };
        let mut out = String::with_capacity(64 + top.len() * 32);
        let _ = write!(
            out,
            "{{\"ok\":true,\"op\":\"topk\",\"epoch\":{},\"node\":{v},\"k\":{k},",
            snapshot.epoch
        );
        if partial {
            out.push_str("\"partial\":true,\"why\":\"deadline-exceeded\",");
        }
        out.push_str("\"results\":[");
        for (i, &(ci, overlap)) in top.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let size = snapshot.cover.communities()[ci as usize].len();
            let _ = write!(out, "{{\"id\":{ci},\"overlap\":{overlap},\"size\":{size}}}");
        }
        out.push_str("]}");
        Ok(out)
    }

    fn do_snapshot(&self) -> String {
        let snapshot = self.store.load();
        format!(
            "{{\"ok\":true,\"op\":\"snapshot\",\"epoch\":{},\"node_count\":{},\
             \"communities\":{},\"memberships\":{},\"coverage\":{:.4},\"c\":{:.6},\
             \"index_bytes\":{}}}",
            snapshot.epoch,
            snapshot.node_count(),
            snapshot.cover.len(),
            snapshot.index.membership_count(),
            snapshot.cover.coverage(),
            snapshot.c,
            snapshot.index.memory_bytes()
        )
    }

    fn do_health(&self) -> String {
        match self.degraded_reason() {
            None => format!(
                "{{\"ok\":true,\"op\":\"health\",\"epoch\":{},\"degraded\":false}}",
                self.store.epoch()
            ),
            Some(reason) => format!(
                "{{\"ok\":false,\"op\":\"health\",\"epoch\":{},\"degraded\":true,\"reason\":\"{}\"}}",
                self.store.epoch(),
                crate::protocol::json_escape(&reason)
            ),
        }
    }

    fn do_stats(&self) -> String {
        let op = |s: &OpStats| {
            format!(
                "{{\"count\":{},\"p50_us\":{:.1},\"p99_us\":{:.1}}}",
                s.count.load(Ordering::Relaxed),
                s.hist.quantile_us(0.50),
                s.hist.quantile_us(0.99)
            )
        };
        let last_error = self.stats.last_recompute_error.lock().clone();
        format!(
            "{{\"ok\":true,\"op\":\"stats\",\"epoch\":{},\"uptime_ms\":{},\
             \"connections\":{},\"requests\":{},\"errors\":{},\"recomputes\":{},\
             \"workers\":{{\"configured\":{},\"live\":{},\"panics\":{},\"respawns\":{}}},\
             \"robustness\":{{\"overloaded_rejects\":{},\"oversized_lines\":{},\
             \"idle_reaped\":{},\"deadline_hits\":{},\"shutdown_rejects\":{}}},\
             \"recompute\":{{\"published\":{},\"failures\":{},\"consecutive_failures\":{},\
             \"degraded\":{},\"last_recovery_ms\":{},\"last_error\":\"{}\",\
             \"epoch_age_secs\":{:.3}}},\
             \"latency\":{{\"query\":{},\"local\":{},\"topk\":{}}}}}",
            self.store.epoch(),
            self.started.elapsed().as_millis(),
            self.stats.connections.load(Ordering::Relaxed),
            self.stats.requests.load(Ordering::Relaxed),
            self.stats.errors.load(Ordering::Relaxed),
            self.stats.recomputes.load(Ordering::Relaxed),
            self.config.workers,
            self.stats.live_workers.load(Ordering::Relaxed),
            self.stats.panics.load(Ordering::Relaxed),
            self.stats.respawns.load(Ordering::Relaxed),
            self.stats.overloaded_rejects.load(Ordering::Relaxed),
            self.stats.oversized_lines.load(Ordering::Relaxed),
            self.stats.idle_reaped.load(Ordering::Relaxed),
            self.stats.deadline_hits.load(Ordering::Relaxed),
            self.stats.shutdown_rejects.load(Ordering::Relaxed),
            self.stats.recomputes.load(Ordering::Relaxed),
            self.stats.recompute_failures.load(Ordering::Relaxed),
            self.stats
                .consecutive_recompute_failures
                .load(Ordering::Relaxed),
            self.degraded_reason().is_some(),
            self.stats.last_recovery_ms.load(Ordering::Relaxed),
            crate::protocol::json_escape(&last_error),
            self.store.load().age_secs(),
            op(&self.stats.query),
            op(&self.stats.local),
            op(&self.stats.topk)
        )
    }

    /// The background recompute: failures (including panics) never stop
    /// the loop or the server — the last good epoch keeps serving, the
    /// retry interval doubles per consecutive failure (capped at 32×),
    /// and the degraded flag clears on the first success.
    fn recompute_loop(&self, interval: Duration, recompute: &RecomputeFn) {
        let mut round = 0u64;
        let mut consecutive: u32 = 0;
        let mut first_failure_at: Option<Instant> = None;
        'rounds: loop {
            let wait = interval * (1u32 << consecutive.min(MAX_BACKOFF_SHIFT));
            // Sleep the interval in short slices so shutdown is prompt.
            let until = Instant::now() + wait;
            while Instant::now() < until {
                if self.cancel.is_cancelled() {
                    break 'rounds;
                }
                std::thread::sleep(Duration::from_millis(20).min(interval));
            }
            round += 1;
            let seed = ticket_seed(self.config.seed, round);
            let result = if self.config.faults.should_fail_recompute() {
                Err("injected recompute failure".to_string())
            } else {
                match catch_unwind(AssertUnwindSafe(|| {
                    if self.config.faults.should_panic_recompute() {
                        panic!("injected recompute panic");
                    }
                    recompute(&self.graph, seed, &self.cancel)
                })) {
                    Ok(result) => result,
                    Err(payload) => {
                        self.stats.panics.fetch_add(1, Ordering::Relaxed);
                        Err(format!(
                            "recompute panicked: {}",
                            panic_message(payload.as_ref())
                        ))
                    }
                }
            };
            if self.cancel.is_cancelled() {
                // An error produced by shutdown cancellation is not a
                // failure of the recompute path.
                break;
            }
            let failure = match result {
                Ok(cover) if cover.node_count() == self.graph.node_count() => {
                    self.store.publish(cover, self.c);
                    self.stats.recomputes.fetch_add(1, Ordering::Relaxed);
                    if let Some(at) = first_failure_at.take() {
                        self.stats
                            .last_recovery_ms
                            .store(at.elapsed().as_millis() as u64, Ordering::Relaxed);
                    }
                    consecutive = 0;
                    self.stats
                        .consecutive_recompute_failures
                        .store(0, Ordering::Relaxed);
                    None
                }
                Ok(cover) => Some(format!(
                    "recompute produced a cover over {} nodes for a {}-node graph",
                    cover.node_count(),
                    self.graph.node_count()
                )),
                Err(message) => Some(message),
            };
            if let Some(message) = failure {
                consecutive = consecutive.saturating_add(1);
                first_failure_at.get_or_insert_with(Instant::now);
                self.stats
                    .recompute_failures
                    .fetch_add(1, Ordering::Relaxed);
                self.stats
                    .consecutive_recompute_failures
                    .store(u64::from(consecutive), Ordering::Relaxed);
                *self.stats.last_recompute_error.lock() = message;
            }
        }
    }
}

/// Default cap on one response line read by [`Client::request`] — beyond
/// this the server is assumed broken (or hostile) and the read fails with
/// a typed error instead of buffering without bound. `query` responses on
/// giant communities are the largest legitimate lines; 64 MiB covers a
/// multi-million-member community with room to spare.
pub const CLIENT_RESPONSE_CAP: usize = 64 << 20;

/// A minimal line-protocol client for tests, CI smoke checks and the
/// latency benchmark: one blocking request–response exchange per call.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    response_cap: usize,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            response_cap: CLIENT_RESPONSE_CAP,
        })
    }

    /// Replaces the response-size cap (default [`CLIENT_RESPONSE_CAP`]).
    pub fn with_response_cap(mut self, bytes: usize) -> Client {
        self.response_cap = bytes.max(2);
        self
    }

    /// Sends one request line and returns the (trimmed) JSON response
    /// line. Rejects requests containing a newline (they would smuggle a
    /// second request) and responses exceeding the configured cap.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        if line.contains('\n') {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "request must be a single line",
            ));
        }
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = (&mut self.reader)
            .take(self.response_cap as u64)
            .read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        if !response.ends_with('\n') {
            return Err(if n >= self.response_cap {
                std::io::Error::new(
                    ErrorKind::InvalidData,
                    format!("response exceeded the {}-byte cap", self.response_cap),
                )
            } else {
                std::io::Error::new(ErrorKind::UnexpectedEof, "connection closed mid-response")
            });
        }
        Ok(response.trim_end().to_string())
    }
}
