//! The long-running query server: TCP accept loop, worker-thread pool,
//! background recompute, graceful shutdown, and the bundled [`Client`].
//!
//! Threading model: the caller's thread runs the accept loop; accepted
//! connections are queued over an mpsc channel to a fixed pool of worker
//! threads (each owning its reusable [`CommunityState`] and scratch
//! counters, so steady-state queries allocate only their response string).
//! An optional recompute thread periodically re-detects the cover and
//! publishes it through the [`SnapshotStore`] — readers keep answering
//! from their pinned snapshot throughout. Shutdown is cooperative via the
//! shared [`CancelToken`]: the acceptor stops accepting and closes the
//! queue, workers finish the request in flight (plus any queued
//! connections) and exit, and the recompute thread aborts its in-flight
//! detection through the same token.

use crate::protocol::{push_id_array, ProtocolError, Request};
use crate::snapshot::SnapshotStore;
use oca::{ticket_seed, CommunityState, LocalConfig, LocalDetector};
use oca_graph::{
    CancelToken, Cover, CsrGraph, DetectContext, DetectError, EpochCounters, NodeId, Relabeling,
};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, ErrorKind, Write as _};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How long a worker blocks on an idle connection before re-checking the
/// cancellation token.
const READ_POLL: Duration = Duration::from_millis(100);
/// How long the acceptor sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Rebuilds the cover for a new epoch: `(graph, seed, cancel)` to a cover,
/// or `None` to skip publication (detection failed or was cancelled).
/// Implementations should wire `cancel` into their [`DetectContext`] so
/// server shutdown aborts an in-flight recompute promptly.
pub type RecomputeFn = dyn Fn(&CsrGraph, u64, &CancelToken) -> Option<Cover> + Send + Sync;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (= maximum concurrently served connections).
    pub workers: usize,
    /// Master seed: `local <v>` answers derive from
    /// `ticket_seed(seed, v)`, so they are identical whichever worker
    /// serves them; recompute round `r` runs with `ticket_seed(seed, r)`.
    pub seed: u64,
    /// Publish a recomputed cover this often (`None` disables recompute).
    pub recompute_interval: Option<Duration>,
    /// Auto-shutdown after this long (testing/benchmarks); `None` runs
    /// until `shutdown` or external cancellation.
    pub max_duration: Option<Duration>,
    /// Configuration of the `local` endpoint's detector. Its
    /// interaction-strength strategy is resolved once at server start —
    /// `c` is a property of the (static) graph, not of any cover.
    pub local: LocalConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            seed: 0x0CA,
            recompute_interval: None,
            max_duration: None,
            local: LocalConfig::default(),
        }
    }
}

/// A log₂-bucketed latency histogram with lock-free recording. Bucket `b`
/// covers `[2^b, 2^(b+1))` nanoseconds; quantiles report the upper bound
/// of the matched bucket, i.e. within 2× of the true value — plenty for a
/// `stats` endpoint (benchmarks measure client-side with exact timings).
#[derive(Debug)]
struct Histogram {
    buckets: [AtomicU64; 40],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    fn record(&self, nanos: u64) {
        let bucket = (63 - (nanos | 1).leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// The `q`-quantile in microseconds (0 when nothing was recorded).
    fn quantile_us(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (bucket, &count) in counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= target {
                return (1u64 << (bucket + 1)) as f64 / 1_000.0;
            }
        }
        f64::INFINITY
    }
}

/// One endpoint's counters.
#[derive(Debug, Default)]
struct OpStats {
    count: AtomicU64,
    hist: Histogram,
}

impl OpStats {
    fn record(&self, elapsed: Duration) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.hist.record(elapsed.as_nanos() as u64);
    }
}

/// Server-wide counters, shared across workers.
#[derive(Debug, Default)]
struct ServeStats {
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    recomputes: AtomicU64,
    query: OpStats,
    local: OpStats,
    topk: OpStats,
}

/// Latency summary of one endpoint in the final [`ServeReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpLatency {
    /// Requests served.
    pub count: u64,
    /// Median latency in microseconds (log-bucket upper bound).
    pub p50_us: f64,
    /// 99th-percentile latency in microseconds (log-bucket upper bound).
    pub p99_us: f64,
}

/// What the server did over its lifetime, returned by [`Server::run`]
/// after shutdown completes (the CLI renders this as the final stats
/// line).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Connections accepted.
    pub connections: u64,
    /// Requests served (including ones answered with protocol errors).
    pub requests: u64,
    /// Requests answered with an error object.
    pub errors: u64,
    /// Cover recomputes published.
    pub recomputes: u64,
    /// Epoch at shutdown.
    pub final_epoch: u64,
    /// `query` endpoint latency.
    pub query: OpLatency,
    /// `local` endpoint latency.
    pub local: OpLatency,
    /// `topk` endpoint latency.
    pub topk: OpLatency,
}

impl ServeReport {
    /// The one-line summary the CLI prints at shutdown.
    pub fn summary_line(&self) -> String {
        format!(
            "served {} requests over {} connections (errors {}, recomputes {}, final epoch {}); \
             query p50/p99 {:.1}/{:.1}us over {}, local p50/p99 {:.1}/{:.1}us over {}, \
             topk p50/p99 {:.1}/{:.1}us over {}",
            self.requests,
            self.connections,
            self.errors,
            self.recomputes,
            self.final_epoch,
            self.query.p50_us,
            self.query.p99_us,
            self.query.count,
            self.local.p50_us,
            self.local.p99_us,
            self.local.count,
            self.topk.p50_us,
            self.topk.p99_us,
            self.topk.count,
        )
    }
}

/// Per-worker reusable scratch: the `CommunityState` (O(n) to build, so
/// built once per worker) and the `topk` overlap counters.
struct WorkerScratch<'g> {
    state: CommunityState<'g>,
    counters: EpochCounters,
}

/// The query server. Construct with [`Server::new`], then call
/// [`Server::run`] with a bound listener; `run` blocks until shutdown and
/// returns the [`ServeReport`].
pub struct Server {
    graph: std::sync::Arc<CsrGraph>,
    store: SnapshotStore,
    config: ServeConfig,
    detector: LocalDetector,
    c: f64,
    cancel: CancelToken,
    stats: ServeStats,
    recompute: Option<Box<RecomputeFn>>,
    relabeling: Option<Relabeling>,
    started: Instant,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("node_count", &self.graph.node_count())
            .field("epoch", &self.store.epoch())
            .field("workers", &self.config.workers)
            .field("has_recompute", &self.recompute.is_some())
            .finish()
    }
}

impl Server {
    /// Builds a server warm-started with `cover` (epoch 1). `recompute`
    /// (if given, together with `config.recompute_interval`) periodically
    /// rebuilds the cover and publishes the next epoch.
    pub fn new(
        graph: std::sync::Arc<CsrGraph>,
        cover: Cover,
        config: ServeConfig,
        recompute: Option<Box<RecomputeFn>>,
    ) -> Result<Server, DetectError> {
        if config.workers < 1 {
            return Err(DetectError::InvalidConfig {
                algorithm: "serve",
                message: "need at least one worker thread".to_string(),
            });
        }
        if cover.node_count() != graph.node_count() {
            return Err(DetectError::InvalidConfig {
                algorithm: "serve",
                message: format!(
                    "cover is over {} nodes but the graph has {}",
                    cover.node_count(),
                    graph.node_count()
                ),
            });
        }
        let detector = LocalDetector::new(config.local.clone())?;
        let c = detector.resolve_c(&graph);
        Ok(Server {
            store: SnapshotStore::new(cover, c),
            graph,
            config,
            detector,
            c,
            cancel: CancelToken::new(),
            stats: ServeStats::default(),
            recompute,
            relabeling: None,
            started: Instant::now(),
        })
    }

    /// Serves a relabeled (e.g. degree-ordered `.ocg`) graph under its
    /// *input* id space: request node ids are translated to compact ids
    /// before dispatch, and member arrays in responses are translated
    /// back, so clients never see the storage layout. The warm-start
    /// cover passed to [`Server::new`] must already be in compact ids.
    pub fn with_relabeling(mut self, relabeling: Relabeling) -> Result<Server, DetectError> {
        if relabeling.len() != self.graph.node_count() {
            return Err(DetectError::InvalidConfig {
                algorithm: "serve",
                message: format!(
                    "relabeling covers {} nodes but the graph has {}",
                    relabeling.len(),
                    self.graph.node_count()
                ),
            });
        }
        self.relabeling = (!relabeling.is_identity()).then_some(relabeling);
        Ok(self)
    }

    /// Maps a compact node id back to the id space clients speak.
    #[inline]
    fn external_id(&self, v: NodeId) -> u32 {
        match &self.relabeling {
            Some(r) => r.to_original(v).raw(),
            None => v.raw(),
        }
    }

    /// A clone of the shutdown token — cancel it (e.g. from a signal
    /// handler or a test) to begin graceful shutdown.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The snapshot store (the bench reads epochs through this).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// Serves until shutdown (a `shutdown` request, cancellation of
    /// [`Server::cancel_token`], or `config.max_duration` elapsing), then
    /// drains and returns the lifetime report.
    pub fn run(&self, listener: TcpListener) -> std::io::Result<ServeReport> {
        listener.set_nonblocking(true)?;
        let deadline = self.config.max_duration.map(|d| Instant::now() + d);
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Mutex::new(conn_rx);
        std::thread::scope(|scope| {
            for _ in 0..self.config.workers {
                scope.spawn(|| self.worker_loop(&conn_rx));
            }
            if let (Some(interval), Some(recompute)) =
                (self.config.recompute_interval, self.recompute.as_deref())
            {
                scope.spawn(move || self.recompute_loop(interval, recompute));
            }
            // Accept loop on the calling thread.
            loop {
                if self.cancel.is_cancelled() {
                    break;
                }
                if let Some(deadline) = deadline {
                    if Instant::now() >= deadline {
                        self.cancel.cancel();
                        break;
                    }
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        self.stats.connections.fetch_add(1, Ordering::Relaxed);
                        // A send can only fail after all workers exited,
                        // which only happens once cancellation fired.
                        let _ = conn_tx.send(stream);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
            // Closing the channel lets workers drain queued connections
            // and exit; the scope then joins everything.
            drop(conn_tx);
        });
        Ok(self.report())
    }

    /// The lifetime report so far.
    fn report(&self) -> ServeReport {
        let op = |s: &OpStats| OpLatency {
            count: s.count.load(Ordering::Relaxed),
            p50_us: s.hist.quantile_us(0.50),
            p99_us: s.hist.quantile_us(0.99),
        };
        ServeReport {
            connections: self.stats.connections.load(Ordering::Relaxed),
            requests: self.stats.requests.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            recomputes: self.stats.recomputes.load(Ordering::Relaxed),
            final_epoch: self.store.epoch(),
            query: op(&self.stats.query),
            local: op(&self.stats.local),
            topk: op(&self.stats.topk),
        }
    }

    fn worker_loop(&self, conn_rx: &Mutex<mpsc::Receiver<TcpStream>>) {
        let mut scratch = WorkerScratch {
            state: CommunityState::new(&self.graph, self.c),
            counters: EpochCounters::new(0),
        };
        loop {
            // Hold the lock only while waiting for the next connection;
            // a disconnected channel (acceptor exited) ends the worker
            // after the queue is drained.
            let stream = match conn_rx.lock().unwrap_or_else(|p| p.into_inner()).recv() {
                Ok(stream) => stream,
                Err(_) => break,
            };
            let _ = self.serve_connection(stream, &mut scratch);
        }
    }

    /// Serves one connection until the peer closes it, an I/O error, or
    /// shutdown. Requests already received are always answered.
    fn serve_connection(
        &self,
        stream: TcpStream,
        scratch: &mut WorkerScratch<'_>,
    ) -> std::io::Result<()> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(READ_POLL))?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    let response = self.respond(line.trim(), scratch);
                    writer.write_all(response.as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                    line.clear();
                    if self.cancel.is_cancelled() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    // Idle connection: just re-check the shutdown flag.
                    // A partially read line stays in `line` and completes
                    // on a later pass.
                    if self.cancel.is_cancelled() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::InvalidData => {
                    // Non-UTF-8 input: the offending line was consumed, so
                    // answer with a typed error and keep the connection.
                    self.stats.requests.fetch_add(1, Ordering::Relaxed);
                    self.stats.errors.fetch_add(1, Ordering::Relaxed);
                    let response =
                        ProtocolError::bad_request("request was not valid UTF-8").to_json();
                    writer.write_all(response.as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                    line.clear();
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Produces the JSON response line for one request line.
    fn respond(&self, line: &str, scratch: &mut WorkerScratch<'_>) -> String {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(e) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                return e.to_json();
            }
        };
        let timed = Instant::now();
        let result = match request {
            Request::Query(v) => {
                let r = self.do_query(v);
                self.stats.query.record(timed.elapsed());
                r
            }
            Request::Local(v) => {
                let r = self.do_local(v, scratch);
                self.stats.local.record(timed.elapsed());
                r
            }
            Request::TopK(v, k) => {
                let r = self.do_topk(v, k, scratch);
                self.stats.topk.record(timed.elapsed());
                r
            }
            Request::Snapshot => Ok(self.do_snapshot()),
            Request::Stats => Ok(self.do_stats()),
            Request::Health => Ok(format!(
                "{{\"ok\":true,\"op\":\"health\",\"epoch\":{}}}",
                self.store.epoch()
            )),
            Request::Shutdown => {
                self.cancel.cancel();
                Ok(format!(
                    "{{\"ok\":true,\"op\":\"shutdown\",\"epoch\":{},\"draining\":true}}",
                    self.store.epoch()
                ))
            }
        };
        match result {
            Ok(json) => json,
            Err(e) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                e.to_json()
            }
        }
    }

    fn check_node(&self, v: u32) -> Result<NodeId, ProtocolError> {
        let n = self.graph.node_count();
        if (v as usize) < n {
            Ok(match &self.relabeling {
                Some(r) => r.to_compact(NodeId(v)),
                None => NodeId(v),
            })
        } else {
            Err(ProtocolError::out_of_bounds(v, n))
        }
    }

    fn do_query(&self, v: u32) -> Result<String, ProtocolError> {
        let node = self.check_node(v)?;
        let snapshot = self.store.load();
        let ids = snapshot.index.communities_of(node);
        let mut out = String::with_capacity(64 + ids.len() * 32);
        let _ = write!(
            out,
            "{{\"ok\":true,\"op\":\"query\",\"epoch\":{},\"node\":{v},\"count\":{},\"communities\":[",
            snapshot.epoch,
            ids.len()
        );
        for (i, &ci) in ids.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let community = &snapshot.cover.communities()[ci as usize];
            let _ = write!(
                out,
                "{{\"id\":{ci},\"size\":{},\"members\":",
                community.len()
            );
            push_id_array(
                &mut out,
                community.members().iter().map(|&m| self.external_id(m)),
            );
            out.push('}');
        }
        out.push_str("]}");
        Ok(out)
    }

    fn do_local(&self, v: u32, scratch: &mut WorkerScratch<'_>) -> Result<String, ProtocolError> {
        let node = self.check_node(v)?;
        let ctx = DetectContext::new(self.config.seed).with_cancel(self.cancel.clone());
        let found = self
            .detector
            .detect_with(&self.graph, &mut scratch.state, self.c, &[node], &ctx)
            .map_err(|e| match e {
                DetectError::Cancelled { .. } => ProtocolError {
                    kind: "cancelled",
                    message: "server is shutting down".to_string(),
                },
                other => ProtocolError {
                    kind: "internal",
                    message: other.to_string(),
                },
            })?;
        let mut out = String::with_capacity(96 + found.community.len() * 8);
        let _ = write!(
            out,
            "{{\"ok\":true,\"op\":\"local\",\"epoch\":{},\"node\":{v},\"size\":{},\
             \"fitness\":{:.6},\"moves\":{},\"converged\":{},\"stop\":\"{}\",\"members\":",
            self.store.epoch(),
            found.community.len(),
            found.fitness,
            found.moves,
            found.converged,
            found.stop.label()
        );
        push_id_array(
            &mut out,
            found
                .community
                .members()
                .iter()
                .map(|&m| self.external_id(m)),
        );
        out.push('}');
        Ok(out)
    }

    fn do_topk(
        &self,
        v: u32,
        k: usize,
        scratch: &mut WorkerScratch<'_>,
    ) -> Result<String, ProtocolError> {
        let node = self.check_node(v)?;
        let snapshot = self.store.load();
        if scratch.counters.len() < snapshot.cover.len() {
            scratch.counters = EpochCounters::new(snapshot.cover.len());
        }
        let top = snapshot
            .index
            .top_overlapping(&self.graph, node, k, &mut scratch.counters);
        let mut out = String::with_capacity(64 + top.len() * 32);
        let _ = write!(
            out,
            "{{\"ok\":true,\"op\":\"topk\",\"epoch\":{},\"node\":{v},\"k\":{k},\"results\":[",
            snapshot.epoch
        );
        for (i, &(ci, overlap)) in top.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let size = snapshot.cover.communities()[ci as usize].len();
            let _ = write!(out, "{{\"id\":{ci},\"overlap\":{overlap},\"size\":{size}}}");
        }
        out.push_str("]}");
        Ok(out)
    }

    fn do_snapshot(&self) -> String {
        let snapshot = self.store.load();
        format!(
            "{{\"ok\":true,\"op\":\"snapshot\",\"epoch\":{},\"node_count\":{},\
             \"communities\":{},\"memberships\":{},\"coverage\":{:.4},\"c\":{:.6},\
             \"index_bytes\":{}}}",
            snapshot.epoch,
            snapshot.node_count(),
            snapshot.cover.len(),
            snapshot.index.membership_count(),
            snapshot.cover.coverage(),
            snapshot.c,
            snapshot.index.memory_bytes()
        )
    }

    fn do_stats(&self) -> String {
        let op = |s: &OpStats| {
            format!(
                "{{\"count\":{},\"p50_us\":{:.1},\"p99_us\":{:.1}}}",
                s.count.load(Ordering::Relaxed),
                s.hist.quantile_us(0.50),
                s.hist.quantile_us(0.99)
            )
        };
        format!(
            "{{\"ok\":true,\"op\":\"stats\",\"epoch\":{},\"uptime_ms\":{},\
             \"connections\":{},\"requests\":{},\"errors\":{},\"recomputes\":{},\
             \"latency\":{{\"query\":{},\"local\":{},\"topk\":{}}}}}",
            self.store.epoch(),
            self.started.elapsed().as_millis(),
            self.stats.connections.load(Ordering::Relaxed),
            self.stats.requests.load(Ordering::Relaxed),
            self.stats.errors.load(Ordering::Relaxed),
            self.stats.recomputes.load(Ordering::Relaxed),
            op(&self.stats.query),
            op(&self.stats.local),
            op(&self.stats.topk)
        )
    }

    fn recompute_loop(&self, interval: Duration, recompute: &RecomputeFn) {
        let mut round = 0u64;
        'rounds: loop {
            // Sleep the interval in short slices so shutdown is prompt.
            let until = Instant::now() + interval;
            while Instant::now() < until {
                if self.cancel.is_cancelled() {
                    break 'rounds;
                }
                std::thread::sleep(Duration::from_millis(20).min(interval));
            }
            round += 1;
            let seed = ticket_seed(self.config.seed, round);
            if let Some(cover) = recompute(&self.graph, seed, &self.cancel) {
                if cover.node_count() == self.graph.node_count() {
                    self.store.publish(cover, self.c);
                    self.stats.recomputes.fetch_add(1, Ordering::Relaxed);
                }
            }
            if self.cancel.is_cancelled() {
                break;
            }
        }
    }
}

/// A minimal line-protocol client for tests, CI smoke checks and the
/// latency benchmark: one blocking request–response exchange per call.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line and returns the (trimmed) JSON response
    /// line.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }
}
