//! # oca-serve — the query-centric serving layer
//!
//! The paper's setting is community *search* — "which communities contain
//! node v?" — and this crate turns the batch library into a system that
//! answers exactly that under sustained load:
//!
//! * [`CoverIndex`] — an inverted node→community index in the same
//!   two-flat-array CSR shape as the graph itself, built once per cover;
//! * [`CoverSnapshot`] / [`SnapshotStore`] — immutable versioned
//!   snapshots with monotonically increasing epochs, swapped atomically
//!   behind an `Arc` so readers never block a recompute and never observe
//!   a half-built epoch;
//! * [`persist`] — a versioned, checksummed binary cover format so a
//!   server warm-starts from the previous run's cover instead of
//!   re-detecting;
//! * [`Server`] — a line-protocol TCP server (see [`protocol`]) with a
//!   worker-thread pool, per-worker reusable ascent state for `local`
//!   queries, a background recompute thread, and cooperative graceful
//!   shutdown; plus the matching [`Client`];
//! * fault containment throughout — request-level panic isolation with
//!   worker respawn, bounded accept queue with typed `overloaded`
//!   rejection, request-size caps, idle reaping, per-request deadlines,
//!   and a recompute loop that degrades (keeps serving the last good
//!   epoch, retries with backoff) instead of dying; [`FaultPlan`] injects
//!   each failure deterministically for the chaos harness.
//!
//! ## Example: in-process round trip
//!
//! ```
//! use oca_graph::{from_edges, Community, Cover};
//! use oca_serve::{Client, ServeConfig, Server};
//! use oca::{CStrategy, LocalConfig};
//! use std::net::TcpListener;
//! use std::sync::Arc;
//!
//! let graph = Arc::new(from_edges(4, [(0, 1), (1, 2), (0, 2)]));
//! let cover = Cover::new(4, vec![Community::from_raw([0, 1, 2])]);
//! let config = ServeConfig {
//!     local: LocalConfig {
//!         c: CStrategy::Fixed(0.9),
//!         ..Default::default()
//!     },
//!     ..Default::default()
//! };
//! let server = Server::new(graph, cover, config, None).unwrap();
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let addr = listener.local_addr().unwrap();
//! let token = server.cancel_token();
//! std::thread::scope(|scope| {
//!     let handle = scope.spawn(|| server.run(listener).unwrap());
//!     let mut client = Client::connect(addr).unwrap();
//!     let answer = client.request("query 1").unwrap();
//!     assert!(answer.contains("\"ok\":true"));
//!     token.cancel();
//!     let report = handle.join().unwrap();
//!     assert_eq!(report.requests, 1);
//! });
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod faults;
pub mod index;
pub mod persist;
pub mod protocol;
pub mod server;
pub mod snapshot;

pub use faults::{FaultCounts, FaultPlan, FaultSpec};
pub use index::CoverIndex;
pub use persist::{load_cover, load_cover_path, save_cover, save_cover_path, PersistError};
pub use protocol::{ProtocolError, Request};
pub use server::{Client, OpLatency, RecomputeFn, ServeConfig, ServeReport, Server};
pub use snapshot::{CoverSnapshot, SnapshotStore};
