//! Deterministic fault injection for chaos testing the server.
//!
//! A [`FaultPlan`] is a set of armed *fail points* the server consults at
//! well-defined sites — request dispatch, worker connection turnover, the
//! background recompute — so tests and the `chaos` bench can inject
//! panics, stalls, worker deaths and recompute failures on a precise,
//! reproducible schedule (every Nth event, counted atomically across
//! threads). The default plan is empty: every check is a single `Option`
//! branch on an unarmed plan, so production configurations pay nothing.
//!
//! The sites, and what the robustness layer must do when they fire:
//!
//! | site | injected failure | expected containment |
//! |------|------------------|----------------------|
//! | `panic_request` | `panic!` inside request dispatch | typed `internal` error response; connection survives; panic counted |
//! | `stall_request` | sleep inside dispatch | request deadline fires → typed `deadline-exceeded` (partial result for `local`) |
//! | `kill_worker` | panic unwinding the whole worker thread (between connections) | supervisor respawns the worker; pool size recovers |
//! | `fail_recompute` / `panic_recompute` | background recompute errors or panics | last good epoch keeps serving; capped-backoff retry; `degraded` flag until recovery |
//!
//! Cloning a `FaultPlan` shares its counters: the server and the test
//! observe the same fire tallies ([`FaultPlan::counts`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which events a [`FaultPlan`] injects, and how often. `0` disables a
/// site; `n > 0` fires on every `n`-th event at that site (1-based, so
/// `1` fires every time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Panic inside request dispatch on every Nth request.
    pub panic_request_every: u64,
    /// Stall request dispatch (by [`FaultSpec::stall`]) on every Nth
    /// `query`/`local`/`topk` request.
    pub stall_request_every: u64,
    /// How long a fired stall sleeps.
    pub stall: Duration,
    /// Kill the serving worker thread after every Nth *connection* it
    /// finishes (the panic unwinds the thread itself, exercising the
    /// supervisor's respawn path rather than per-request isolation).
    pub kill_worker_every_conns: u64,
    /// Fail every Nth background recompute round with an injected error.
    pub fail_recompute_every: u64,
    /// Panic inside every Nth background recompute round.
    pub panic_recompute_every: u64,
}

/// One fail point: an event counter and a fire tally.
#[derive(Debug, Default)]
struct Site {
    events: AtomicU64,
    fired: AtomicU64,
}

impl Site {
    /// Counts one event; true when the site fires (`every > 0` and this
    /// is the `every`-th event since the last fire).
    fn check(&self, every: u64) -> bool {
        if every == 0 {
            return false;
        }
        let n = self.events.fetch_add(1, Ordering::Relaxed) + 1;
        if n % every == 0 {
            self.fired.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Armed {
    spec: FaultSpec,
    panic_request: Site,
    stall_request: Site,
    kill_worker: Site,
    fail_recompute: Site,
    panic_recompute: Site,
}

/// How many times each fail point actually fired, for bench gates ("the
/// harness is vacuous unless faults really happened").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Request-dispatch panics injected.
    pub request_panics: u64,
    /// Request stalls injected.
    pub request_stalls: u64,
    /// Worker threads killed.
    pub worker_kills: u64,
    /// Recompute rounds failed by injection.
    pub recompute_failures: u64,
    /// Recompute rounds panicked by injection.
    pub recompute_panics: u64,
}

/// A shared, thread-safe fault-injection plan. See the [module
/// docs](self). The default plan injects nothing and costs one branch per
/// site check.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    armed: Option<Arc<Armed>>,
}

impl FaultPlan {
    /// The empty plan: no site ever fires.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Arms the sites described by `spec`.
    pub fn new(spec: FaultSpec) -> Self {
        FaultPlan {
            armed: Some(Arc::new(Armed {
                spec,
                ..Default::default()
            })),
        }
    }

    /// True if any site is armed.
    pub fn is_armed(&self) -> bool {
        self.armed.is_some()
    }

    /// Fire tallies so far (all zero for an unarmed plan).
    pub fn counts(&self) -> FaultCounts {
        match &self.armed {
            None => FaultCounts::default(),
            Some(a) => FaultCounts {
                request_panics: a.panic_request.fired(),
                request_stalls: a.stall_request.fired(),
                worker_kills: a.kill_worker.fired(),
                recompute_failures: a.fail_recompute.fired(),
                recompute_panics: a.panic_recompute.fired(),
            },
        }
    }

    /// Site check: panic this request?  (The *caller* panics, so the
    /// panic's backtrace points at the injection site in the server.)
    pub(crate) fn should_panic_request(&self) -> bool {
        self.armed
            .as_deref()
            .is_some_and(|a| a.panic_request.check(a.spec.panic_request_every))
    }

    /// Site check: stall this request, and for how long?
    pub(crate) fn request_stall(&self) -> Option<Duration> {
        let a = self.armed.as_deref()?;
        a.stall_request
            .check(a.spec.stall_request_every)
            .then_some(a.spec.stall)
    }

    /// Site check: kill the worker after this connection?
    pub(crate) fn should_kill_worker(&self) -> bool {
        self.armed
            .as_deref()
            .is_some_and(|a| a.kill_worker.check(a.spec.kill_worker_every_conns))
    }

    /// Site check: fail this recompute round?
    pub(crate) fn should_fail_recompute(&self) -> bool {
        self.armed
            .as_deref()
            .is_some_and(|a| a.fail_recompute.check(a.spec.fail_recompute_every))
    }

    /// Site check: panic this recompute round?
    pub(crate) fn should_panic_recompute(&self) -> bool {
        self.armed
            .as_deref()
            .is_some_and(|a| a.panic_recompute.check(a.spec.panic_recompute_every))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plan_never_fires_and_counts_zero() {
        let plan = FaultPlan::none();
        for _ in 0..100 {
            assert!(!plan.should_panic_request());
            assert!(plan.request_stall().is_none());
            assert!(!plan.should_kill_worker());
            assert!(!plan.should_fail_recompute());
            assert!(!plan.should_panic_recompute());
        }
        assert_eq!(plan.counts(), FaultCounts::default());
        assert!(!plan.is_armed());
    }

    #[test]
    fn every_nth_event_fires_deterministically() {
        let plan = FaultPlan::new(FaultSpec {
            panic_request_every: 3,
            ..Default::default()
        });
        let fires: Vec<bool> = (0..9).map(|_| plan.should_panic_request()).collect();
        assert_eq!(
            fires,
            [false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(plan.counts().request_panics, 3);
    }

    #[test]
    fn clones_share_counters() {
        let plan = FaultPlan::new(FaultSpec {
            fail_recompute_every: 2,
            ..Default::default()
        });
        let seen_by_server = plan.clone();
        assert!(!seen_by_server.should_fail_recompute());
        assert!(seen_by_server.should_fail_recompute());
        assert_eq!(plan.counts().recompute_failures, 1);
    }

    #[test]
    fn stall_reports_its_duration() {
        let plan = FaultPlan::new(FaultSpec {
            stall_request_every: 1,
            stall: Duration::from_millis(7),
            ..Default::default()
        });
        assert_eq!(plan.request_stall(), Some(Duration::from_millis(7)));
        assert_eq!(plan.counts().request_stalls, 1);
    }
}
