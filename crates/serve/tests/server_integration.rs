//! End-to-end tests of the line-protocol server: every endpoint, typed
//! errors for malformed requests, background recompute epochs, and
//! graceful shutdown with drained in-flight requests.

use oca::{CStrategy, LocalConfig};
use oca_graph::{from_edges, Community, Cover, CsrGraph};
use oca_serve::{Client, ServeConfig, Server};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Two 4-cliques joined by a single bridge edge.
fn two_cliques() -> CsrGraph {
    let mut edges = Vec::new();
    for base in [0u32, 4] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                edges.push((base + i, base + j));
            }
        }
    }
    edges.push((3, 4));
    from_edges(8, edges)
}

fn clique_cover() -> Cover {
    Cover::new(
        8,
        vec![
            Community::from_raw([0, 1, 2, 3]),
            Community::from_raw([4, 5, 6, 7]),
        ],
    )
}

fn fixed_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        seed: 42,
        local: LocalConfig {
            c: CStrategy::Fixed(0.9),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Cancels the server on drop so a panicking test body (an assertion
/// failure in the scope closure) still lets the server thread exit — the
/// scope would otherwise wait on it forever during unwinding.
struct CancelOnDrop(oca_graph::CancelToken);

impl Drop for CancelOnDrop {
    fn drop(&mut self) {
        self.0.cancel();
    }
}

/// Runs `body` against a served two-clique graph, then shuts down and
/// returns the final report.
fn with_server<F>(config: ServeConfig, body: F) -> oca_serve::ServeReport
where
    F: FnOnce(&mut Client, &Server) + Send,
{
    let graph = Arc::new(two_cliques());
    let recompute: Option<Box<oca_serve::RecomputeFn>> = if config.recompute_interval.is_some() {
        // A deterministic stand-in detection: republish the clique cover.
        Some(Box::new(|_graph, _seed, _cancel| Ok(clique_cover())))
    } else {
        None
    };
    let server = Server::new(graph, clique_cover(), config, recompute).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let token = server.cancel_token();
    std::thread::scope(|scope| {
        let _guard = CancelOnDrop(token.clone());
        let handle = scope.spawn(|| server.run(listener).unwrap());
        let mut client = Client::connect(addr).unwrap();
        body(&mut client, &server);
        token.cancel();
        handle.join().unwrap()
    })
}

#[test]
fn query_answers_from_the_index() {
    with_server(fixed_config(), |client, _| {
        let a = client.request("query 0").unwrap();
        assert!(
            a.contains("\"ok\":true") && a.contains("\"op\":\"query\""),
            "{a}"
        );
        assert!(a.contains("\"count\":1"), "{a}");
        assert!(a.contains("\"members\":[0,1,2,3]"), "{a}");
        let b = client.request("query 6").unwrap();
        assert!(b.contains("\"members\":[4,5,6,7]"), "{b}");
    });
}

#[test]
fn local_runs_a_fresh_ascent_and_is_deterministic() {
    with_server(fixed_config(), |client, _| {
        let a = client.request("local 5").unwrap();
        assert!(
            a.contains("\"ok\":true") && a.contains("\"op\":\"local\""),
            "{a}"
        );
        // The home clique is always captured; the bridge node may ride
        // along depending on the seed expansion.
        assert!(a.contains("4,5,6,7"), "{a}");
        assert!(a.contains("\"converged\":true"), "{a}");
        // Same node, same seed, (possibly) different worker: same answer.
        for _ in 0..4 {
            assert_eq!(client.request("local 5").unwrap(), a);
        }
    });
}

#[test]
fn topk_ranks_by_neighborhood_overlap() {
    with_server(fixed_config(), |client, _| {
        // Node 3 closes over {0,1,2,3,4}: overlap 4 with clique 0, 1 with
        // clique 1.
        let a = client.request("topk 3 2").unwrap();
        assert!(a.contains("\"op\":\"topk\""), "{a}");
        assert!(
            a.contains("\"results\":[{\"id\":0,\"overlap\":4,\"size\":4},{\"id\":1,\"overlap\":1,\"size\":4}]"),
            "{a}"
        );
        let top1 = client.request("topk 3 1").unwrap();
        assert!(
            top1.contains("\"results\":[{\"id\":0,\"overlap\":4,\"size\":4}]"),
            "{top1}"
        );
    });
}

#[test]
fn snapshot_stats_and_health_report_the_current_epoch() {
    with_server(fixed_config(), |client, _| {
        let snapshot = client.request("snapshot").unwrap();
        assert!(snapshot.contains("\"epoch\":1"), "{snapshot}");
        assert!(snapshot.contains("\"node_count\":8"), "{snapshot}");
        assert!(snapshot.contains("\"communities\":2"), "{snapshot}");
        assert!(snapshot.contains("\"coverage\":1.0000"), "{snapshot}");
        let health = client.request("health").unwrap();
        assert!(
            health.contains("\"ok\":true") && health.contains("\"epoch\":1"),
            "{health}"
        );
        client.request("query 0").unwrap();
        let stats = client.request("stats").unwrap();
        assert!(stats.contains("\"op\":\"stats\""), "{stats}");
        assert!(stats.contains("\"query\":{\"count\":1"), "{stats}");
    });
}

#[test]
fn malformed_requests_get_typed_errors_and_keep_the_connection() {
    with_server(fixed_config(), |client, _| {
        let cases = [
            ("bogus 1", "bad-request"),
            ("query", "bad-request"),
            ("query abc", "bad-request"),
            ("topk 1", "bad-request"),
            ("query 99", "out-of-bounds"),
            ("local 4294967295", "out-of-bounds"),
        ];
        for (line, kind) in cases {
            let response = client.request(line).unwrap();
            assert!(response.contains("\"ok\":false"), "{line}: {response}");
            assert!(
                response.contains(&format!("\"kind\":\"{kind}\"")),
                "{line}: {response}"
            );
        }
        // The connection survived all of that.
        let ok = client.request("query 0").unwrap();
        assert!(ok.contains("\"ok\":true"), "{ok}");
    });
    // Errors are counted in the report.
}

#[test]
fn background_recompute_publishes_new_epochs_without_blocking_reads() {
    let config = ServeConfig {
        recompute_interval: Some(Duration::from_millis(30)),
        ..fixed_config()
    };
    let report = with_server(config, |client, _| {
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut last_epoch = 0u64;
        loop {
            let health = client.request("health").unwrap();
            let epoch: u64 = health
                .split("\"epoch\":")
                .nth(1)
                .map(|s| {
                    s.chars()
                        .take_while(char::is_ascii_digit)
                        .collect::<String>()
                })
                .and_then(|s| s.parse().ok())
                .unwrap();
            assert!(epoch >= last_epoch, "epochs must be monotone");
            last_epoch = epoch;
            // Queries keep answering correctly while epochs roll.
            let q = client.request("query 0").unwrap();
            assert!(q.contains("\"members\":[0,1,2,3]"), "{q}");
            if epoch >= 3 {
                break;
            }
            assert!(Instant::now() < deadline, "no recompute within 10s");
            std::thread::sleep(Duration::from_millis(10));
        }
    });
    assert!(report.recomputes >= 2, "report: {report:?}");
    assert!(report.final_epoch >= 3);
}

#[test]
fn shutdown_request_drains_and_reports() {
    let graph = Arc::new(two_cliques());
    let server = Server::new(graph, clique_cover(), fixed_config(), None).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let report = std::thread::scope(|scope| {
        let _guard = CancelOnDrop(server.cancel_token());
        let handle = scope.spawn(|| server.run(listener).unwrap());
        let mut client = Client::connect(addr).unwrap();
        client.request("query 0").unwrap();
        let bye = client.request("shutdown").unwrap();
        assert!(
            bye.contains("\"op\":\"shutdown\"") && bye.contains("\"draining\":true"),
            "{bye}"
        );
        handle.join().unwrap()
    });
    assert_eq!(report.requests, 2);
    assert_eq!(report.errors, 0);
    assert_eq!(report.query.count, 1);
    assert!(report.query.p99_us > 0.0);
    let line = report.summary_line();
    assert!(line.contains("served 2 requests"), "{line}");
}

#[test]
fn max_duration_auto_shuts_down() {
    let graph = Arc::new(two_cliques());
    let config = ServeConfig {
        max_duration: Some(Duration::from_millis(100)),
        ..fixed_config()
    };
    let server = Server::new(graph, clique_cover(), config, None).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let started = Instant::now();
    let report = server.run(listener).unwrap();
    assert!(started.elapsed() < Duration::from_secs(5));
    assert_eq!(report.connections, 0);
}

#[test]
fn mismatched_cover_is_rejected_at_construction() {
    let graph = Arc::new(two_cliques());
    let err = Server::new(graph, Cover::empty(9), fixed_config(), None).unwrap_err();
    assert!(err.to_string().contains("9"), "{err}");
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let graph = Arc::new(two_cliques());
    let config = ServeConfig {
        workers: 4,
        recompute_interval: Some(Duration::from_millis(20)),
        ..fixed_config()
    };
    let recompute: Box<oca_serve::RecomputeFn> =
        Box::new(|_graph, _seed, _cancel| Ok(clique_cover()));
    let server = Server::new(graph, clique_cover(), config, Some(recompute)).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let token = server.cancel_token();
    let report = std::thread::scope(|scope| {
        let _guard = CancelOnDrop(token.clone());
        let handle = scope.spawn(|| server.run(listener).unwrap());
        let mut clients = Vec::new();
        for _ in 0..4 {
            clients.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..50u32 {
                    let v = round % 8;
                    let (exact, clique) = if v < 4 {
                        ("[0,1,2,3]", "0,1,2,3")
                    } else {
                        ("[4,5,6,7]", "4,5,6,7")
                    };
                    let q = client.request(&format!("query {v}")).unwrap();
                    assert!(q.contains(exact), "{q}");
                    // Local ascents from bridge nodes may also pick up the
                    // bridge neighbor; the home clique is always present.
                    let l = client.request(&format!("local {v}")).unwrap();
                    assert!(l.contains(clique), "{l}");
                }
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
        token.cancel();
        handle.join().unwrap()
    });
    assert_eq!(report.requests, 4 * 50 * 2);
    assert_eq!(report.errors, 0);
}
