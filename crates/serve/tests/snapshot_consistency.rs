//! Concurrency contract of [`SnapshotStore`]: readers pin complete,
//! internally consistent snapshots and observe epochs monotonically, while
//! a writer publishes new covers as fast as it can.

use oca_graph::{Community, Cover, NodeId};
use oca_serve::SnapshotStore;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const NODES: usize = 64;

/// A cover whose shape encodes its generation: `gen` communities, each a
/// contiguous run starting at `gen`, so a torn read (cover from one epoch,
/// count from another) is detectable.
fn cover_for(generation: u64) -> Cover {
    let gen = generation as usize;
    let communities = (0..gen)
        .map(|i| {
            let start = (gen + i * 3) % (NODES - 4);
            Community::from_raw((start as u32)..(start as u32 + 4))
        })
        .collect();
    Cover::new(NODES, communities)
}

fn check_snapshot(snapshot: &oca_serve::CoverSnapshot) {
    let generation = snapshot.epoch as usize;
    assert_eq!(
        snapshot.cover.len(),
        generation,
        "epoch {generation} must carry exactly {generation} communities"
    );
    // The index was built from this exact cover, never a neighbor epoch.
    let expected: usize = snapshot
        .cover
        .communities()
        .iter()
        .map(Community::len)
        .sum();
    assert_eq!(snapshot.index.membership_count(), expected);
    let reference = snapshot.cover.membership_index();
    for (v, expected_ids) in reference.iter().enumerate() {
        let ids = snapshot.index.communities_of(NodeId(v as u32));
        assert_eq!(
            ids,
            expected_ids.as_slice(),
            "node {v} at epoch {generation}"
        );
    }
}

#[test]
fn readers_only_observe_complete_monotone_epochs() {
    let store = Arc::new(SnapshotStore::new(cover_for(1), 0.5));
    let done = Arc::new(AtomicBool::new(false));
    const PUBLICATIONS: u64 = 200;

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut last = 0u64;
                let mut observed = 0usize;
                while !done.load(Ordering::Acquire) {
                    let snapshot = store.load();
                    assert!(snapshot.epoch >= last, "epoch went backwards");
                    last = snapshot.epoch;
                    check_snapshot(&snapshot);
                    observed += 1;
                }
                assert!(observed > 0);
            });
        }
        // Writer: publish as fast as possible.
        for generation in 2..=PUBLICATIONS {
            let epoch = store.publish(cover_for(generation), 0.5);
            assert_eq!(epoch, generation, "epochs advance by exactly one");
        }
        done.store(true, Ordering::Release);
    });

    assert_eq!(store.epoch(), PUBLICATIONS);
    check_snapshot(&store.load());
}

#[test]
fn a_pinned_snapshot_is_immutable_across_publications() {
    let store = SnapshotStore::new(cover_for(3), 0.5);
    let pinned = store.load();
    // Note: epoch 1 holds cover_for(3); the shape invariant above only
    // applies to the concurrent test's numbering scheme.
    let members_before: Vec<Vec<u32>> = pinned
        .cover
        .communities()
        .iter()
        .map(|c| c.members().iter().map(|m| m.raw()).collect())
        .collect();
    for generation in 4..40 {
        store.publish(cover_for(generation), 0.5);
    }
    let members_after: Vec<Vec<u32>> = pinned
        .cover
        .communities()
        .iter()
        .map(|c| c.members().iter().map(|m| m.raw()).collect())
        .collect();
    assert_eq!(members_before, members_after);
    assert_eq!(pinned.epoch, 1);
    assert_eq!(store.load().epoch, 37);
}
