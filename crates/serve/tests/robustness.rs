//! Fault-containment tests of the serving layer: injected panics stay
//! inside one request, dead workers respawn, oversized and post-shutdown
//! requests get typed rejections, overload fast-rejects instead of
//! queueing without bound, deadlines produce partial results, idle
//! connections are reaped, and recompute failures degrade — then clear —
//! the health signal without ever taking down the last good epoch.

use oca::{CStrategy, LocalConfig};
use oca_graph::{from_edges, Community, Cover, CsrGraph};
use oca_serve::{Client, FaultPlan, FaultSpec, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Two 4-cliques joined by a single bridge edge.
fn two_cliques() -> CsrGraph {
    let mut edges = Vec::new();
    for base in [0u32, 4] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                edges.push((base + i, base + j));
            }
        }
    }
    edges.push((3, 4));
    from_edges(8, edges)
}

fn clique_cover() -> Cover {
    Cover::new(
        8,
        vec![
            Community::from_raw([0, 1, 2, 3]),
            Community::from_raw([4, 5, 6, 7]),
        ],
    )
}

fn base_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        seed: 42,
        local: LocalConfig {
            c: CStrategy::Fixed(0.9),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Cancels the server on drop so a panicking assertion in the test body
/// cannot leave the scope joined on the accept loop forever.
struct CancelOnDrop(oca_graph::CancelToken);

impl Drop for CancelOnDrop {
    fn drop(&mut self) {
        self.0.cancel();
    }
}

/// Serves `two_cliques` under `config`, runs `body`, shuts down, and
/// returns the final report.
fn with_server<F>(config: ServeConfig, body: F) -> oca_serve::ServeReport
where
    F: FnOnce(SocketAddr, &Server) + Send,
{
    let graph = Arc::new(two_cliques());
    let recompute: Option<Box<oca_serve::RecomputeFn>> =
        config
            .recompute_interval
            .is_some()
            .then(|| -> Box<oca_serve::RecomputeFn> {
                Box::new(|_graph, _seed, _cancel| Ok(clique_cover()))
            });
    let server = Server::new(graph, clique_cover(), config, recompute).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let token = server.cancel_token();
    std::thread::scope(|scope| {
        let _guard = CancelOnDrop(token.clone());
        let handle = scope.spawn(|| server.run(listener).unwrap());
        body(addr, &server);
        token.cancel();
        handle.join().unwrap()
    })
}

/// Reads one `\n`-terminated line from a raw socket (2 s cap).
fn read_line_raw(stream: &mut TcpStream) -> String {
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

#[test]
fn injected_panic_becomes_internal_error_and_connection_survives() {
    let config = ServeConfig {
        faults: FaultPlan::new(FaultSpec {
            panic_request_every: 2,
            ..Default::default()
        }),
        ..base_config()
    };
    let faults = config.faults.clone();
    let report = with_server(config, |addr, _| {
        let mut client = Client::connect(addr).unwrap();
        let first = client.request("query 0").unwrap();
        assert!(first.contains("\"ok\":true"), "{first}");
        // The second data request hits the fail point; the panic must be
        // contained as a typed `internal` error on the same connection.
        let second = client.request("query 0").unwrap();
        assert!(second.contains("\"ok\":false"), "{second}");
        assert!(second.contains("\"kind\":\"internal\""), "{second}");
        assert!(second.contains("panicked"), "{second}");
        // ...and the connection (and worker) keep serving afterwards.
        let third = client.request("query 0").unwrap();
        assert!(third.contains("\"members\":[0,1,2,3]"), "{third}");
        let stats = client.request("stats").unwrap();
        assert!(stats.contains("\"panics\":1"), "{stats}");
    });
    assert_eq!(report.panics, 1, "{report:?}");
    assert_eq!(faults.counts().request_panics, 1);
    let line = report.summary_line();
    assert!(line.contains("panics 1"), "{line}");
}

#[test]
fn killed_workers_are_respawned_by_the_supervisor() {
    let config = ServeConfig {
        faults: FaultPlan::new(FaultSpec {
            kill_worker_every_conns: 1,
            ..Default::default()
        }),
        ..base_config()
    };
    let report = with_server(config, |addr, _| {
        // Every finished connection unwinds its worker; each subsequent
        // connection proves the supervisor put a replacement in place.
        for round in 0..4 {
            let mut client = Client::connect(addr).unwrap();
            let a = client.request("query 4").unwrap();
            assert!(a.contains("\"members\":[4,5,6,7]"), "round {round}: {a}");
            drop(client);
            // Give the unwound worker time to exit and the supervisor
            // (accept loop) a pass to notice the gauge dip.
            std::thread::sleep(Duration::from_millis(50));
        }
    });
    assert!(report.respawns >= 3, "{report:?}");
    assert!(report.panics >= 3, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
}

#[test]
fn oversized_lines_get_a_typed_error_without_killing_the_connection() {
    let config = ServeConfig {
        max_line_bytes: 64,
        ..base_config()
    };
    let report = with_server(config, |addr, _| {
        let mut client = Client::connect(addr).unwrap();
        let huge = "x".repeat(500);
        let response = client.request(&huge).unwrap();
        assert!(response.contains("\"kind\":\"bad-request\""), "{response}");
        assert!(response.contains("exceeds 64 bytes"), "{response}");
        // The oversized line was fully discarded; the connection parses
        // the next request cleanly.
        let ok = client.request("query 0").unwrap();
        assert!(ok.contains("\"ok\":true"), "{ok}");
    });
    assert_eq!(report.oversized_lines, 1, "{report:?}");
}

#[test]
fn overload_fast_rejects_with_a_typed_error() {
    let config = ServeConfig {
        workers: 1,
        max_pending: 1,
        ..base_config()
    };
    let report = with_server(config, |addr, _| {
        // Occupy the only worker: a served connection holds it until EOF.
        let mut held = Client::connect(addr).unwrap();
        held.request("query 0").unwrap();
        // Fill the one queue slot...
        let _queued = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // ...so the next connection must be fast-rejected, not parked.
        let mut rejected = TcpStream::connect(addr).unwrap();
        let line = read_line_raw(&mut rejected);
        assert!(line.contains("\"kind\":\"overloaded\""), "{line}");
        // The held connection is unaffected by the rejection.
        let ok = held.request("query 0").unwrap();
        assert!(ok.contains("\"ok\":true"), "{ok}");
    });
    assert!(report.overloaded_rejects >= 1, "{report:?}");
}

#[test]
fn expired_deadline_returns_a_partial_local_result() {
    let config = ServeConfig {
        request_deadline: Some(Duration::ZERO),
        ..base_config()
    };
    let report = with_server(config, |addr, _| {
        let mut client = Client::connect(addr).unwrap();
        let local = client.request("local 5").unwrap();
        assert!(local.contains("\"ok\":true"), "{local}");
        assert!(local.contains("\"partial\":true"), "{local}");
        assert!(local.contains("\"why\":\"deadline-exceeded\""), "{local}");
        // Index lookups carry no deadline — they are O(memberships).
        let query = client.request("query 5").unwrap();
        assert!(query.contains("\"members\":[4,5,6,7]"), "{query}");
    });
    assert!(report.deadline_hits >= 1, "{report:?}");
}

#[test]
fn idle_connections_are_reaped() {
    let config = ServeConfig {
        workers: 1,
        idle_timeout: Some(Duration::from_millis(50)),
        ..base_config()
    };
    let report = with_server(config, |addr, _| {
        let mut idler = Client::connect(addr).unwrap();
        idler.request("query 0").unwrap();
        std::thread::sleep(Duration::from_millis(400));
        // The server closed the idle connection, freeing the worker
        // (seen as EOF on read, or a broken pipe on the write)...
        let err = idler.request("query 0").unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
            ),
            "{err}"
        );
        // ...which is what lets a fresh client get served at all here
        // (a single worker would otherwise still be parked on the idler).
        let mut fresh = Client::connect(addr).unwrap();
        let ok = fresh.request("query 0").unwrap();
        assert!(ok.contains("\"ok\":true"), "{ok}");
    });
    assert_eq!(report.idle_reaped, 1, "{report:?}");
}

#[test]
fn requests_pipelined_behind_shutdown_get_a_typed_rejection() {
    let report = with_server(base_config(), |addr, _| {
        let mut stream = TcpStream::connect(addr).unwrap();
        // Both lines land in one segment: `shutdown` is answered first,
        // then the drain logic must answer — not drop — the request that
        // was already sitting in the buffer behind it.
        stream.write_all(b"shutdown\nquery 0\n").unwrap();
        stream.flush().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut reader = BufReader::new(stream);
        let mut bye = String::new();
        reader.read_line(&mut bye).unwrap();
        assert!(bye.contains("\"draining\":true"), "{bye}");
        let mut late = String::new();
        reader.read_line(&mut late).unwrap();
        assert!(late.contains("\"kind\":\"shutting-down\""), "{late}");
        // The server closes the connection after the rejection.
        let mut eof = String::new();
        assert_eq!(reader.read_line(&mut eof).unwrap(), 0);
    });
    assert!(report.shutdown_rejects >= 1, "{report:?}");
    assert_eq!(report.requests, 2, "{report:?}");
    let line = report.summary_line();
    assert!(line.contains("shutdown-rejects 1"), "{line}");
}

#[test]
fn persistent_recompute_failure_degrades_health_but_keeps_serving() {
    let config = ServeConfig {
        recompute_interval: Some(Duration::from_millis(10)),
        faults: FaultPlan::new(FaultSpec {
            fail_recompute_every: 1,
            ..Default::default()
        }),
        ..base_config()
    };
    let report = with_server(config, |addr, _| {
        let mut client = Client::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let health = client.request("health").unwrap();
            if health.contains("\"degraded\":true") {
                assert!(health.contains("\"ok\":false"), "{health}");
                assert!(health.contains("recompute failures"), "{health}");
                break;
            }
            assert!(Instant::now() < deadline, "never degraded: {health}");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Degraded is an advisory state: the last good epoch still
        // answers queries, and stats carry the error detail.
        let q = client.request("query 0").unwrap();
        assert!(q.contains("\"members\":[0,1,2,3]"), "{q}");
        let stats = client.request("stats").unwrap();
        assert!(stats.contains("\"degraded\":true"), "{stats}");
        assert!(stats.contains("injected recompute failure"), "{stats}");
    });
    assert!(report.recompute_failures >= 1, "{report:?}");
    assert!(report.degraded, "{report:?}");
    assert_eq!(report.final_epoch, 1, "last good epoch kept: {report:?}");
}

#[test]
fn recompute_recovers_after_transient_failures() {
    let config = ServeConfig {
        recompute_interval: Some(Duration::from_millis(10)),
        // Rounds 2, 4, 6, ... panic; odd rounds succeed — the loop must
        // keep publishing fresh epochs through the churn.
        faults: FaultPlan::new(FaultSpec {
            panic_recompute_every: 2,
            ..Default::default()
        }),
        ..base_config()
    };
    let faults = config.faults.clone();
    let report = with_server(config, |addr, _| {
        let mut client = Client::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let stats = client.request("stats").unwrap();
            let failures: u64 = stats
                .split("\"failures\":")
                .nth(1)
                .map(|s| {
                    s.chars()
                        .take_while(char::is_ascii_digit)
                        .collect::<String>()
                })
                .and_then(|s| s.parse().ok())
                .unwrap();
            let published: u64 = stats
                .split("\"published\":")
                .nth(1)
                .map(|s| {
                    s.chars()
                        .take_while(char::is_ascii_digit)
                        .collect::<String>()
                })
                .and_then(|s| s.parse().ok())
                .unwrap();
            // A success after a failure means recovery happened and was
            // timed.
            if failures >= 1 && published >= 2 && stats.contains("\"consecutive_failures\":0") {
                assert!(stats.contains("recompute panicked"), "{stats}");
                assert!(!stats.contains("\"last_recovery_ms\":0,"), "{stats}");
                break;
            }
            assert!(Instant::now() < deadline, "no recovery: {stats}");
            std::thread::sleep(Duration::from_millis(5));
        }
        let health = client.request("health").unwrap();
        assert!(health.contains("\"degraded\":false"), "{health}");
    });
    assert!(report.recomputes >= 2, "{report:?}");
    assert!(report.recompute_failures >= 1, "{report:?}");
    assert!(faults.counts().recompute_panics >= 1);
}

#[test]
fn stalled_requests_hit_the_deadline_with_a_partial_topk() {
    // A 3000-leaf star: enough neighbors that the cancellable top-k scan
    // reaches its poll point while the injected stall has already burned
    // the deadline.
    let n = 3001u32;
    let edges: Vec<(u32, u32)> = (1..n).map(|leaf| (0, leaf)).collect();
    let graph = Arc::new(from_edges(n as usize, edges));
    let cover = Cover::new(
        n as usize,
        vec![Community::from_raw((0..n).collect::<Vec<_>>())],
    );
    let config = ServeConfig {
        workers: 1,
        request_deadline: Some(Duration::from_millis(5)),
        faults: FaultPlan::new(FaultSpec {
            stall_request_every: 1,
            stall: Duration::from_millis(30),
            ..Default::default()
        }),
        ..base_config()
    };
    let faults = config.faults.clone();
    let server = Server::new(graph, cover, config, None).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let token = server.cancel_token();
    let report = std::thread::scope(|scope| {
        let _guard = CancelOnDrop(token.clone());
        let handle = scope.spawn(|| server.run(listener).unwrap());
        let mut client = Client::connect(addr).unwrap();
        let topk = client.request("topk 0 3").unwrap();
        assert!(topk.contains("\"ok\":true"), "{topk}");
        assert!(topk.contains("\"partial\":true"), "{topk}");
        assert!(topk.contains("\"why\":\"deadline-exceeded\""), "{topk}");
        token.cancel();
        handle.join().unwrap()
    });
    assert!(report.deadline_hits >= 1, "{report:?}");
    assert!(faults.counts().request_stalls >= 1);
}
