//! The CFinder baseline: k-clique percolation (Palla et al. 2005 — the
//! paper's reference \[12\]).
//!
//! A k-clique community is the union of all k-cliques reachable from one
//! another through adjacent k-cliques (sharing `k − 1` nodes). The paper
//! compares against CFinder at `k = 3`, for which we implement a fast
//! triangle-percolation path; higher `k` uses maximal-clique enumeration
//! plus pairwise overlap percolation — faithfully reproducing CFinder's
//! exponential worst case (which Figures 5 and 6 exhibit).

use crate::bron_kerbosch::maximal_cliques;
use oca_graph::{
    Community, Cover, CsrGraph, DetectContext, DetectError, Detection, NodeId, UnionFind,
};
use std::collections::HashMap;
use std::time::Instant;

/// CFinder configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CFinderConfig {
    /// Clique size `k ≥ 2`. The paper's experiments use `k = 3`.
    pub k: usize,
    /// Cap on enumerated maximal cliques (protects the known blow-up);
    /// `None` = unlimited.
    pub max_cliques: Option<usize>,
    /// Use the linear-ish triangle-percolation shortcut when `k = 3`.
    /// The original CFinder always enumerates maximal cliques first — the
    /// prohibitive step the paper measures — so the timing experiments
    /// (Figs. 5–6) disable this to stay faithful to the baseline's cost
    /// profile, while quality experiments keep it (results are identical).
    pub triangle_fast_path: bool,
}

impl Default for CFinderConfig {
    fn default() -> Self {
        CFinderConfig {
            k: 3,
            max_cliques: Some(2_000_000),
            triangle_fast_path: true,
        }
    }
}

/// Result of a CFinder run.
#[derive(Debug, Clone)]
pub struct CFinderResult {
    /// The k-clique communities.
    pub cover: Cover,
    /// False if the clique cap aborted enumeration (cover is partial).
    pub complete: bool,
}

/// Runs k-clique percolation.
///
/// `k < 2` is reported as [`DetectError::InvalidConfig`]; other errors
/// cannot occur without a cancellable context (see [`cfinder_detect`]).
pub fn cfinder(graph: &CsrGraph, config: &CFinderConfig) -> Result<CFinderResult, DetectError> {
    let detection = cfinder_detect(graph, config, &DetectContext::default())?;
    Ok(CFinderResult {
        cover: detection.cover,
        complete: detection.complete,
    })
}

/// [`cfinder`] under a [`DetectContext`]: cancellation is polled during
/// triangle/clique enumeration and during percolation, with `"triangles"`,
/// `"cliques"` and `"percolate"` progress ticks. On cancellation the
/// groups enumerated so far are percolated and returned as the partial
/// result — the same degradation path as hitting the clique cap.
pub fn cfinder_detect(
    graph: &CsrGraph,
    config: &CFinderConfig,
    ctx: &DetectContext,
) -> Result<Detection, DetectError> {
    let start = Instant::now();
    if config.k < 2 {
        return Err(DetectError::InvalidConfig {
            algorithm: "CFinder",
            message: format!("k-clique percolation needs k >= 2, got {}", config.k),
        });
    }
    if ctx.is_cancelled() {
        return Err(DetectError::cancelled(Detection {
            cover: Cover::empty(graph.node_count()),
            elapsed: start.elapsed(),
            complete: false,
            iterations: 0,
            stats: Vec::new(),
        }));
    }
    let run = if config.k == 2 {
        // 2-clique communities are just connected components with ≥ 1 edge.
        let comps = oca_graph::Components::compute(graph);
        let comms: Vec<Community> = comps
            .members()
            .into_iter()
            .filter(|m| m.len() >= 2)
            .map(Community::new)
            .collect();
        let groups = comms.len();
        PercolationRun {
            cover: Cover::new(graph.node_count(), comms),
            complete: true,
            cancelled: false,
            groups,
        }
    } else if config.k == 3 && config.triangle_fast_path {
        triangle_percolation(graph, ctx)
    } else {
        clique_percolation(graph, config, ctx)
    };
    let detection = Detection {
        cover: run.cover,
        elapsed: start.elapsed(),
        complete: run.complete,
        iterations: run.groups,
        stats: vec![("k", config.k.to_string())],
    };
    if run.cancelled {
        Err(DetectError::cancelled(detection))
    } else {
        Ok(detection)
    }
}

/// Internal outcome of one percolation pass.
struct PercolationRun {
    cover: Cover,
    /// False when the clique cap or a cancellation truncated enumeration.
    complete: bool,
    /// True when the truncation was a cancellation.
    cancelled: bool,
    /// Groups (triangles/cliques/components) enumerated.
    groups: usize,
}

/// How many enumeration steps pass between cancellation/progress checks.
const TICK_INTERVAL: usize = 1024;

/// Fast path for k = 3: percolate triangles over shared edges.
fn triangle_percolation(graph: &CsrGraph, ctx: &DetectContext) -> PercolationRun {
    // Enumerate triangles (u < v < w) via neighbor-list intersection.
    let mut triangles: Vec<[NodeId; 3]> = Vec::new();
    let mut cancelled = false;
    let n = graph.node_count();
    for u in graph.nodes() {
        if u.index() % TICK_INTERVAL == 0 {
            ctx.tick("triangles", u.index(), Some(n));
            if ctx.is_cancelled() {
                cancelled = true;
                break;
            }
        }
        for &v in graph.neighbors(u) {
            if v <= u {
                continue;
            }
            // w > v, adjacent to both u and v.
            let (nu, nv) = (graph.neighbors(u), graph.neighbors(v));
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let w = nu[i];
                        if w > v {
                            triangles.push([u, v, w]);
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    // Two triangles are adjacent iff they share an edge: union all
    // triangles incident to the same edge.
    let mut edge_to_first: HashMap<(u32, u32), usize> = HashMap::new();
    let mut uf = UnionFind::new(triangles.len());
    for (ti, t) in triangles.iter().enumerate() {
        for (a, b) in [(t[0], t[1]), (t[0], t[2]), (t[1], t[2])] {
            let key = (a.raw(), b.raw());
            match edge_to_first.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    uf.union(*e.get(), ti);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(ti);
                }
            }
        }
    }
    let cover = communities_from_groups(
        graph.node_count(),
        triangles.len(),
        |ti| triangles[ti].to_vec(),
        &mut uf,
    );
    PercolationRun {
        cover,
        complete: !cancelled,
        cancelled,
        groups: triangles.len(),
    }
}

/// Generic path: maximal cliques of size ≥ k percolate when they share at
/// least k − 1 nodes.
fn clique_percolation(
    graph: &CsrGraph,
    config: &CFinderConfig,
    ctx: &DetectContext,
) -> PercolationRun {
    let k = config.k;
    let mut all: Vec<Vec<NodeId>> = Vec::new();
    let mut cancelled = false;
    let complete = maximal_cliques(graph, |clique| {
        let mut c = clique.to_vec();
        c.sort_unstable();
        all.push(c);
        if all.len() % TICK_INTERVAL == 0 {
            ctx.tick("cliques", all.len(), None);
            if ctx.is_cancelled() {
                cancelled = true;
                return false;
            }
        }
        config.max_cliques.is_none_or(|cap| all.len() < cap)
    });
    let enumerated = all.len();
    let cliques: Vec<Vec<NodeId>> = all.into_iter().filter(|c| c.len() >= k).collect();
    let mut uf = UnionFind::new(cliques.len());
    // Pairwise overlap test, pruned by a node→cliques index.
    let mut node_index: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (ci, c) in cliques.iter().enumerate() {
        for &v in c {
            node_index.entry(v).or_default().push(ci);
        }
    }
    // When the cancellation arrived during enumeration, the truncated
    // clique set is still percolated in full (bounded work, same
    // degradation path as the clique cap) so the partial result is made
    // of real communities, not raw cliques; a fresh cancellation during
    // percolation stops the pairwise loop itself.
    let enumeration_cancelled = cancelled;
    for (ci, c) in cliques.iter().enumerate() {
        if ci % TICK_INTERVAL == 0 {
            ctx.tick("percolate", ci, Some(cliques.len()));
            if !enumeration_cancelled && ctx.is_cancelled() {
                cancelled = true;
                break;
            }
        }
        let mut candidates: Vec<usize> = c
            .iter()
            .flat_map(|v| node_index[v].iter().copied())
            .filter(|&cj| cj > ci)
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        for cj in candidates {
            if sorted_overlap(c, &cliques[cj]) >= k - 1 {
                uf.union(ci, cj);
            }
        }
    }
    let cover = communities_from_groups(
        graph.node_count(),
        cliques.len(),
        |ci| cliques[ci].clone(),
        &mut uf,
    );
    PercolationRun {
        cover,
        complete: complete && !cancelled,
        cancelled,
        groups: enumerated,
    }
}

fn sorted_overlap(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

fn communities_from_groups<F: Fn(usize) -> Vec<NodeId>>(
    node_count: usize,
    group_count: usize,
    members_of: F,
    uf: &mut UnionFind,
) -> Cover {
    let mut by_root: HashMap<usize, Vec<NodeId>> = HashMap::new();
    for gi in 0..group_count {
        let root = uf.find(gi);
        by_root.entry(root).or_default().extend(members_of(gi));
    }
    let mut communities: Vec<Community> = by_root.into_values().map(Community::new).collect();
    // Deterministic output order regardless of hash iteration.
    communities.sort_unstable_by(|a, b| a.members().cmp(b.members()));
    Cover::new(node_count, communities)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    /// The classic CPM example: two k=3 communities sharing node 4.
    fn butterfly() -> CsrGraph {
        from_edges(
            9,
            [
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (2, 4),
                (4, 5),
                (5, 6),
                (4, 6),
                (6, 7),
                (7, 8),
                (6, 8),
            ],
        )
    }

    #[test]
    fn k3_finds_triangle_chains() {
        let g = butterfly();
        let r = cfinder(&g, &CFinderConfig::default()).unwrap();
        assert!(r.complete);
        // Triangles (0,1,2)-(2,3,4) share edge? (0,1,2) and (2,3,4) share
        // only node 2 → NOT adjacent. Each triangle is isolated from the
        // next, so we get 4 separate communities.
        assert_eq!(r.cover.len(), 4);
        assert!(r.cover.communities().iter().all(|c| c.len() == 3));
    }

    #[test]
    fn k3_percolates_through_shared_edges() {
        // Two triangles sharing edge 1-2: one community of 4 nodes.
        let g = from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let r = cfinder(&g, &CFinderConfig::default()).unwrap();
        assert_eq!(r.cover.len(), 1);
        assert_eq!(r.cover.communities()[0].len(), 4);
    }

    #[test]
    fn k3_overlapping_communities_share_node() {
        // Two edge-sharing triangle pairs joined at node 4 only.
        let g = from_edges(
            7,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 4),
                (2, 4),
                (1, 2), // dup ignored
                (4, 5),
                (4, 6),
                (5, 6),
            ],
        );
        let r = cfinder(&g, &CFinderConfig::default()).unwrap();
        assert_eq!(r.cover.len(), 2);
        let idx = r.cover.membership_index();
        assert_eq!(idx[4].len(), 2, "node 4 overlaps both communities");
    }

    #[test]
    fn k4_requires_denser_overlap() {
        // Two K4s sharing a triangle: percolate at k = 4 into one community.
        let g = from_edges(
            5,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3), // K4 on 0..4
                (1, 4),
                (2, 4),
                (3, 4), // K4 on 1..5
            ],
        );
        let cfg = CFinderConfig {
            k: 4,
            ..Default::default()
        };
        let r = cfinder(&g, &cfg).unwrap();
        assert_eq!(r.cover.len(), 1);
        assert_eq!(r.cover.communities()[0].len(), 5);
    }

    #[test]
    fn k4_on_sparse_graph_finds_nothing() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let cfg = CFinderConfig {
            k: 4,
            ..Default::default()
        };
        let r = cfinder(&g, &cfg).unwrap();
        assert!(r.cover.is_empty());
    }

    #[test]
    fn k2_is_connected_components() {
        let g = from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let cfg = CFinderConfig {
            k: 2,
            ..Default::default()
        };
        let r = cfinder(&g, &cfg).unwrap();
        assert_eq!(r.cover.len(), 2);
    }

    #[test]
    fn generic_path_agrees_with_triangle_path_on_k3() {
        let g = butterfly();
        let fast = cfinder(&g, &CFinderConfig::default()).unwrap();
        let slow = clique_percolation(
            &g,
            &CFinderConfig {
                k: 3,
                max_cliques: None,
                triangle_fast_path: false,
            },
            &DetectContext::default(),
        );
        let mut a: Vec<_> = fast.cover.communities().to_vec();
        let mut b: Vec<_> = slow.cover.communities().to_vec();
        a.sort_by(|x, y| x.members().cmp(y.members()));
        b.sort_by(|x, y| x.members().cmp(y.members()));
        assert_eq!(a, b);
    }

    #[test]
    fn cancel_during_enumeration_still_percolates_the_partial() {
        use oca_graph::CancelToken;
        // A triangle strip: 1500 edge-sharing triangles that percolate
        // into few long communities. Cancelling at the first "cliques"
        // tick (1024 enumerated) must still union the collected cliques,
        // not return one raw community per clique.
        let n = 1502u32;
        let mut edges = Vec::new();
        for i in 0..n - 1 {
            edges.push((i, i + 1));
        }
        for i in 0..n - 2 {
            edges.push((i, i + 2));
        }
        let g = from_edges(n as usize, edges);
        let token = CancelToken::new();
        let trigger = token.clone();
        let ctx = DetectContext::new(0)
            .with_cancel(token)
            .with_progress(move |p| {
                if p.stage == "cliques" {
                    trigger.cancel();
                }
            });
        let config = CFinderConfig {
            triangle_fast_path: false,
            ..Default::default()
        };
        match cfinder_detect(&g, &config, &ctx) {
            Err(DetectError::Cancelled { partial }) => {
                assert!(!partial.complete);
                assert!(!partial.cover.is_empty(), "partial lost all work");
                assert!(
                    partial.cover.len() < partial.iterations / 2,
                    "{} communities from {} cliques: percolation did not run",
                    partial.cover.len(),
                    partial.iterations
                );
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn nodes_outside_triangles_are_orphans() {
        let g = from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let r = cfinder(&g, &CFinderConfig::default()).unwrap();
        let orphans = r.cover.orphans();
        assert!(orphans.contains(&NodeId(3)));
        assert!(orphans.contains(&NodeId(4)));
    }
}
