//! Maximal clique enumeration (Bron–Kerbosch with pivoting).
//!
//! The engine behind the CFinder baseline. The paper notes that "retrieving
//! all cliques of the graph … turns out to be prohibitive for large graphs"
//! — which is exactly the behaviour Figures 5 and 6 demonstrate — so the
//! enumerator takes an optional output cap to keep experiments bounded.

use oca_graph::{CsrGraph, NodeId};

/// Enumerates all maximal cliques, calling `sink` for each. Returns `false`
/// if the enumeration was aborted by the sink (e.g. a cap was hit).
pub fn maximal_cliques<F: FnMut(&[NodeId]) -> bool>(graph: &CsrGraph, mut sink: F) -> bool {
    let n = graph.node_count();
    if n == 0 {
        return true;
    }
    // Degeneracy-ordered outer loop keeps recursion depth small on sparse
    // graphs; a simple degree order is a good practical proxy.
    let mut order: Vec<NodeId> = graph.nodes().collect();
    order.sort_unstable_by_key(|&v| graph.degree(v));
    let mut position = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        position[v.index()] = i;
    }
    let mut r: Vec<NodeId> = Vec::new();
    for &v in &order {
        let pv = position[v.index()];
        let p: Vec<NodeId> = graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| position[u.index()] > pv)
            .collect();
        let x: Vec<NodeId> = graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| position[u.index()] < pv)
            .collect();
        r.push(v);
        if !bk_pivot(graph, &mut r, p, x, &mut sink) {
            return false;
        }
        r.pop();
    }
    true
}

fn bk_pivot<F: FnMut(&[NodeId]) -> bool>(
    graph: &CsrGraph,
    r: &mut Vec<NodeId>,
    p: Vec<NodeId>,
    mut x: Vec<NodeId>,
    sink: &mut F,
) -> bool {
    if p.is_empty() && x.is_empty() {
        return sink(r);
    }
    // Pivot: the vertex of P ∪ X with most neighbors in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&w| graph.has_edge(u, w)).count())
        .expect("P ∪ X non-empty");
    let candidates: Vec<NodeId> = p
        .iter()
        .copied()
        .filter(|&u| !graph.has_edge(pivot, u))
        .collect();
    let mut p = p;
    for v in candidates {
        let np: Vec<NodeId> = p
            .iter()
            .copied()
            .filter(|&u| u != v && graph.has_edge(v, u))
            .collect();
        let nx: Vec<NodeId> = x
            .iter()
            .copied()
            .filter(|&u| graph.has_edge(v, u))
            .collect();
        r.push(v);
        if !bk_pivot(graph, r, np, nx, sink) {
            return false;
        }
        r.pop();
        p.retain(|&u| u != v);
        x.push(v);
    }
    true
}

/// Collects all maximal cliques up to `cap` (None = unlimited). The second
/// return value is `true` if enumeration completed.
pub fn collect_maximal_cliques(graph: &CsrGraph, cap: Option<usize>) -> (Vec<Vec<NodeId>>, bool) {
    let mut out = Vec::new();
    let completed = maximal_cliques(graph, |clique| {
        let mut c = clique.to_vec();
        c.sort_unstable();
        out.push(c);
        cap.is_none_or(|cap| out.len() < cap)
    });
    (out, completed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    fn cliques_of(graph: &CsrGraph) -> Vec<Vec<u32>> {
        let (cs, done) = collect_maximal_cliques(graph, None);
        assert!(done);
        let mut raw: Vec<Vec<u32>> = cs
            .into_iter()
            .map(|c| c.into_iter().map(|v| v.raw()).collect())
            .collect();
        raw.sort();
        raw
    }

    #[test]
    fn triangle_is_one_clique() {
        let g = from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        assert_eq!(cliques_of(&g), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn path_yields_edges() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(cliques_of(&g), vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
    }

    #[test]
    fn k4_minus_edge() {
        // K4 without edge 0-3: two triangles {0,1,2} and {1,2,3}.
        let g = from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(cliques_of(&g), vec![vec![0, 1, 2], vec![1, 2, 3]]);
    }

    #[test]
    fn complete_graph_single_clique() {
        let mut edges = Vec::new();
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                edges.push((i, j));
            }
        }
        let g = from_edges(6, edges);
        assert_eq!(cliques_of(&g), vec![vec![0, 1, 2, 3, 4, 5]]);
    }

    #[test]
    fn isolated_nodes_are_trivial_cliques() {
        let g = from_edges(3, [(0, 1)]);
        assert_eq!(cliques_of(&g), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn clique_count_on_moon_graph() {
        // Moon–Moser style check at small scale: C5 has exactly 5 maximal
        // cliques (its edges).
        let g = from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(cliques_of(&g).len(), 5);
    }

    #[test]
    fn cap_aborts_enumeration() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let (cs, done) = collect_maximal_cliques(&g, Some(2));
        assert_eq!(cs.len(), 2);
        assert!(!done);
    }

    #[test]
    fn empty_graph() {
        let g = oca_graph::CsrGraph::empty(0);
        let (cs, done) = collect_maximal_cliques(&g, None);
        assert!(cs.is_empty());
        assert!(done);
    }
}
