//! [`CommunityDetector`] implementations for the baseline algorithms.
//!
//! Thin config newtypes plugging LFK, CFinder (both paths) and LPA into
//! the workspace-wide detection API of [`oca_graph::detect`]. The
//! `oca-api` crate registers them under the names `"lfk"`, `"cfinder"`,
//! `"cfinder-faithful"` and `"lpa"`.
//!
//! The triangle-shortcut and faithful maximal-clique CFinder variants are
//! distinct detectors with distinct display names (`"CFinder"` vs
//! `"CFinder-faithful"`) so experiment tables and CSV rows stay
//! unambiguous.

use crate::cfinder::{cfinder_detect, CFinderConfig};
use crate::label_prop::{label_propagation_detect, LpaConfig};
use crate::lfk::{lfk_detect, LfkConfig};
use oca_graph::{CommunityDetector, CsrGraph, DetectContext, DetectError, Detection};

/// LFK behind the common [`CommunityDetector`] interface.
///
/// The context seed overrides [`LfkConfig::rng_seed`].
#[derive(Debug, Clone, Default)]
pub struct LfkDetector {
    config: LfkConfig,
}

impl LfkDetector {
    /// Wraps a validated configuration.
    pub fn new(config: LfkConfig) -> Result<Self, DetectError> {
        if !(config.alpha.is_finite() && config.alpha > 0.0) {
            return Err(DetectError::InvalidConfig {
                algorithm: "LFK",
                message: format!("alpha must be finite and positive, got {}", config.alpha),
            });
        }
        Ok(LfkDetector { config })
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &LfkConfig {
        &self.config
    }
}

impl CommunityDetector for LfkDetector {
    fn name(&self) -> &'static str {
        "LFK"
    }

    fn detect(&self, graph: &CsrGraph, ctx: &mut DetectContext) -> Result<Detection, DetectError> {
        let mut config = self.config;
        config.rng_seed = ctx.seed();
        lfk_detect(graph, &config, ctx)
    }
}

/// CFinder (k-clique percolation) behind the common interface, using the
/// configured clique path — by default the fast triangle shortcut for
/// `k = 3`.
///
/// CFinder is deterministic, so the context seed is unused.
#[derive(Debug, Clone, Default)]
pub struct CFinderDetector {
    config: CFinderConfig,
}

impl CFinderDetector {
    /// Wraps a validated configuration (`k >= 2`).
    pub fn new(config: CFinderConfig) -> Result<Self, DetectError> {
        validate_cfinder(&config)?;
        Ok(CFinderDetector { config })
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &CFinderConfig {
        &self.config
    }
}

impl CommunityDetector for CFinderDetector {
    fn name(&self) -> &'static str {
        "CFinder"
    }

    fn detect(&self, graph: &CsrGraph, ctx: &mut DetectContext) -> Result<Detection, DetectError> {
        cfinder_detect(graph, &self.config, ctx)
    }
}

/// CFinder in its faithful mode: maximal-clique enumeration first, like
/// the original tool — the prohibitive cost profile the paper's timing
/// experiments (Figures 5–6) measure. Distinct display name so timing
/// tables cannot be confused with the triangle-shortcut rows.
#[derive(Debug, Clone, Default)]
pub struct CFinderFaithfulDetector {
    config: CFinderConfig,
}

impl CFinderFaithfulDetector {
    /// Wraps a validated configuration (`k >= 2`); the triangle fast path
    /// is disabled regardless of the flag in `config`.
    pub fn new(config: CFinderConfig) -> Result<Self, DetectError> {
        validate_cfinder(&config)?;
        Ok(CFinderFaithfulDetector { config })
    }

    /// The wrapped configuration (fast path forced off at detection time).
    pub fn config(&self) -> &CFinderConfig {
        &self.config
    }
}

impl CommunityDetector for CFinderFaithfulDetector {
    fn name(&self) -> &'static str {
        "CFinder-faithful"
    }

    fn detect(&self, graph: &CsrGraph, ctx: &mut DetectContext) -> Result<Detection, DetectError> {
        let config = CFinderConfig {
            triangle_fast_path: false,
            ..self.config
        };
        cfinder_detect(graph, &config, ctx)
    }
}

fn validate_cfinder(config: &CFinderConfig) -> Result<(), DetectError> {
    if config.k < 2 {
        return Err(DetectError::InvalidConfig {
            algorithm: "CFinder",
            message: format!("k-clique percolation needs k >= 2, got {}", config.k),
        });
    }
    Ok(())
}

/// Label propagation behind the common interface.
///
/// The context seed overrides [`LpaConfig::rng_seed`].
#[derive(Debug, Clone, Default)]
pub struct LpaDetector {
    config: LpaConfig,
}

impl LpaDetector {
    /// Wraps a validated configuration.
    pub fn new(config: LpaConfig) -> Result<Self, DetectError> {
        if config.max_sweeps == 0 {
            return Err(DetectError::InvalidConfig {
                algorithm: "LPA",
                message: "need at least one sweep".to_string(),
            });
        }
        Ok(LpaDetector { config })
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &LpaConfig {
        &self.config
    }
}

impl CommunityDetector for LpaDetector {
    fn name(&self) -> &'static str {
        "LPA"
    }

    fn detect(&self, graph: &CsrGraph, ctx: &mut DetectContext) -> Result<Detection, DetectError> {
        let mut config = self.config;
        config.rng_seed = ctx.seed();
        label_propagation_detect(graph, &config, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::{from_edges, CancelToken};

    fn toy() -> CsrGraph {
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((3, 4));
        from_edges(8, edges)
    }

    fn detectors() -> Vec<Box<dyn CommunityDetector>> {
        vec![
            Box::new(LfkDetector::default()),
            Box::new(CFinderDetector::default()),
            Box::new(CFinderFaithfulDetector::default()),
            Box::new(LpaDetector::default()),
        ]
    }

    #[test]
    fn all_baselines_detect_on_toy_graph() {
        let g = toy();
        for det in detectors() {
            let d = det.detect(&g, &mut DetectContext::new(5)).unwrap();
            assert!(d.complete, "{} did not complete", det.name());
            assert!(!d.cover.is_empty(), "{} found nothing", det.name());
        }
    }

    #[test]
    fn display_names_are_distinct() {
        let names: Vec<&str> = detectors().iter().map(|d| d.name()).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "duplicate names in {names:?}");
    }

    #[test]
    fn cfinder_variants_agree_on_k3() {
        let g = toy();
        let fast = CFinderDetector::default()
            .detect(&g, &mut DetectContext::new(1))
            .unwrap();
        let slow = CFinderFaithfulDetector::default()
            .detect(&g, &mut DetectContext::new(1))
            .unwrap();
        assert_eq!(fast.cover, slow.cover);
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let bad_k = CFinderConfig {
            k: 1,
            ..Default::default()
        };
        assert!(matches!(
            CFinderDetector::new(bad_k),
            Err(DetectError::InvalidConfig { .. })
        ));
        assert!(matches!(
            CFinderFaithfulDetector::new(bad_k),
            Err(DetectError::InvalidConfig { .. })
        ));
        let bad_alpha = LfkConfig {
            alpha: f64::NAN,
            ..Default::default()
        };
        assert!(LfkDetector::new(bad_alpha).is_err());
        let bad_sweeps = LpaConfig {
            max_sweeps: 0,
            ..Default::default()
        };
        assert!(LpaDetector::new(bad_sweeps).is_err());
    }

    #[test]
    fn pre_cancelled_contexts_fail_promptly_with_partial() {
        let g = toy();
        for det in detectors() {
            let token = CancelToken::new();
            token.cancel();
            let mut ctx = DetectContext::new(5).with_cancel(token);
            match det.detect(&g, &mut ctx) {
                Err(DetectError::Cancelled { partial }) => {
                    assert!(!partial.complete, "{} partial marked complete", det.name())
                }
                other => panic!("{}: expected Cancelled, got {other:?}", det.name()),
            }
        }
    }

    #[test]
    fn context_seed_makes_runs_deterministic() {
        let g = toy();
        for det in detectors() {
            let a = det.detect(&g, &mut DetectContext::new(9)).unwrap();
            let b = det.detect(&g, &mut DetectContext::new(9)).unwrap();
            assert_eq!(a.cover, b.cover, "{} not deterministic", det.name());
        }
    }
}
