//! # oca-baselines — the comparison algorithms of the OCA paper
//!
//! From-scratch implementations of both overlapping-community baselines the
//! paper evaluates against (Section V), plus one extra speed yardstick:
//!
//! * [`lfk()`] — local fitness maximization of Lancichinetti, Fortunato &
//!   Kertész (ref \[8\]), run at the paper's standard `α = 1`;
//! * [`cfinder()`] — k-clique percolation of Palla et al. (ref \[12\]); the
//!   paper uses `k = 3`, our default, with a fast triangle-percolation path
//!   and a generic Bron–Kerbosch path for any `k`;
//! * [`label_propagation()`] — Raghavan et al.'s LPA, a near-linear
//!   non-overlapping baseline used in tests and ablations.
//!
//! The original CFinder and LFK binaries were obtained privately by the
//! paper's authors; these reimplementations follow the published algorithm
//! descriptions (see DESIGN.md §3 for the substitution argument).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bron_kerbosch;
pub mod cfinder;
pub mod detectors;
pub mod label_prop;
pub mod lfk;
pub mod set_state;

pub use bron_kerbosch::{collect_maximal_cliques, maximal_cliques};
pub use cfinder::{cfinder, cfinder_detect, CFinderConfig, CFinderResult};
pub use detectors::{CFinderDetector, CFinderFaithfulDetector, LfkDetector, LpaDetector};
pub use label_prop::{label_propagation, label_propagation_detect, LpaConfig};
pub use lfk::{lfk, lfk_detect, natural_community, LfkConfig};
pub use set_state::SetState;
