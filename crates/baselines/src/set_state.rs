//! Incremental node-set bookkeeping shared by the baseline algorithms.
//!
//! Tracks members, internal degree of touched nodes, internal edge count and
//! total member degree (volume), so LFK's fitness and its gains evaluate in
//! `O(1)` after an `O(deg)` update — the same trick the OCA core uses.

use oca_graph::{Community, CsrGraph, NodeId};

/// A mutable node set over a graph with incremental `Ein` / volume tracking.
#[derive(Debug)]
pub struct SetState<'g> {
    graph: &'g CsrGraph,
    in_set: Vec<bool>,
    deg_in: Vec<u32>,
    touched: Vec<NodeId>,
    touched_flag: Vec<bool>,
    members: Vec<NodeId>,
    ein: usize,
    volume: usize,
}

impl<'g> SetState<'g> {
    /// Empty set over `graph`.
    pub fn new(graph: &'g CsrGraph) -> Self {
        let n = graph.node_count();
        SetState {
            graph,
            in_set: vec![false; n],
            deg_in: vec![0; n],
            touched: Vec::new(),
            touched_flag: vec![false; n],
            members: Vec::new(),
            ein: 0,
            volume: 0,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, v: NodeId) -> bool {
        self.in_set[v.index()]
    }

    /// Internal edges `Ein(S)`.
    pub fn internal_edges(&self) -> usize {
        self.ein
    }

    /// Total degree of members (`vol(S)`), counting boundary edges once and
    /// internal edges twice.
    pub fn volume(&self) -> usize {
        self.volume
    }

    /// `k_in = 2·Ein(S)`.
    pub fn k_in(&self) -> usize {
        2 * self.ein
    }

    /// `k_out = vol(S) − 2·Ein(S)`.
    pub fn k_out(&self) -> usize {
        self.volume - 2 * self.ein
    }

    /// Internal degree of any node w.r.t. the set.
    pub fn internal_degree(&self, v: NodeId) -> usize {
        self.deg_in[v.index()] as usize
    }

    /// Members (unsorted).
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    fn touch(&mut self, v: NodeId) {
        if !self.touched_flag[v.index()] {
            self.touched_flag[v.index()] = true;
            self.touched.push(v);
        }
    }

    /// Adds `v`. `O(deg v)`.
    pub fn add(&mut self, v: NodeId) {
        debug_assert!(!self.contains(v));
        self.ein += self.deg_in[v.index()] as usize;
        self.volume += self.graph.degree(v);
        self.in_set[v.index()] = true;
        self.touch(v);
        self.members.push(v);
        for &u in self.graph.neighbors(v) {
            self.deg_in[u.index()] += 1;
            self.touch(u);
        }
    }

    /// Removes `v`. `O(deg v + s)`.
    pub fn remove(&mut self, v: NodeId) {
        debug_assert!(self.contains(v));
        self.ein -= self.deg_in[v.index()] as usize;
        self.volume -= self.graph.degree(v);
        self.in_set[v.index()] = false;
        for &u in self.graph.neighbors(v) {
            self.deg_in[u.index()] -= 1;
        }
        let pos = self
            .members
            .iter()
            .position(|&m| m == v)
            .expect("member bookkeeping consistent");
        self.members.swap_remove(pos);
    }

    /// Boundary iterator: adjacent non-members.
    pub fn boundary(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.touched
            .iter()
            .copied()
            .filter(|&v| !self.in_set[v.index()] && self.deg_in[v.index()] > 0)
    }

    /// Snapshot as a sorted [`Community`].
    pub fn to_community(&self) -> Community {
        Community::new(self.members.clone())
    }

    /// Clears the set touching only dirty entries.
    pub fn reset(&mut self) {
        for &v in &self.touched {
            self.deg_in[v.index()] = 0;
            self.in_set[v.index()] = false;
            self.touched_flag[v.index()] = false;
        }
        self.touched.clear();
        self.members.clear();
        self.ein = 0;
        self.volume = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    #[test]
    fn tracks_kin_kout() {
        // Triangle 0-1-2 with pendant 3 on 2.
        let g = from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        let mut s = SetState::new(&g);
        s.add(NodeId(0));
        s.add(NodeId(1));
        assert_eq!(s.k_in(), 2);
        assert_eq!(s.k_out(), 2);
        s.add(NodeId(2));
        assert_eq!(s.k_in(), 6);
        assert_eq!(s.k_out(), 1);
        assert_eq!(s.volume(), 7);
    }

    #[test]
    fn remove_restores_counts() {
        let g = from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        let mut s = SetState::new(&g);
        for v in [0, 1, 2] {
            s.add(NodeId(v));
        }
        s.remove(NodeId(2));
        assert_eq!(s.k_in(), 2);
        assert_eq!(s.k_out(), 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn reset_and_reuse() {
        let g = from_edges(3, [(0, 1), (1, 2)]);
        let mut s = SetState::new(&g);
        s.add(NodeId(0));
        s.add(NodeId(1));
        s.reset();
        assert!(s.is_empty());
        assert_eq!(s.volume(), 0);
        s.add(NodeId(2));
        assert_eq!(s.internal_degree(NodeId(1)), 1);
    }
}
