//! Asynchronous label propagation (Raghavan et al. 2007).
//!
//! A fast non-overlapping baseline: every node repeatedly adopts the label
//! most common among its neighbors until a fixed point. Not part of the
//! paper's comparison set, but useful as a speed yardstick and as a sanity
//! check in tests (it is near-linear and parameter-free).

use oca_graph::{Community, Cover, CsrGraph, DetectContext, DetectError, Detection};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;

/// Label propagation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LpaConfig {
    /// Maximum sweeps over all nodes.
    pub max_sweeps: usize,
    /// RNG seed for the visit order and tie breaks.
    pub rng_seed: u64,
}

impl Default for LpaConfig {
    fn default() -> Self {
        LpaConfig {
            max_sweeps: 100,
            rng_seed: 0x17A,
        }
    }
}

/// Runs asynchronous LPA; returns the final label partition as a cover
/// (singleton communities included, so coverage is always 1).
pub fn label_propagation(graph: &CsrGraph, config: &LpaConfig) -> Cover {
    match label_propagation_detect(graph, config, &DetectContext::new(config.rng_seed)) {
        Ok(detection) => detection.cover,
        // The default context can never be cancelled — the only failure mode.
        Err(e) => unreachable!("uncancellable LPA run failed: {e}"),
    }
}

/// [`label_propagation`] under a [`DetectContext`]: the cancellation token
/// is polled once per sweep and a `"sweep"` progress tick fires after each
/// one. On cancellation the current label partition is returned as the
/// partial result. Randomness still derives from [`LpaConfig::rng_seed`];
/// detector wrappers copy the context seed into the config first.
pub fn label_propagation_detect(
    graph: &CsrGraph,
    config: &LpaConfig,
    ctx: &DetectContext,
) -> Result<Detection, DetectError> {
    let start = Instant::now();
    let n = graph.node_count();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(config.rng_seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut counts: HashMap<u32, usize> = HashMap::new();
    let mut sweeps = 0usize;
    for _ in 0..config.max_sweeps {
        if ctx.is_cancelled() {
            return Err(DetectError::cancelled(partition_detection(
                n, &labels, start, sweeps, false,
            )));
        }
        order.shuffle(&mut rng);
        let mut changed = false;
        for &v in &order {
            let neigh = graph.neighbors(oca_graph::NodeId(v));
            if neigh.is_empty() {
                continue;
            }
            counts.clear();
            for &u in neigh {
                *counts.entry(labels[u.index()]).or_insert(0) += 1;
            }
            let current = labels[v as usize];
            // Highest count wins; keep the current label on ties involving
            // it (stabilizes convergence), otherwise lowest label id.
            let max_count = *counts.values().max().unwrap();
            let best = if counts.get(&current) == Some(&max_count) {
                current
            } else {
                counts
                    .iter()
                    .filter(|&(_, &c)| c == max_count)
                    .map(|(&l, _)| l)
                    .min()
                    .unwrap()
            };
            if best != current {
                labels[v as usize] = best;
                changed = true;
            }
        }
        sweeps += 1;
        ctx.tick("sweep", sweeps, Some(config.max_sweeps));
        if !changed {
            break;
        }
    }
    Ok(partition_detection(n, &labels, start, sweeps, true))
}

/// Folds the label array into a [`Detection`] (used by both the normal
/// return and the partial result inside a cancellation error).
fn partition_detection(
    n: usize,
    labels: &[u32],
    start: Instant,
    sweeps: usize,
    complete: bool,
) -> Detection {
    let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
    for (v, &l) in labels.iter().enumerate() {
        groups.entry(l).or_default().push(v as u32);
    }
    let mut communities: Vec<Community> = groups.into_values().map(Community::from_raw).collect();
    communities.sort_unstable_by(|a, b| a.members().cmp(b.members()));
    Detection {
        cover: Cover::new(n, communities),
        elapsed: start.elapsed(),
        complete,
        iterations: sweeps,
        stats: vec![("sweeps", sweeps.to_string())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    fn two_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((4, 5));
        from_edges(10, edges)
    }

    #[test]
    fn separates_two_cliques() {
        let cover = label_propagation(&two_cliques(), &LpaConfig::default());
        // LPA can occasionally merge across one bridge, but with 5-cliques
        // it should split; allow 2 communities covering everything.
        assert!(cover.len() <= 3);
        assert!(cover.orphans().is_empty());
        assert!((cover.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partition_no_overlap() {
        let cover = label_propagation(&two_cliques(), &LpaConfig::default());
        assert_eq!(cover.overlap_node_count(), 0);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let g = from_edges(4, [(0, 1)]);
        let cover = label_propagation(&g, &LpaConfig::default());
        assert!((cover.coverage() - 1.0).abs() < 1e-12);
        assert!(cover.communities().iter().any(|c| c.len() == 1));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = two_cliques();
        let a = label_propagation(&g, &LpaConfig::default());
        let b = label_propagation(&g, &LpaConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph() {
        let g = oca_graph::CsrGraph::empty(0);
        let cover = label_propagation(&g, &LpaConfig::default());
        assert!(cover.is_empty());
    }
}
