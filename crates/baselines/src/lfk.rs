//! The LFK baseline (Lancichinetti, Fortunato & Kertész 2009 — the paper's
//! reference \[8\]).
//!
//! LFK grows the *natural community* of a seed node by greedily maximizing
//! the local fitness
//!
//! `f(S) = k_in(S) / (k_in(S) + k_out(S))^α`
//!
//! where `k_in` counts internal edge endpoints and `k_out` boundary edges.
//! After every addition, members with negative fitness contribution are
//! pruned. The cover is built by repeatedly seeding from a random
//! not-yet-covered node, which naturally produces overlapping communities.
//! The paper's experiments use the standard `α = 1`.

use crate::set_state::SetState;
use oca_graph::{Community, Cover, CsrGraph, DetectContext, DetectError, Detection, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// LFK configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LfkConfig {
    /// Resolution exponent `α`; 1 is the standard scale.
    pub alpha: f64,
    /// RNG seed for the seed-node order.
    pub rng_seed: u64,
    /// Discard natural communities smaller than this.
    pub min_community_size: usize,
    /// Safety cap on grow steps per community.
    pub max_steps: usize,
}

impl Default for LfkConfig {
    fn default() -> Self {
        LfkConfig {
            alpha: 1.0,
            rng_seed: 0x1F1,
            min_community_size: 1,
            max_steps: 1_000_000,
        }
    }
}

fn fitness(k_in: usize, k_out: usize, alpha: f64) -> f64 {
    let total = (k_in + k_out) as f64;
    if total == 0.0 {
        return 0.0;
    }
    k_in as f64 / total.powf(alpha)
}

fn state_fitness(s: &SetState<'_>, alpha: f64) -> f64 {
    fitness(s.k_in(), s.k_out(), alpha)
}

/// Fitness if `v` were added: `k_in` gains `2·deg_S(v)`, volume gains
/// `deg(v)`.
fn fitness_with(s: &SetState<'_>, graph: &CsrGraph, v: NodeId, alpha: f64) -> f64 {
    let k_in = s.k_in() + 2 * s.internal_degree(v);
    let vol = s.volume() + graph.degree(v);
    fitness(k_in, vol - k_in, alpha)
}

/// Fitness if member `v` were removed.
fn fitness_without(s: &SetState<'_>, graph: &CsrGraph, v: NodeId, alpha: f64) -> f64 {
    let k_in = s.k_in() - 2 * s.internal_degree(v);
    let vol = s.volume() - graph.degree(v);
    fitness(k_in, vol - k_in, alpha)
}

/// Grows the natural community of `seed` (LFK Sec. 2 procedure). The seed
/// itself is never pruned, guaranteeing progress of the cover loop.
pub fn natural_community(
    graph: &CsrGraph,
    state: &mut SetState<'_>,
    seed: NodeId,
    config: &LfkConfig,
) -> Community {
    state.reset();
    state.add(seed);
    let mut steps = 0usize;
    loop {
        steps += 1;
        if steps > config.max_steps {
            break;
        }
        // (i) best neighbor by resulting fitness.
        let current = state_fitness(state, config.alpha);
        let mut best: Option<(f64, NodeId)> = None;
        for v in state.boundary() {
            let f = fitness_with(state, graph, v, config.alpha);
            if best.is_none_or(|(bf, _)| f > bf) {
                best = Some((f, v));
            }
        }
        let Some((best_fitness, best_node)) = best else {
            break;
        };
        if best_fitness <= current {
            break;
        }
        state.add(best_node);
        // (ii) prune members with negative fitness contribution, repeatedly.
        loop {
            let current = state_fitness(state, config.alpha);
            let candidate = state
                .members()
                .iter()
                .copied()
                .filter(|&v| v != seed)
                .map(|v| (fitness_without(state, graph, v, config.alpha), v))
                .filter(|&(f, _)| f > current)
                .max_by(|a, b| a.0.total_cmp(&b.0));
            match candidate {
                Some((_, v)) => state.remove(v),
                None => break,
            }
        }
    }
    state.to_community()
}

/// Runs LFK over the whole graph: natural communities from random uncovered
/// seeds until every node is covered.
pub fn lfk(graph: &CsrGraph, config: &LfkConfig) -> Cover {
    match lfk_detect(graph, config, &DetectContext::new(config.rng_seed)) {
        Ok(detection) => detection.cover,
        // The default context can never be cancelled — the only failure mode.
        Err(e) => unreachable!("uncancellable LFK run failed: {e}"),
    }
}

/// [`lfk`] under a [`DetectContext`]: the cancellation token is polled once
/// per grown community and a `"natural-community"` progress tick reports
/// covered nodes. Randomness still derives from [`LfkConfig::rng_seed`];
/// detector wrappers copy the context seed into the config first.
pub fn lfk_detect(
    graph: &CsrGraph,
    config: &LfkConfig,
    ctx: &DetectContext,
) -> Result<Detection, DetectError> {
    let start = Instant::now();
    let n = graph.node_count();
    let mut rng = StdRng::seed_from_u64(config.rng_seed);
    let mut covered = vec![false; n];
    let mut covered_count = 0usize;
    let mut uncovered: Vec<u32> = (0..n as u32).collect();
    let mut state = SetState::new(graph);
    let mut communities = Vec::new();
    let mut seeds_tried = 0usize;
    let detection = |communities: Vec<Community>, seeds: usize, complete: bool| Detection {
        cover: Cover::new(n, communities),
        elapsed: start.elapsed(),
        complete,
        iterations: seeds,
        stats: vec![("alpha", format!("{}", config.alpha))],
    };
    while !uncovered.is_empty() {
        if ctx.is_cancelled() {
            return Err(DetectError::cancelled(detection(
                communities,
                seeds_tried,
                false,
            )));
        }
        // Pick a random uncovered node (swap-remove compaction).
        let idx = rng.random_range(0..uncovered.len());
        let seed = uncovered.swap_remove(idx);
        if covered[seed as usize] {
            continue;
        }
        let community = natural_community(graph, &mut state, NodeId(seed), config);
        seeds_tried += 1;
        for &v in community.members() {
            if !covered[v.index()] {
                covered[v.index()] = true;
                covered_count += 1;
            }
        }
        ctx.tick("natural-community", covered_count, Some(n));
        if community.len() >= config.min_community_size {
            communities.push(community);
        }
    }
    Ok(detection(communities, seeds_tried, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    fn two_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((3, 4));
        from_edges(8, edges)
    }

    #[test]
    fn fitness_formula() {
        assert_eq!(fitness(0, 0, 1.0), 0.0);
        assert!((fitness(6, 2, 1.0) - 0.75).abs() < 1e-12);
        assert!((fitness(6, 2, 0.5) - 6.0 / 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn natural_community_recovers_clique() {
        let g = two_cliques();
        let mut st = SetState::new(&g);
        let c = natural_community(&g, &mut st, NodeId(1), &LfkConfig::default());
        let raw: Vec<u32> = c.members().iter().map(|v| v.raw()).collect();
        assert_eq!(raw, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cover_reaches_every_node() {
        let g = two_cliques();
        let cover = lfk(&g, &LfkConfig::default());
        assert!(cover.orphans().is_empty());
        assert!(cover.len() >= 2);
    }

    #[test]
    fn deterministic_for_seed() {
        let g = two_cliques();
        let a = lfk(&g, &LfkConfig::default());
        let b = lfk(&g, &LfkConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn overlap_on_shared_node() {
        // Two triangles sharing node 2.
        let g = from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let cover = lfk(&g, &LfkConfig::default());
        let idx = cover.membership_index();
        assert!(
            !idx[2].is_empty(),
            "shared node must be covered (ideally twice)"
        );
        assert!(cover.orphans().is_empty());
    }

    #[test]
    fn isolated_nodes_become_singletons() {
        let g = from_edges(3, [(0, 1)]);
        let cover = lfk(&g, &LfkConfig::default());
        assert!(cover.orphans().is_empty());
        assert!(cover.communities().iter().any(|c| c.len() == 1));
    }

    #[test]
    fn min_size_filter() {
        let g = from_edges(3, [(0, 1)]);
        let cfg = LfkConfig {
            min_community_size: 2,
            ..Default::default()
        };
        let cover = lfk(&g, &cfg);
        assert!(cover.communities().iter().all(|c| c.len() >= 2));
    }
}
