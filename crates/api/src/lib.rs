//! # oca-api — the detector registry of the OCA reproduction
//!
//! The workspace's algorithms (OCA and the Section V baselines) all
//! implement the object-safe [`CommunityDetector`] trait from
//! [`oca_graph::detect`]; this crate aggregates them behind a
//! string-keyed [`DetectorRegistry`] so drivers — the experiment harness,
//! the CLI, library users — dispatch by name instead of hard-coding a
//! `match` per algorithm. Adding a backend is a single
//! [`DetectorRegistry::register`] call, not a fan-out edit across call
//! sites.
//!
//! Two construction paths per registered algorithm:
//!
//! * [`DetectorSpec::build`] — from string-keyed [`DetectorOptions`]
//!   (e.g. parsed CLI flags), with unknown keys rejected as typed
//!   [`DetectError::UnknownOption`]s;
//! * [`DetectorSpec::experiment`] — the experiment-grade preset of the
//!   paper's evaluation protocol, scaled to a concrete graph.
//!
//! ```
//! use oca_api::{registry, DetectContext, DetectorOptions};
//! use oca_graph::from_edges;
//!
//! let g = from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
//! let detector = registry()
//!     .build("lfk", &DetectorOptions::new().with("alpha", "1.0"))
//!     .unwrap();
//! let detection = detector.detect(&g, &mut DetectContext::new(42)).unwrap();
//! assert!(!detection.cover.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod options;
pub mod recompute;
pub mod registry;
pub mod source;

pub use options::DetectorOptions;
pub use recompute::{registry_recompute, registry_recompute_with};
pub use registry::{registry, DetectorRegistry, DetectorSpec};
pub use source::{GraphSource, LoadedGraph};

// The detection API itself lives in `oca-graph`; re-export it so `oca-api`
// is a one-stop dependency for driving detectors.
pub use oca_graph::detect::{
    CancelToken, CommunityDetector, DetectContext, DetectError, Detection, Progress,
};
