//! Graph sources: one type answering "where does the graph come from".
//!
//! Front ends (the CLI, the serve warm path, the benches) accept either a
//! text edge list (optionally gzip-compressed) that is ingested into RAM,
//! or a prebuilt `.ocg` on-disk graph that is memory-mapped in O(1). A
//! [`GraphSource`] names the choice; [`GraphSource::load`] produces a
//! [`LoadedGraph`] carrying the graph plus everything a driver needs to
//! speak the *input* id space: the relabeling recorded at build time (if
//! any) and the ingestion report (self-loops / duplicates skipped).
//!
//! The id-space contract: detectors always run on the loaded graph's
//! compact ids; covers read from or written to disk are always in input
//! (original) ids. [`LoadedGraph::cover_to_input`] and
//! [`LoadedGraph::cover_to_compact`] are the two crossings, and both are
//! the identity when the source carried no relabeling.

use oca_graph::{
    open_ocg_path, read_edge_list_report_path, Cover, CsrGraph, GraphError, IngestReport, OcgInfo,
    Relabeling,
};
use std::path::{Path, PathBuf};

/// Where a graph comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSource {
    /// A whitespace-separated edge-list file (gzip autodetected),
    /// ingested into an in-RAM CSR at load time.
    EdgeList(PathBuf),
    /// A prebuilt `.ocg` graph, memory-mapped read-only in O(1).
    Ocg(PathBuf),
}

impl GraphSource {
    /// Chooses the source kind from the file extension: `.ocg` maps the
    /// on-disk format, anything else is read as an edge list.
    pub fn from_path<P: AsRef<Path>>(path: P) -> Self {
        let path = path.as_ref().to_path_buf();
        if path.extension().is_some_and(|e| e == "ocg") {
            GraphSource::Ocg(path)
        } else {
            GraphSource::EdgeList(path)
        }
    }

    /// The underlying file path.
    pub fn path(&self) -> &Path {
        match self {
            GraphSource::EdgeList(p) | GraphSource::Ocg(p) => p,
        }
    }

    /// Loads the graph. Edge lists are ingested and built in RAM (the
    /// returned report counts skipped self-loops and duplicates); `.ocg`
    /// files are mapped without reading the payload, with the build-time
    /// relabeling (if recorded) reconstructed so covers can be mapped
    /// between id spaces.
    pub fn load(&self) -> Result<LoadedGraph, GraphError> {
        match self {
            GraphSource::EdgeList(path) => {
                let (graph, ingest) = read_edge_list_report_path(path)?;
                Ok(LoadedGraph {
                    graph,
                    relabeling: None,
                    ingest: Some(ingest),
                    info: None,
                })
            }
            GraphSource::Ocg(path) => {
                let ocg = open_ocg_path(path)?;
                let relabeling = ocg.relabeling().filter(|r| !r.is_identity());
                Ok(LoadedGraph {
                    graph: ocg.graph,
                    relabeling,
                    ingest: None,
                    info: Some(ocg.info),
                })
            }
        }
    }
}

/// A graph ready to detect on, plus the id-space and provenance metadata
/// its source carried.
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The graph, in compact (detection) id space.
    pub graph: CsrGraph,
    /// Compact ↔ input id bijection, when the source was built with
    /// relabeling; `None` means the two spaces coincide.
    pub relabeling: Option<Relabeling>,
    /// Ingestion counts for edge-list sources (`None` for `.ocg`).
    pub ingest: Option<IngestReport>,
    /// On-disk header metadata for `.ocg` sources (`None` for edge
    /// lists). Carries the build-time self-loop/duplicate counts.
    pub info: Option<OcgInfo>,
}

impl LoadedGraph {
    /// True when compact and input ids differ.
    pub fn is_relabeled(&self) -> bool {
        self.relabeling.is_some()
    }

    /// Self-loops skipped while this graph was built (at ingest for edge
    /// lists, recorded in the header for `.ocg`).
    pub fn self_loops(&self) -> u64 {
        self.ingest
            .map(|r| r.self_loops)
            .or_else(|| self.info.as_ref().map(|i| i.self_loops))
            .unwrap_or(0)
    }

    /// Duplicate edges skipped while this graph was built.
    pub fn duplicates(&self) -> u64 {
        self.ingest
            .map(|r| r.duplicates)
            .or_else(|| self.info.as_ref().map(|i| i.duplicates))
            .unwrap_or(0)
    }

    /// Maps a compact node id to the input id space.
    #[inline]
    pub fn node_to_input(&self, v: oca_graph::NodeId) -> oca_graph::NodeId {
        match &self.relabeling {
            Some(r) => r.to_original(v),
            None => v,
        }
    }

    /// Maps an input node id to the compact space.
    #[inline]
    pub fn node_to_compact(&self, v: oca_graph::NodeId) -> oca_graph::NodeId {
        match &self.relabeling {
            Some(r) => r.to_compact(v),
            None => v,
        }
    }

    /// Maps a cover produced on the compact graph back to input ids (the
    /// form that goes to disk or to the user).
    pub fn cover_to_input(&self, cover: &Cover) -> Cover {
        match &self.relabeling {
            Some(r) => r.cover_to_original(cover),
            None => cover.clone(),
        }
    }

    /// Maps a cover expressed in input ids (e.g. a ground truth or a
    /// saved warm-start cover) onto the compact graph.
    pub fn cover_to_compact(&self, cover: &Cover) -> Cover {
        match &self.relabeling {
            Some(r) => r.cover_to_compact(cover),
            None => cover.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::{build_ocg_from_edges, write_edge_list_path, BuildOptions, Community, NodeId};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("oca_api_source_{}_{name}", std::process::id()))
    }

    fn star_edges() -> Vec<(u32, u32)> {
        // Node 3 is the hub, so degree-ordered relabeling is non-trivial.
        vec![(3, 0), (3, 1), (3, 2), (3, 4), (0, 1), (2, 2), (3, 0)]
    }

    #[test]
    fn from_path_picks_by_extension() {
        assert!(matches!(
            GraphSource::from_path("g.ocg"),
            GraphSource::Ocg(_)
        ));
        assert!(matches!(
            GraphSource::from_path("g.edges"),
            GraphSource::EdgeList(_)
        ));
        assert!(matches!(
            GraphSource::from_path("graph.edges.gz"),
            GraphSource::EdgeList(_)
        ));
        assert_eq!(GraphSource::from_path("g.ocg").path(), Path::new("g.ocg"));
    }

    #[test]
    fn edge_list_load_reports_ingest_counts() {
        let path = tmp("ingest.edges");
        std::fs::write(&path, "3 0\n3 1\n3 2\n3 4\n0 1\n2 2\n3 0\n").unwrap();
        let loaded = GraphSource::from_path(&path).load().unwrap();
        assert_eq!(loaded.graph.node_count(), 5);
        assert!(!loaded.is_relabeled());
        assert_eq!(loaded.self_loops(), 1);
        assert_eq!(loaded.duplicates(), 1);
        // Identity crossings.
        assert_eq!(loaded.node_to_compact(NodeId(3)), NodeId(3));
        let cover = Cover::new(5, vec![Community::from_raw([0, 3])]);
        assert_eq!(loaded.cover_to_input(&cover), cover);
        assert_eq!(loaded.cover_to_compact(&cover), cover);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ocg_load_maps_covers_between_id_spaces() {
        let path = tmp("mapped.ocg");
        build_ocg_from_edges(
            star_edges(),
            &path,
            &BuildOptions {
                min_nodes: 5,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let loaded = GraphSource::from_path(&path).load().unwrap();
        assert!(loaded.is_relabeled());
        assert_eq!(loaded.self_loops(), 1);
        assert_eq!(loaded.duplicates(), 1);
        // The hub (input id 3) has the highest degree, so it is compact 0.
        assert_eq!(loaded.node_to_compact(NodeId(3)), NodeId(0));
        assert_eq!(loaded.node_to_input(NodeId(0)), NodeId(3));
        // Round-trip a cover through both crossings.
        let input_cover = Cover::new(5, vec![Community::from_raw([1, 3])]);
        let compact = loaded.cover_to_compact(&input_cover);
        assert!(compact.communities()[0].contains(NodeId(0)));
        assert_eq!(loaded.cover_to_input(&compact), input_cover);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ocg_and_edge_list_agree_on_the_graph() {
        let edges = tmp("agree.edges");
        let ocg = tmp("agree.ocg");
        let loaded_list = {
            let g = oca_graph::from_edges(5, star_edges());
            write_edge_list_path(&g, &edges).unwrap();
            GraphSource::from_path(&edges).load().unwrap()
        };
        build_ocg_from_edges(
            star_edges(),
            &ocg,
            &BuildOptions {
                min_nodes: 5,
                relabel: false,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let loaded_ocg = GraphSource::from_path(&ocg).load().unwrap();
        assert_eq!(loaded_list.graph, loaded_ocg.graph);
        assert!(!loaded_ocg.is_relabeled());
        std::fs::remove_file(&edges).unwrap();
        std::fs::remove_file(&ocg).unwrap();
    }
}
