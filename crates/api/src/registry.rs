//! The string-keyed detector registry.
//!
//! One [`DetectorSpec`] per algorithm variant: a stable name, a summary,
//! the option keys its constructor accepts, a constructor from
//! [`DetectorOptions`], and the experiment-grade preset used by the
//! benchmark harness so every algorithm runs under the paper's protocol
//! without per-algorithm dispatch at the call sites.

use crate::options::DetectorOptions;
use oca::{
    CheckpointConfig, HaltingConfig, LocalConfig, LocalDetector, MoveRule, OcaConfig, OcaDetector,
    ResumePolicy, SearchConfig, SeedStrategy,
};
use oca_baselines::{
    CFinderConfig, CFinderDetector, CFinderFaithfulDetector, LfkConfig, LfkDetector, LpaConfig,
    LpaDetector,
};
use oca_graph::{CommunityDetector, CsrGraph, DetectError};

/// A boxed detector constructor result.
pub type BoxedDetector = Box<dyn CommunityDetector>;

/// One registry entry: how to name, describe and construct a detector.
#[derive(Debug, Clone)]
pub struct DetectorSpec {
    name: &'static str,
    display_name: &'static str,
    summary: &'static str,
    options: &'static [(&'static str, &'static str)],
    build: fn(&DetectorOptions) -> Result<BoxedDetector, DetectError>,
    tuned: fn(&CsrGraph) -> DetectorOptions,
    experiment: fn(&CsrGraph) -> BoxedDetector,
}

impl DetectorSpec {
    /// Creates a spec for registering a custom backend.
    ///
    /// `display_name` must match what the constructed detector reports
    /// via [`CommunityDetector::name`] and be unique across the registry.
    /// `tuned` supplies graph-scaled default options for interactive use
    /// (return an empty set when nothing needs scaling); `experiment` is
    /// the preset of the paper's evaluation protocol.
    pub fn new(
        name: &'static str,
        display_name: &'static str,
        summary: &'static str,
        options: &'static [(&'static str, &'static str)],
        build: fn(&DetectorOptions) -> Result<BoxedDetector, DetectError>,
        tuned: fn(&CsrGraph) -> DetectorOptions,
        experiment: fn(&CsrGraph) -> BoxedDetector,
    ) -> Self {
        DetectorSpec {
            name,
            display_name,
            summary,
            options,
            build,
            tuned,
            experiment,
        }
    }

    /// The registry key (lowercase, stable; e.g. `"cfinder-faithful"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The display name the constructed detector reports (e.g.
    /// `"CFinder-faithful"`); unique across the registry, usable as a
    /// table-row label without constructing anything.
    pub fn display_name(&self) -> &'static str {
        self.display_name
    }

    /// One-line description for listings.
    pub fn summary(&self) -> &'static str {
        self.summary
    }

    /// The option keys the constructor accepts, with help text.
    pub fn options(&self) -> &'static [(&'static str, &'static str)] {
        self.options
    }

    /// The accepted option keys alone.
    pub fn option_keys(&self) -> Vec<&'static str> {
        self.options.iter().map(|(k, _)| *k).collect()
    }

    /// Rejects option keys the constructor does not accept.
    fn check_keys(&self, opts: &DetectorOptions) -> Result<(), DetectError> {
        for key in opts.keys() {
            if !self.options.iter().any(|(k, _)| *k == key) {
                return Err(DetectError::UnknownOption {
                    algorithm: self.name,
                    key: key.to_string(),
                    accepted: self.option_keys(),
                });
            }
        }
        Ok(())
    }

    /// Constructs the detector from parsed options. Unknown keys are
    /// rejected with [`DetectError::UnknownOption`] listing the accepted
    /// set; malformed values surface as [`DetectError::InvalidOption`].
    pub fn build(&self, opts: &DetectorOptions) -> Result<BoxedDetector, DetectError> {
        self.check_keys(opts)?;
        (self.build)(opts)
    }

    /// Like [`DetectorSpec::build`], but starts from the graph-scaled
    /// tuned defaults (e.g. OCA's seed budget proportional to the node
    /// count) and lets `opts` override them key by key — the right
    /// constructor for interactive use on a concrete graph.
    pub fn build_tuned(
        &self,
        graph: &CsrGraph,
        opts: &DetectorOptions,
    ) -> Result<BoxedDetector, DetectError> {
        self.check_keys(opts)?;
        let mut merged = (self.tuned)(graph);
        for (key, value) in opts.pairs() {
            merged.set(key, value); // later values win over tuned defaults
        }
        (self.build)(&merged)
    }

    /// Constructs the experiment-grade preset for `graph` — the settings
    /// the paper's evaluation protocol uses, scaled to the graph size.
    pub fn experiment(&self, graph: &CsrGraph) -> BoxedDetector {
        (self.experiment)(graph)
    }
}

/// The set of registered detectors, keyed by name.
#[derive(Debug, Clone, Default)]
pub struct DetectorRegistry {
    specs: Vec<DetectorSpec>,
}

impl DetectorRegistry {
    /// An empty registry (use [`registry`] for the built-in set).
    pub fn new() -> Self {
        DetectorRegistry::default()
    }

    /// Registers a spec; a spec with the same name is replaced, so
    /// downstream crates can override built-ins.
    pub fn register(&mut self, spec: DetectorSpec) {
        match self.specs.iter_mut().find(|s| s.name == spec.name) {
            Some(existing) => *existing = spec,
            None => self.specs.push(spec),
        }
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.specs.iter().map(|s| s.name).collect()
    }

    /// Iterates over the registered specs.
    pub fn iter(&self) -> impl Iterator<Item = &DetectorSpec> {
        self.specs.iter()
    }

    /// Number of registered detectors.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Looks a spec up by name; unknown names get a typed error listing
    /// what is registered.
    pub fn get(&self, name: &str) -> Result<&DetectorSpec, DetectError> {
        self.specs
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| DetectError::UnknownAlgorithm {
                name: name.to_string(),
                known: self.names(),
            })
    }

    /// Shorthand for `get(name)?.build(opts)`.
    pub fn build(&self, name: &str, opts: &DetectorOptions) -> Result<BoxedDetector, DetectError> {
        self.get(name)?.build(opts)
    }
}

/// The built-in registry: OCA and every baseline of the paper's Section V
/// (plus LPA), under stable lowercase names.
pub fn registry() -> DetectorRegistry {
    let mut reg = DetectorRegistry::new();
    reg.register(DetectorSpec::new(
        "oca",
        "OCA",
        "the paper's algorithm: greedy fitness ascents from random seeds (Sections II-IV)",
        &[
            (
                "threads",
                "worker threads; never changes the cover, only wall-clock time",
            ),
            (
                "batch",
                "tickets per scheduling round; part of the deterministic schedule",
            ),
            ("max-seeds", "hard cap on seeds tried"),
            ("target-coverage", "stop at this covered-node fraction"),
            ("stagnation", "stop after this many fruitless seeds"),
            (
                "stagnation-streak",
                "stop after this many consecutive rejected (duplicate or \
                 too-small) seeds; ends hub-graph runs that can only rediscover",
            ),
            (
                "seeds-per-covered",
                "seed-efficiency budget: stop once seeds tried exceeds \
                 2 x stagnation + this x covered nodes; 0 disables — caps \
                 hub-graph runs whose coverage saturates",
            ),
            (
                "merge-threshold",
                "merge communities with rho >= this, or 'none'",
            ),
            ("min-size", "discard communities smaller than this"),
            ("orphans", "true = assign every uncovered node afterwards"),
            (
                "fixed-c",
                "bypass the spectral c = -1/lambda_min with a fixed value",
            ),
            (
                "relabel",
                "true = ascend on a degree-ordered relabeled copy (cache \
                 locality); covers are still reported in original ids",
            ),
            (
                "move-rule",
                "'greedy' (the paper's strictly-improving rule) or \
                 'penalized' (tabu + repeat-add penalties keep exploring \
                 past plateaus and return the best set seen)",
            ),
            (
                "ascent-budget",
                "per-ascent move budget as a multiple of the initial set \
                 size; stops hub ascents from crawling whole cores; 0 \
                 disables (the library default)",
            ),
            (
                "plateau-moves",
                "penalized rule: moves without a new best fitness before \
                 the ascent returns its best-so-far set",
            ),
            (
                "tabu-tenure",
                "penalized rule: moves a just-removed node stays un-addable",
            ),
            (
                "hub-prune-degree",
                "skip already-covered nodes of at least this degree as add \
                 candidates (0 disables); uses the round-start coverage \
                 snapshot, so covers stay identical at any thread count",
            ),
            (
                "checkpoint-path",
                "persist round-boundary driver state to this .ockpt file \
                 (atomic writes); a resumed chain reproduces the \
                 uninterrupted cover bit for bit",
            ),
            (
                "checkpoint-every-rounds",
                "rounds between checkpoint writes (default 1; larger \
                 trades redo work for write overhead)",
            ),
            (
                "checkpoint-resume",
                "'fresh' (ignore any existing checkpoint), 'strict' \
                 (resume; refuse damaged or mismatched files with a typed \
                 error) or 'salvage' (resume; discard bad files and start \
                 over — for unattended restart loops)",
            ),
        ],
        build_oca,
        tuned_oca,
        experiment_oca,
    ));
    reg.register(DetectorSpec::new(
        "lfk",
        "LFK",
        "local fitness maximization of Lancichinetti, Fortunato & Kertesz (ref [8])",
        &[
            ("alpha", "resolution exponent (the paper uses 1)"),
            ("min-size", "discard natural communities smaller than this"),
        ],
        build_lfk,
        no_tuning,
        experiment_lfk,
    ));
    reg.register(DetectorSpec::new(
        "cfinder",
        "CFinder",
        "k-clique percolation of Palla et al. (ref [12]) with the k = 3 triangle shortcut",
        CFINDER_OPTIONS,
        build_cfinder,
        no_tuning,
        experiment_cfinder,
    ));
    reg.register(DetectorSpec::new(
        "cfinder-faithful",
        "CFinder-faithful",
        "CFinder via maximal-clique enumeration, the original tool's cost profile (Figs. 5-6)",
        CFINDER_OPTIONS,
        build_cfinder_faithful,
        no_tuning,
        experiment_cfinder_faithful,
    ));
    reg.register(DetectorSpec::new(
        "oca-local",
        "OCA-local",
        "query-centric variant: one seeded ascent answers 'which community contains v?'",
        &[
            (
                "seed-node",
                "the query node the ascent grows from; unset derives one \
                 from the run seed (conformance harnesses)",
            ),
            (
                "seed-strategy",
                "'singleton', 'neighborhood' (the paper's random inclusion) \
                 or 'ball' (the full 1-hop neighborhood)",
            ),
            (
                "fixed-c",
                "bypass the spectral c = -1/lambda_min with a fixed value",
            ),
            (
                "ascent-budget",
                "per-ascent move budget as a multiple of the initial set \
                 size; 0 disables",
            ),
            (
                "move-rule",
                "'greedy' (strictly improving) or 'penalized' (tabu rule \
                 returning the best set seen)",
            ),
        ],
        build_oca_local,
        tuned_oca_local,
        experiment_oca_local,
    ));
    reg.register(DetectorSpec::new(
        "lpa",
        "LPA",
        "label propagation of Raghavan et al., a fast non-overlapping yardstick",
        &[("max-sweeps", "maximum sweeps over all nodes")],
        build_lpa,
        no_tuning,
        experiment_lpa,
    ));
    reg
}

/// Tuned defaults for algorithms that need no graph-dependent scaling.
fn no_tuning(_graph: &CsrGraph) -> DetectorOptions {
    DetectorOptions::new()
}

/// OCA's interactive defaults scale the halting criteria to the graph
/// (the library defaults target mid-sized graphs; a fixed 10k seed budget
/// would silently truncate runs on large ones) and use the machine's
/// cores: the ticket-ordered driver produces the same cover at any thread
/// count, so parallelism is a safe default.
fn tuned_oca(graph: &CsrGraph) -> DetectorOptions {
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get().min(8));
    DetectorOptions::new()
        .with("threads", &threads.to_string())
        .with("max-seeds", &(4 * graph.node_count()).max(100).to_string())
        .with("target-coverage", "0.99")
        .with("stagnation", "200")
        .with("stagnation-streak", "500")
        .with("seeds-per-covered", "0.15")
        .with("ascent-budget", "64")
        .with("hub-prune-degree", &hub_prune_degree(graph).to_string())
}

/// The covered-hub pruning threshold of the tuned and experiment presets:
/// `max(64, 8 × average degree)`. On LFR-style benches the maximum degree
/// sits below this, so pruning never fires and fig2 quality is untouched;
/// on scale-free graphs it singles out exactly the mega-hubs whose
/// re-exploration dominates ascent time (DESIGN.md §2a).
fn hub_prune_degree(graph: &CsrGraph) -> usize {
    let n = graph.node_count().max(1);
    let avg_degree = 2 * graph.edge_count() / n;
    (8 * avg_degree).max(64)
}

const CFINDER_OPTIONS: &[(&str, &str)] = &[
    ("k", "clique size (the paper uses 3)"),
    ("max-cliques", "cap on enumerated cliques, or 'none'"),
];

fn build_oca(opts: &DetectorOptions) -> Result<BoxedDetector, DetectError> {
    let defaults = OcaConfig::default();
    let merge_threshold = match opts.get("merge-threshold") {
        None => defaults.merge_threshold,
        Some("none") => None,
        Some(_) => Some(opts.get_or("merge-threshold", 0.5)?),
    };
    let mut config = OcaConfig {
        threads: opts.get_or("threads", defaults.threads)?,
        batch: opts.get_or("batch", defaults.batch)?,
        halting: HaltingConfig {
            max_seeds: opts.get_or("max-seeds", defaults.halting.max_seeds)?,
            target_coverage: opts.get_or("target-coverage", defaults.halting.target_coverage)?,
            stagnation_limit: opts.get_or("stagnation", defaults.halting.stagnation_limit)?,
            stagnation_streak: opts
                .get_or("stagnation-streak", defaults.halting.stagnation_streak)?,
            seeds_per_covered: opts
                .get_or("seeds-per-covered", defaults.halting.seeds_per_covered)?,
        },
        merge_threshold,
        min_community_size: opts.get_or("min-size", defaults.min_community_size)?,
        assign_orphans: opts.get_or("orphans", defaults.assign_orphans)?,
        relabel: opts.get_or("relabel", defaults.relabel)?,
        search: SearchConfig {
            budget_factor: opts.get_or("ascent-budget", defaults.search.budget_factor)?,
            plateau_moves: opts.get_or("plateau-moves", defaults.search.plateau_moves)?,
            tabu_tenure: opts.get_or("tabu-tenure", defaults.search.tabu_tenure)?,
            prune_hub_degree: opts.get_or("hub-prune-degree", defaults.search.prune_hub_degree)?,
            move_rule: match opts.get("move-rule") {
                None => defaults.search.move_rule,
                Some("greedy") => MoveRule::Greedy,
                Some("penalized") => MoveRule::Penalized,
                Some(other) => {
                    return Err(DetectError::InvalidOption {
                        key: "move-rule".to_string(),
                        value: other.to_string(),
                        message: "expected 'greedy' or 'penalized'".to_string(),
                    })
                }
            },
            ..defaults.search
        },
        ..defaults
    };
    if let Some(c) = opts.get_parsed::<f64>("fixed-c")? {
        config.c = oca::CStrategy::Fixed(c);
    }
    if let Some(path) = opts.get("checkpoint-path") {
        let resume = match opts.get("checkpoint-resume") {
            None | Some("fresh") => ResumePolicy::Fresh,
            Some("strict") => ResumePolicy::Strict,
            Some("salvage") => ResumePolicy::Salvage,
            Some(other) => {
                return Err(DetectError::InvalidOption {
                    key: "checkpoint-resume".to_string(),
                    value: other.to_string(),
                    message: "expected 'fresh', 'strict' or 'salvage'".to_string(),
                })
            }
        };
        config.checkpoint = Some(CheckpointConfig {
            resume,
            every_rounds: opts.get_or("checkpoint-every-rounds", 1u64)?,
            ..CheckpointConfig::at(path)
        });
    } else if opts.get("checkpoint-every-rounds").is_some()
        || opts.get("checkpoint-resume").is_some()
    {
        return Err(DetectError::InvalidOption {
            key: "checkpoint-path".to_string(),
            value: String::new(),
            message: "checkpoint-every-rounds / checkpoint-resume need checkpoint-path".to_string(),
        });
    }
    Ok(Box::new(OcaDetector::new(config)?))
}

/// Experiment-grade OCA: seed budget scaled to the graph, merging left to
/// the shared postprocessing step (the paper applies it to all algorithms).
/// Like the tuned preset it runs with the scaled ascent budget and
/// covered-hub pruning — on the fig2 protocol neither binds (LFR ascents
/// converge well under the budget and no LFR node reaches the hub
/// threshold), while hub graphs drop from hours to seconds. The greedy
/// move rule stays the default: benchmarked against `penalized` it gives
/// the same θ/ω at lower cost, so the penalized rule remains opt-in.
fn experiment_oca(graph: &CsrGraph) -> BoxedDetector {
    let config = OcaConfig {
        halting: HaltingConfig {
            max_seeds: (4 * graph.node_count()).max(100),
            target_coverage: 0.99,
            stagnation_limit: 200,
            stagnation_streak: 500,
            seeds_per_covered: 0.15,
        },
        search: SearchConfig {
            budget_factor: 64.0,
            prune_hub_degree: hub_prune_degree(graph),
            ..Default::default()
        },
        merge_threshold: None, // shared postprocessing applies it
        ..Default::default()
    };
    Box::new(OcaDetector::new(config).expect("experiment preset is valid"))
}

fn build_oca_local(opts: &DetectorOptions) -> Result<BoxedDetector, DetectError> {
    let defaults = LocalConfig::default();
    let mut config = LocalConfig {
        query: opts.get_parsed::<u32>("seed-node")?.map(oca_graph::NodeId),
        seed_strategy: match opts.get("seed-strategy") {
            None => defaults.seed_strategy,
            Some("singleton") => SeedStrategy::Singleton,
            Some("neighborhood") => SeedStrategy::default(),
            Some("ball") => SeedStrategy::Ball { radius: 1 },
            Some(other) => {
                return Err(DetectError::InvalidOption {
                    key: "seed-strategy".to_string(),
                    value: other.to_string(),
                    message: "expected 'singleton', 'neighborhood' or 'ball'".to_string(),
                })
            }
        },
        search: SearchConfig {
            budget_factor: opts.get_or("ascent-budget", defaults.search.budget_factor)?,
            move_rule: match opts.get("move-rule") {
                None => defaults.search.move_rule,
                Some("greedy") => MoveRule::Greedy,
                Some("penalized") => MoveRule::Penalized,
                Some(other) => {
                    return Err(DetectError::InvalidOption {
                        key: "move-rule".to_string(),
                        value: other.to_string(),
                        message: "expected 'greedy' or 'penalized'".to_string(),
                    })
                }
            },
            ..defaults.search
        },
        ..defaults
    };
    if let Some(c) = opts.get_parsed::<f64>("fixed-c")? {
        config.c = oca::CStrategy::Fixed(c);
    }
    Ok(Box::new(LocalDetector::new(config)?))
}

/// The tuned local preset mirrors the serving default: a scaled move
/// budget so a hub query cannot stall a worker.
fn tuned_oca_local(_graph: &CsrGraph) -> DetectorOptions {
    DetectorOptions::new().with("ascent-budget", "64")
}

fn experiment_oca_local(_graph: &CsrGraph) -> BoxedDetector {
    let config = LocalConfig {
        search: SearchConfig {
            budget_factor: 64.0,
            ..Default::default()
        },
        ..Default::default()
    };
    Box::new(LocalDetector::new(config).expect("experiment preset is valid"))
}

fn build_lfk(opts: &DetectorOptions) -> Result<BoxedDetector, DetectError> {
    let defaults = LfkConfig::default();
    let config = LfkConfig {
        alpha: opts.get_or("alpha", defaults.alpha)?,
        min_community_size: opts.get_or("min-size", defaults.min_community_size)?,
        ..defaults
    };
    Ok(Box::new(LfkDetector::new(config)?))
}

fn experiment_lfk(_graph: &CsrGraph) -> BoxedDetector {
    let config = LfkConfig {
        min_community_size: 2,
        ..Default::default()
    };
    Box::new(LfkDetector::new(config).expect("experiment preset is valid"))
}

fn cfinder_config(opts: &DetectorOptions) -> Result<CFinderConfig, DetectError> {
    let defaults = CFinderConfig::default();
    let max_cliques = match opts.get("max-cliques") {
        None => defaults.max_cliques,
        Some("none") => None,
        Some(_) => Some(opts.get_or("max-cliques", 2_000_000)?),
    };
    Ok(CFinderConfig {
        k: opts.get_or("k", defaults.k)?,
        max_cliques,
        ..defaults
    })
}

fn build_cfinder(opts: &DetectorOptions) -> Result<BoxedDetector, DetectError> {
    Ok(Box::new(CFinderDetector::new(cfinder_config(opts)?)?))
}

fn experiment_cfinder(_graph: &CsrGraph) -> BoxedDetector {
    Box::new(CFinderDetector::default())
}

fn build_cfinder_faithful(opts: &DetectorOptions) -> Result<BoxedDetector, DetectError> {
    Ok(Box::new(CFinderFaithfulDetector::new(cfinder_config(
        opts,
    )?)?))
}

fn experiment_cfinder_faithful(_graph: &CsrGraph) -> BoxedDetector {
    Box::new(CFinderFaithfulDetector::default())
}

fn build_lpa(opts: &DetectorOptions) -> Result<BoxedDetector, DetectError> {
    let defaults = LpaConfig::default();
    let config = LpaConfig {
        max_sweeps: opts.get_or("max-sweeps", defaults.max_sweeps)?,
        ..defaults
    };
    Ok(Box::new(LpaDetector::new(config)?))
}

fn experiment_lpa(_graph: &CsrGraph) -> BoxedDetector {
    Box::new(LpaDetector::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::{from_edges, DetectContext};

    fn toy() -> CsrGraph {
        let mut edges = Vec::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((4, 5));
        from_edges(10, edges)
    }

    #[test]
    fn builtin_registry_has_all_six_variants() {
        let reg = registry();
        assert_eq!(
            reg.names(),
            vec![
                "oca",
                "lfk",
                "cfinder",
                "cfinder-faithful",
                "oca-local",
                "lpa"
            ]
        );
        assert_eq!(reg.len(), 6);
        assert!(!reg.is_empty());
    }

    #[test]
    fn oca_local_options_flow_into_the_config() {
        let g = toy();
        let reg = registry();
        // A pinned query answers with the community containing it.
        let det = reg
            .build(
                "oca-local",
                &DetectorOptions::new()
                    .with("seed-node", "7")
                    .with("fixed-c", "0.9")
                    .with("seed-strategy", "ball"),
            )
            .unwrap();
        assert_eq!(det.name(), "OCA-local");
        let d = det.detect(&g, &mut DetectContext::new(11)).unwrap();
        assert_eq!(d.cover.len(), 1);
        assert!(d.cover.communities()[0].contains(oca_graph::NodeId(7)));
        // Bad strategy and move-rule values are typed option errors.
        assert!(matches!(
            reg.build(
                "oca-local",
                &DetectorOptions::new().with("seed-strategy", "global")
            ),
            Err(DetectError::InvalidOption { .. })
        ));
        assert!(matches!(
            reg.build(
                "oca-local",
                &DetectorOptions::new().with("move-rule", "anneal")
            ),
            Err(DetectError::InvalidOption { .. })
        ));
        // An out-of-range fixed c is a typed config error.
        assert!(matches!(
            reg.build("oca-local", &DetectorOptions::new().with("fixed-c", "1.5")),
            Err(DetectError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn display_names_are_unique_and_match_the_detectors() {
        let g = toy();
        let reg = registry();
        let mut names: Vec<&str> = Vec::new();
        for spec in reg.iter() {
            assert_eq!(
                spec.experiment(&g).name(),
                spec.display_name(),
                "{}: spec display name out of sync with the detector",
                spec.name()
            );
            names.push(spec.display_name());
        }
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "ambiguous display names");
    }

    #[test]
    fn build_tuned_scales_oca_to_the_graph_and_honours_overrides() {
        let g = toy();
        let spec = registry();
        let spec = spec.get("oca").unwrap();
        // Tuned defaults alone build fine and run deterministically.
        let det = spec.build_tuned(&g, &DetectorOptions::new()).unwrap();
        assert!(!det
            .detect(&g, &mut DetectContext::new(2))
            .unwrap()
            .cover
            .is_empty());
        // User options still override the tuned defaults and are validated.
        assert!(spec
            .build_tuned(&g, &DetectorOptions::new().with("max-seeds", "1"))
            .is_ok());
        assert!(matches!(
            spec.build_tuned(&g, &DetectorOptions::new().with("max-seed", "1")),
            Err(DetectError::UnknownOption { .. })
        ));
    }

    #[test]
    fn every_entry_builds_and_detects_with_defaults() {
        let g = toy();
        let reg = registry();
        for spec in reg.iter() {
            let det = spec.build(&DetectorOptions::new()).unwrap();
            let d = det.detect(&g, &mut DetectContext::new(3)).unwrap();
            assert!(!d.cover.is_empty(), "{} found nothing", spec.name());
        }
    }

    #[test]
    fn unknown_algorithm_lists_known_names() {
        let err = registry().get("nope").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("nope") && msg.contains("cfinder-faithful"));
    }

    #[test]
    fn unknown_option_lists_accepted_keys() {
        let err = registry()
            .build("lpa", &DetectorOptions::new().with("thread", "4"))
            .unwrap_err();
        match &err {
            DetectError::UnknownOption { key, accepted, .. } => {
                assert_eq!(key, "thread");
                assert_eq!(accepted, &vec!["max-sweeps"]);
            }
            other => panic!("expected UnknownOption, got {other}"),
        }
    }

    #[test]
    fn options_flow_into_the_config() {
        let g = toy();
        let det = registry()
            .build("cfinder", &DetectorOptions::new().with("k", "2"))
            .unwrap();
        let d = det.detect(&g, &mut DetectContext::new(0)).unwrap();
        // k = 2 percolation = connected components: the toy graph has one.
        assert_eq!(d.cover.len(), 1);
    }

    #[test]
    fn oca_thread_option_never_changes_the_cover() {
        let g = toy();
        let reg = registry();
        let opts = |threads: &str| {
            DetectorOptions::new()
                .with("batch", "16")
                .with("threads", threads)
        };
        let a = reg
            .build("oca", &opts("1"))
            .unwrap()
            .detect(&g, &mut DetectContext::new(5))
            .unwrap();
        let b = reg
            .build("oca", &opts("4"))
            .unwrap()
            .detect(&g, &mut DetectContext::new(5))
            .unwrap();
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.iterations, b.iterations);
        // `batch` is part of the schedule, so zero is a typed config error.
        assert!(matches!(
            reg.build("oca", &DetectorOptions::new().with("batch", "0")),
            Err(DetectError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn malformed_and_invalid_option_values_are_typed() {
        let reg = registry();
        assert!(matches!(
            reg.build("oca", &DetectorOptions::new().with("threads", "many")),
            Err(DetectError::InvalidOption { .. })
        ));
        assert!(matches!(
            reg.build("oca", &DetectorOptions::new().with("fixed-c", "1.5")),
            Err(DetectError::InvalidConfig { .. })
        ));
        assert!(matches!(
            reg.build("cfinder", &DetectorOptions::new().with("k", "1")),
            Err(DetectError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn hub_search_options_flow_into_the_config_and_are_validated() {
        let reg = registry();
        // All five options build and detect.
        let det = reg
            .build(
                "oca",
                &DetectorOptions::new()
                    .with("move-rule", "penalized")
                    .with("ascent-budget", "8")
                    .with("plateau-moves", "16")
                    .with("tabu-tenure", "4")
                    .with("hub-prune-degree", "32")
                    .with("max-seeds", "50"),
            )
            .unwrap();
        let g = toy();
        assert!(!det
            .detect(&g, &mut DetectContext::new(2))
            .unwrap()
            .cover
            .is_empty());
        // A bad move rule is a typed option error naming the choices.
        match reg
            .build("oca", &DetectorOptions::new().with("move-rule", "anneal"))
            .unwrap_err()
        {
            DetectError::InvalidOption { key, message, .. } => {
                assert_eq!(key, "move-rule");
                assert!(message.contains("penalized"));
            }
            other => panic!("expected InvalidOption, got {other}"),
        }
        // A malformed budget is typed; a negative one is a config error.
        assert!(matches!(
            reg.build("oca", &DetectorOptions::new().with("ascent-budget", "lots")),
            Err(DetectError::InvalidOption { .. })
        ));
        assert!(matches!(
            reg.build("oca", &DetectorOptions::new().with("ascent-budget", "-2")),
            Err(DetectError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn tuned_preset_enables_budget_and_hub_pruning() {
        let g = toy();
        let opts = tuned_oca(&g);
        assert_eq!(opts.get("ascent-budget"), Some("64"));
        // The toy graph's average degree is small, so the floor applies.
        assert_eq!(opts.get("hub-prune-degree"), Some("64"));
        assert_eq!(hub_prune_degree(&g), 64);
        // A denser graph scales with its average degree: a 41-clique has
        // average degree 40, so the threshold is 8 × 40 = 320.
        let k = 41u32;
        let mut edges = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                edges.push((i, j));
            }
        }
        let dense = from_edges(k as usize, edges);
        assert_eq!(hub_prune_degree(&dense), 320);
    }

    #[test]
    fn checkpoint_options_flow_into_the_config_and_are_validated() {
        let g = toy();
        let reg = registry();
        let dir = std::env::temp_dir().join(format!("oca_reg_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reg.ockpt");
        let det = reg
            .build(
                "oca",
                &DetectorOptions::new()
                    .with("checkpoint-path", path.to_str().unwrap())
                    .with("checkpoint-every-rounds", "2")
                    .with("checkpoint-resume", "salvage")
                    .with("max-seeds", "50"),
            )
            .unwrap();
        // A checkpointed detection matches a plain one and reports the
        // ckpt_* telemetry namespace.
        let plain = reg
            .build("oca", &DetectorOptions::new().with("max-seeds", "50"))
            .unwrap()
            .detect(&g, &mut DetectContext::new(5))
            .unwrap();
        let d = det.detect(&g, &mut DetectContext::new(5)).unwrap();
        assert_eq!(d.cover, plain.cover);
        assert!(d.stats.iter().any(|(k, _)| *k == "ckpt_rounds"));
        assert!(!plain.stats.iter().any(|(k, _)| *k == "ckpt_rounds"));
        // Bad policy values and orphaned sub-options are typed errors.
        assert!(matches!(
            reg.build(
                "oca",
                &DetectorOptions::new()
                    .with("checkpoint-path", "x.ockpt")
                    .with("checkpoint-resume", "hope"),
            ),
            Err(DetectError::InvalidOption { .. })
        ));
        assert!(matches!(
            reg.build(
                "oca",
                &DetectorOptions::new().with("checkpoint-every-rounds", "2"),
            ),
            Err(DetectError::InvalidOption { .. })
        ));
    }

    #[test]
    fn merge_threshold_none_is_accepted() {
        let det = registry()
            .build(
                "oca",
                &DetectorOptions::new()
                    .with("merge-threshold", "none")
                    .with("max-seeds", "50"),
            )
            .unwrap();
        assert_eq!(det.name(), "OCA");
    }

    #[test]
    fn registration_replaces_same_name() {
        let mut reg = registry();
        let before = reg.len();
        reg.register(DetectorSpec::new(
            "lpa",
            "LPA",
            "override",
            &[],
            build_lpa,
            no_tuning,
            experiment_lpa,
        ));
        assert_eq!(reg.len(), before);
        assert_eq!(reg.get("lpa").unwrap().summary(), "override");
    }
}
