//! String-keyed detector options.
//!
//! Registry constructors are driven by whatever front end parsed the
//! options — CLI flags, config files, HTTP query strings — so the common
//! currency is string key–value pairs with typed, fallible accessors.

use oca_graph::DetectError;
use std::str::FromStr;

/// An ordered `key → value` option set (last occurrence of a key wins,
/// matching CLI semantics).
#[derive(Debug, Clone, Default)]
pub struct DetectorOptions {
    pairs: Vec<(String, String)>,
}

impl DetectorOptions {
    /// An empty option set.
    pub fn new() -> Self {
        DetectorOptions::default()
    }

    /// Builder-style insertion.
    pub fn with(mut self, key: &str, value: &str) -> Self {
        self.set(key, value);
        self
    }

    /// Inserts one option (later values shadow earlier ones for the same
    /// key).
    pub fn set(&mut self, key: &str, value: &str) {
        self.pairs.push((key.to_string(), value.to_string()));
    }

    /// True when no option was set.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// All keys, in insertion order (duplicates included).
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.pairs.iter().map(|(k, _)| k.as_str())
    }

    /// All `(key, value)` pairs, in insertion order.
    pub fn pairs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.pairs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// The raw value for `key` (last occurrence), if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses the value for `key` as `T`; absent keys yield `Ok(None)`,
    /// malformed values a typed [`DetectError::InvalidOption`].
    pub fn get_parsed<T: FromStr>(&self, key: &str) -> Result<Option<T>, DetectError> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| DetectError::InvalidOption {
                    key: key.to_string(),
                    value: raw.to_string(),
                    message: format!("expected a {}", std::any::type_name::<T>()),
                }),
        }
    }

    /// Like [`DetectorOptions::get_parsed`] with a default for absent keys.
    pub fn get_or<T: FromStr>(&self, key: &str, default: T) -> Result<T, DetectError> {
        Ok(self.get_parsed(key)?.unwrap_or(default))
    }
}

impl<K: Into<String>, V: Into<String>> FromIterator<(K, V)> for DetectorOptions {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        DetectorOptions {
            pairs: iter
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_occurrence_wins() {
        let opts = DetectorOptions::new().with("k", "3").with("k", "4");
        assert_eq!(opts.get("k"), Some("4"));
        assert_eq!(opts.get_parsed::<usize>("k").unwrap(), Some(4));
    }

    #[test]
    fn absent_keys_yield_defaults() {
        let opts = DetectorOptions::new();
        assert!(opts.is_empty());
        assert_eq!(opts.get("k"), None);
        assert_eq!(opts.get_parsed::<usize>("k").unwrap(), None);
        assert_eq!(opts.get_or("k", 7usize).unwrap(), 7);
    }

    #[test]
    fn malformed_values_are_typed_errors() {
        let opts = DetectorOptions::new().with("threads", "eight");
        let err = opts.get_parsed::<usize>("threads").unwrap_err();
        match err {
            DetectError::InvalidOption { key, value, .. } => {
                assert_eq!(key, "threads");
                assert_eq!(value, "eight");
            }
            other => panic!("expected InvalidOption, got {other}"),
        }
    }

    #[test]
    fn collects_from_pairs() {
        let opts: DetectorOptions = [("alpha", "1.5"), ("min-size", "2")].into_iter().collect();
        assert_eq!(opts.get_or("alpha", 0.0f64).unwrap(), 1.5);
        assert_eq!(opts.keys().count(), 2);
    }
}
