//! Registry-backed recompute closures for the serving layer.
//!
//! `oca-serve` periodically rebuilds its cover through a plain closure
//! (`Fn(&CsrGraph, u64, &CancelToken) -> Result<Cover, String>`), so it
//! does not depend on this crate; this module is the other direction — a
//! one-liner for drivers (the CLI `serve` command, benchmarks) that want
//! that closure to run a registered algorithm's tuned preset. Errors come
//! back as strings because the serving layer only logs and counts them:
//! a failing recompute degrades the server, it never stops it.

use crate::options::DetectorOptions;
use crate::registry::registry;
use oca_graph::{CancelToken, Cover, CsrGraph, DetectContext};

/// A recompute closure running `algorithm`'s tuned preset: each round
/// resolves the algorithm from the global [`registry`], builds the
/// detector scaled to `graph`, and detects under `seed` with `cancel`
/// wired into the context (so server shutdown aborts the round promptly).
/// Every failure — unknown algorithm, construction, detection, and
/// cancellation — is rendered as the `Err` message.
pub fn registry_recompute(
    algorithm: impl Into<String>,
) -> impl Fn(&CsrGraph, u64, &CancelToken) -> Result<Cover, String> + Send + Sync + 'static {
    registry_recompute_with(algorithm, DetectorOptions::new())
}

/// [`registry_recompute`] with extra options layered over the tuned
/// preset each round — how the CLI arms recompute checkpointing
/// (`checkpoint-path` + a salvage resume policy) so a restarted server
/// picks a long recompute up mid-way instead of starting over.
pub fn registry_recompute_with(
    algorithm: impl Into<String>,
    options: DetectorOptions,
) -> impl Fn(&CsrGraph, u64, &CancelToken) -> Result<Cover, String> + Send + Sync + 'static {
    let algorithm = algorithm.into();
    move |graph, seed, cancel| {
        let reg = registry();
        let spec = reg
            .get(&algorithm)
            .map_err(|e| format!("resolving {algorithm:?}: {e}"))?;
        let detector = spec
            .build_tuned(graph, &options)
            .map_err(|e| format!("building {algorithm:?}: {e}"))?;
        let mut ctx = DetectContext::new(seed).with_cancel(cancel.clone());
        detector
            .detect(graph, &mut ctx)
            .map(|d| d.cover)
            .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    #[test]
    fn recompute_runs_the_named_algorithm() {
        let g = from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let recompute = registry_recompute("oca");
        let cover = recompute(&g, 42, &CancelToken::new()).unwrap();
        assert_eq!(cover.node_count(), 5);
        assert!(!cover.is_empty());
        // Same seed, same cover — the closure is deterministic.
        let again = recompute(&g, 42, &CancelToken::new()).unwrap();
        assert_eq!(again, cover);
    }

    #[test]
    fn checkpointed_recompute_matches_plain_and_spends_the_file() {
        let g = from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let dir = std::env::temp_dir().join(format!("oca_recompute_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("recompute.ockpt");
        let plain = registry_recompute("oca")(&g, 42, &CancelToken::new()).unwrap();
        let recompute = registry_recompute_with(
            "oca",
            DetectorOptions::new()
                .with("checkpoint-path", path.to_str().unwrap())
                .with("checkpoint-resume", "salvage"),
        );
        let cover = recompute(&g, 42, &CancelToken::new()).unwrap();
        assert_eq!(cover, plain, "checkpointing must not change the cover");
        assert!(!path.exists(), "a completed round spends its checkpoint");
        // A stale/corrupt file cannot wedge the next round under salvage.
        std::fs::write(&path, b"garbage").unwrap();
        assert_eq!(recompute(&g, 42, &CancelToken::new()).unwrap(), plain);
        assert!(!path.exists());
    }

    #[test]
    fn unknown_algorithm_is_an_error_message_not_a_panic() {
        let g = from_edges(3, [(0, 1), (1, 2)]);
        let err = registry_recompute("no-such-thing")(&g, 1, &CancelToken::new()).unwrap_err();
        assert!(err.contains("no-such-thing"), "{err}");
    }

    #[test]
    fn cancelled_rounds_surface_as_errors() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        let token = CancelToken::new();
        token.cancel();
        assert!(registry_recompute("oca")(&g, 7, &token).is_err());
    }
}
