//! Generator throughput: the datasets of Table I must be cheap to produce
//! relative to the algorithms consuming them.

use criterion::{criterion_group, criterion_main, Criterion};
use oca_gen::{barabasi_albert, daisy_tree, lfr, rmat, DaisyParams, LfrParams, RmatParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_generators(c: &mut Criterion) {
    c.bench_function("gen/lfr_2000", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            lfr(&LfrParams::small(2000, 0.3, seed)).graph.edge_count()
        })
    });
    c.bench_function("gen/daisy_tree_2000", |b| {
        let params = DaisyParams::default_shape(100);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            daisy_tree(&params, 19, 0.05, seed).graph.edge_count()
        })
    });
    c.bench_function("gen/rmat_s14", |b| {
        let params = RmatParams::graph500(14, 8);
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| rmat(&params, &mut rng).edge_count())
    });
    c.bench_function("gen/ba_5000", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| barabasi_albert(5000, 5, &mut rng).edge_count())
    });
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
