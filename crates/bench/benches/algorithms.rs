//! End-to-end algorithm benchmarks on a fixed LFR instance — the criterion
//! companion to the Fig. 5/6 wall-clock binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use oca_bench::run_algorithm;
use oca_gen::{daisy_tree, lfr, DaisyParams, LfrParams};

fn bench_algorithms(c: &mut Criterion) {
    let lfr_bench = lfr(&LfrParams::small(1000, 0.3, 21));
    let daisy_bench = daisy_tree(&DaisyParams::default_shape(100), 9, 0.05, 22);

    let mut group = c.benchmark_group("algorithms");
    group.sample_size(10);
    for name in ["oca", "lfk", "cfinder", "lpa"] {
        group.bench_function(format!("lfr1000/{name}"), |b| {
            b.iter(|| run_algorithm(name, &lfr_bench.graph, 5).cover.len())
        });
        group.bench_function(format!("daisy1000/{name}"), |b| {
            b.iter(|| run_algorithm(name, &daisy_bench.graph, 5).cover.len())
        });
    }
    // The faithful CFinder (maximal-clique pipeline) on the LFR instance —
    // the configuration whose blow-up Figure 5 documents.
    group.bench_function("lfr1000/cfinder_faithful", |b| {
        b.iter(|| {
            run_algorithm("cfinder-faithful", &lfr_bench.graph, 5)
                .cover
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
