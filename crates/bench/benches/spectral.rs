//! Micro-benchmarks of the power method (Section II's `c = −1/λ_min`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oca_gen::{lfr, LfrParams};
use oca_spectral::{adj_matvec, interaction_strength, PowerConfig};
use std::hint::black_box;

fn bench_spectral(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral");
    for &n in &[1000usize, 4000] {
        let bench = lfr(&LfrParams::small(n, 0.3, 11));
        let graph = &bench.graph;
        group.bench_with_input(BenchmarkId::new("matvec", n), graph, |b, g| {
            let x = vec![1.0; g.node_count()];
            let mut y = vec![0.0; g.node_count()];
            b.iter(|| {
                adj_matvec(g, black_box(&x), &mut y);
                y[0]
            })
        });
        group.bench_with_input(
            BenchmarkId::new("interaction_strength", n),
            graph,
            |b, g| {
                let cfg = PowerConfig::default();
                b.iter(|| interaction_strength(g, &cfg).c)
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spectral);
criterion_main!(benches);
