//! Micro-benchmarks of the OCA fitness kernel and incremental state.
//!
//! Includes the DESIGN.md ablation "incremental vs recomputed fitness":
//! `state_churn` applies add/remove cycles with `O(deg)` incremental
//! updates, while `recompute_ein` measures the full `Ein` recount the
//! naive implementation would pay per move.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use oca::{fitness, gain_add, CommunityState};
use oca_gen::{lfr, LfrParams};
use oca_graph::NodeId;
use std::hint::black_box;

fn bench_fitness_eval(c: &mut Criterion) {
    c.bench_function("fitness/closed_form", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for s in 2..1000usize {
                acc += fitness(black_box(s), black_box(3 * s), black_box(0.3));
            }
            acc
        })
    });
    c.bench_function("fitness/gain_add", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for d in 0..1000usize {
                acc += gain_add(
                    black_box(500),
                    black_box(6000),
                    black_box(d),
                    black_box(0.3),
                );
            }
            acc
        })
    });
}

fn bench_state(c: &mut Criterion) {
    let bench = lfr(&LfrParams::small(2000, 0.3, 7));
    let graph = &bench.graph;
    let community: Vec<NodeId> = bench.ground_truth.communities()[0].members().to_vec();

    c.bench_function("state/add_remove_churn", |b| {
        b.iter_batched(
            || CommunityState::new(graph, 0.3),
            |mut st| {
                for &v in &community {
                    st.add(v);
                }
                for &v in &community {
                    st.remove(v);
                }
                st.len()
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("state/recompute_ein", |b| {
        let mut st = CommunityState::new(graph, 0.3);
        for &v in &community {
            st.add(v);
        }
        b.iter(|| black_box(&st).recompute_internal_edges())
    });

    c.bench_function("state/best_addition", |b| {
        let mut st = CommunityState::new(graph, 0.3);
        for &v in &community {
            st.add(v);
        }
        b.iter(|| st.best_addition())
    });
}

criterion_group!(benches, bench_fitness_eval, bench_state);
criterion_main!(benches);
