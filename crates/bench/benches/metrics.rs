//! Metric evaluation cost: Θ (V.2), the LFK NMI and the omega index on
//! realistic cover sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use oca_gen::{lfr, LfrParams};
use oca_metrics::{average_f1, omega_index, overlapping_nmi, theta};

fn bench_metrics(c: &mut Criterion) {
    let a = lfr(&LfrParams::small(2000, 0.3, 31));
    let b = lfr(&LfrParams::small(2000, 0.3, 32));
    let (truth, other) = (&a.ground_truth, &b.ground_truth);

    c.bench_function("metrics/theta", |bch| bch.iter(|| theta(truth, other)));
    c.bench_function("metrics/nmi", |bch| {
        bch.iter(|| overlapping_nmi(truth, other))
    });
    c.bench_function("metrics/omega", |bch| {
        bch.iter(|| omega_index(truth, other))
    });
    c.bench_function("metrics/f1", |bch| bch.iter(|| average_f1(truth, other)));
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
