//! # oca-bench — experiment harness for the OCA reproduction
//!
//! One runnable binary per table/figure of the paper's Section V (see
//! DESIGN.md §4 for the index), built on a shared harness that drives
//! every algorithm through the `oca-api` registry as a
//! `Box<dyn CommunityDetector>` — identical graphs, identical
//! postprocessing, no per-algorithm dispatch — plus criterion
//! micro-benches for the hot kernels.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod harness;

pub use harness::{
    display_name, peak_rss_bytes, results_dir, run_algorithm, run_detector, run_meta_json, secs,
    shared_postprocess, Args, RunOutput, Table, QUALITY_ALGORITHMS,
};
