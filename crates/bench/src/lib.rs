//! # oca-bench — experiment harness for the OCA reproduction
//!
//! One runnable binary per table/figure of the paper's Section V (see
//! DESIGN.md §4 for the index), built on a shared harness that runs OCA,
//! LFK and CFinder under identical conditions, and criterion micro-benches
//! for the hot kernels.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod harness;

pub use harness::{
    results_dir, run_algorithm, secs, shared_postprocess, AlgorithmKind, Args, RunOutput, Table,
};
