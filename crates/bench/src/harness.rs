//! Shared experiment harness: uniform algorithm runner, timers, table and
//! CSV output.
//!
//! Every figure/table binary goes through [`run_algorithm`] so all
//! algorithms see identical graphs and identical postprocessing — matching
//! the paper's protocol ("as our postprocessing techniques also improve the
//! quality of the other algorithms, we applied them to all the results").
//! Dispatch is fully generic: the harness asks the [`oca_api`] registry
//! for the experiment-grade preset of a named algorithm and drives it
//! through `Box<dyn CommunityDetector>` — no per-algorithm `match`, so a
//! newly registered backend is immediately comparable.

use oca::merge_similar;
use oca_api::{registry, CommunityDetector, DetectContext};
use oca_graph::{Cover, CsrGraph};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// Registry names of the algorithms the paper's quality experiments
/// compare (Figures 2–4): OCA against both baselines.
pub const QUALITY_ALGORITHMS: [&str; 3] = ["oca", "lfk", "cfinder"];

/// One algorithm execution: the raw cover plus the detector's uniform
/// telemetry.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Display name of the algorithm that ran (unique per variant — the
    /// faithful CFinder path reports `"CFinder-faithful"`).
    pub algorithm: &'static str,
    /// The cover produced (before shared postprocessing).
    pub cover: Cover,
    /// Wall-clock duration of the algorithm proper.
    pub elapsed: Duration,
    /// True if the algorithm completed (CFinder may hit its clique cap).
    pub complete: bool,
    /// Outer-loop iterations (seeds, sweeps, cliques — see
    /// [`oca_graph::detect::Detection::iterations`]).
    pub iterations: usize,
    /// Algorithm-specific telemetry key–value pairs.
    pub stats: Vec<(&'static str, String)>,
}

/// Drives one detector under the harness's uniform context.
///
/// # Panics
/// Panics if the detector fails; experiment presets are pre-validated and
/// the harness context is never cancelled, so a failure is a driver bug.
pub fn run_detector(detector: &dyn CommunityDetector, graph: &CsrGraph, seed: u64) -> RunOutput {
    let mut ctx = DetectContext::new(seed);
    let detection = detector
        .detect(graph, &mut ctx)
        .unwrap_or_else(|e| panic!("{} failed: {e}", detector.name()));
    RunOutput {
        algorithm: detector.name(),
        cover: detection.cover,
        elapsed: detection.elapsed,
        complete: detection.complete,
        iterations: detection.iterations,
        stats: detection.stats,
    }
}

/// Runs the named algorithm (a registry key such as `"oca"` or
/// `"cfinder-faithful"`) with its experiment-grade settings.
///
/// # Panics
/// Panics on an unregistered name; the figure binaries pass compile-time
/// constants.
pub fn run_algorithm(name: &str, graph: &CsrGraph, seed: u64) -> RunOutput {
    let reg = registry();
    let spec = reg.get(name).unwrap_or_else(|e| panic!("{e}"));
    run_detector(spec.experiment(graph).as_ref(), graph, seed)
}

/// The display name a registered algorithm reports in table rows (e.g.
/// for labelling skipped runs without executing anything).
///
/// # Panics
/// Panics on an unregistered name.
pub fn display_name(name: &str) -> &'static str {
    let reg = registry();
    reg.get(name)
        .unwrap_or_else(|e| panic!("{e}"))
        .display_name()
}

/// The shared postprocessing of Section IV, applied to every algorithm's
/// output in the quality experiments.
pub fn shared_postprocess(cover: &Cover) -> Cover {
    merge_similar(cover, 0.5)
}

/// A simple fixed-width table printer for experiment output.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:width$}", cell, width = widths[i] + 2);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.max(cols * 3)));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Writes the table as CSV to `results/<name>.csv` under the workspace
    /// root, creating the directory if needed. Returns the path.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut csv = String::new();
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        csv.push_str(
            &self
                .header
                .iter()
                .map(|s| escape(s))
                .collect::<Vec<_>>()
                .join(","),
        );
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.iter().map(|s| escape(s)).collect::<Vec<_>>().join(","));
            csv.push('\n');
        }
        std::fs::write(&path, csv)?;
        Ok(path)
    }
}

/// Run metadata embedded in every benchmark JSON so a results file is
/// self-describing: the git commit the run came from (`"unknown"` when
/// the binary runs outside a checkout), the host's available
/// parallelism, and a free-form description of the graph family and
/// parameters measured. Returns one JSON object literal, no trailing
/// comma or newline.
pub fn run_meta_json(graph: &str) -> String {
    let commit = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .filter(|hash| !hash.is_empty() && hash.chars().all(|ch| ch.is_ascii_alphanumeric()))
        .unwrap_or_else(|| "unknown".to_string());
    let host_threads = std::thread::available_parallelism().map_or(0, |n| n.get());
    format!(
        "{{\"git_commit\": \"{commit}\", \"host_threads\": {host_threads}, \"graph\": \"{}\"}}",
        graph.replace('"', "'")
    )
}

/// The process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where unavailable. The high-water mark is
/// monotone for the lifetime of the process, so benches that want
/// per-phase peaks must isolate phases in subprocesses.
pub fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|kb| kb.parse::<u64>().ok())
            })
        })
        .map_or(0, |kb| kb * 1024)
}

/// The `results/` directory next to the workspace root (falls back to cwd).
pub fn results_dir() -> PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|root| root.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Parses `--key value` style arguments with defaults, for the experiment
/// binaries (no external CLI crate in the sanctioned dependency set).
#[derive(Debug, Clone)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Captures the process arguments.
    pub fn parse() -> Self {
        Args::from_argv(std::env::args().skip(1).collect())
    }

    /// Parses `--key value` pairs. A `--key` followed by another
    /// `--option` (or by nothing) is a valueless flag and produces no
    /// pair, so flags like `--smoke` never swallow the next option.
    fn from_argv(argv: Vec<String>) -> Self {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            if let Some(key) = argv[i].strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    pairs.push((key.to_string(), argv[i + 1].clone()));
                    i += 2;
                    continue;
                }
            }
            i += 1;
        }
        Args { pairs }
    }

    /// Returns the value for `key` parsed as `T`, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// Like [`Args::get`], but exits with an error message when the option
    /// is present and malformed instead of silently using the default.
    pub fn get_strict<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.pairs.iter().rev().find(|(k, _)| k == key) {
            None => default,
            Some((_, v)) => v.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid value for --{key}: {v:?}");
                std::process::exit(2);
            }),
        }
    }
}

/// Formats a duration as fractional seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    fn toy() -> CsrGraph {
        let mut edges = Vec::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((4, 5));
        from_edges(10, edges)
    }

    #[test]
    fn all_registered_algorithms_run_on_toy_graph() {
        let g = toy();
        for name in registry().names() {
            let out = run_algorithm(name, &g, 7);
            assert!(out.complete, "{name} did not complete");
            assert!(!out.cover.is_empty(), "{name} found nothing");
        }
    }

    #[test]
    fn table_row_labels_are_unambiguous() {
        // Regression: the triangle and faithful CFinder paths used to both
        // label their rows "CFinder".
        let labels: Vec<&str> = registry().names().iter().map(|n| display_name(n)).collect();
        let mut unique = labels.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), labels.len(), "ambiguous labels: {labels:?}");
        assert_eq!(display_name("cfinder"), "CFinder");
        assert_eq!(display_name("cfinder-faithful"), "CFinder-faithful");
    }

    #[test]
    fn cfinder_variants_agree() {
        let g = toy();
        let fast = run_algorithm("cfinder", &g, 1);
        let slow = run_algorithm("cfinder-faithful", &g, 1);
        assert_eq!(fast.cover, slow.cover);
        assert_ne!(fast.algorithm, slow.algorithm);
    }

    #[test]
    fn run_detector_accepts_any_boxed_implementation() {
        let g = toy();
        let reg = registry();
        let detectors: Vec<Box<dyn CommunityDetector>> =
            reg.iter().map(|spec| spec.experiment(&g)).collect();
        for det in &detectors {
            let out = run_detector(det.as_ref(), &g, 3);
            assert_eq!(out.algorithm, det.name());
        }
    }

    #[test]
    fn table_renders_and_aligns() {
        let mut t = Table::new(["a", "long-header", "x"]);
        t.row(["1", "2", "3"]);
        t.row(["wide-cell", "4", "5"]);
        let text = t.render();
        assert!(text.contains("long-header"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn flags_do_not_swallow_the_next_option() {
        // Regression: `--smoke --seed 7` used to pair ("smoke", "--seed")
        // and silently drop the seed.
        let args = Args::from_argv(
            ["--smoke", "--seed", "7", "--nodes", "300"]
                .map(String::from)
                .to_vec(),
        );
        assert_eq!(args.get("seed", 0u64), 7);
        assert_eq!(args.get("nodes", 0usize), 300);
        assert_eq!(args.get("smoke", 1usize), 1, "flag has no value");
    }

    #[test]
    fn run_meta_is_a_self_describing_json_object() {
        let meta = run_meta_json("lfr n=1000 mu=0.3 \"quoted\"");
        assert!(meta.starts_with('{') && meta.ends_with('}'), "{meta}");
        assert!(meta.contains("\"git_commit\": \""), "{meta}");
        assert!(meta.contains("\"host_threads\": "), "{meta}");
        // Double quotes in the description cannot break the JSON string.
        assert!(meta.contains("'quoted'"), "{meta}");
        assert!(!meta.contains("\"quoted\""), "{meta}");
    }

    #[test]
    fn shared_postprocess_merges_duplicates() {
        use oca_graph::Community;
        let cover = Cover::new(
            6,
            vec![
                Community::from_raw([0, 1, 2]),
                Community::from_raw([0, 1, 2]),
                Community::from_raw([3, 4, 5]),
            ],
        );
        assert_eq!(shared_postprocess(&cover).len(), 2);
    }
}
