//! Shared experiment harness: uniform algorithm runner, timers, table and
//! CSV output.
//!
//! Every figure/table binary goes through [`run_algorithm`] so all three
//! algorithms see identical graphs and identical postprocessing — matching
//! the paper's protocol ("as our postprocessing techniques also improve the
//! quality of the other algorithms, we applied them to all the results").

use oca::{merge_similar, Oca, OcaConfig};
use oca_baselines::{cfinder, label_propagation, lfk, CFinderConfig, LfkConfig, LpaConfig};
use oca_graph::{Cover, CsrGraph};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The algorithms under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// The paper's contribution (Sections II–IV).
    Oca,
    /// Local fitness maximization, ref \[8\].
    Lfk,
    /// k-clique percolation (k = 3), ref \[12\].
    CFinder,
    /// CFinder without the triangle shortcut: enumerates maximal cliques
    /// like the original tool; used in the timing experiments.
    CFinderFaithful,
    /// Label propagation (extra, not in the paper).
    Lpa,
}

impl AlgorithmKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::Oca => "OCA",
            AlgorithmKind::Lfk => "LFK",
            AlgorithmKind::CFinder => "CFinder",
            AlgorithmKind::CFinderFaithful => "CFinder",
            AlgorithmKind::Lpa => "LPA",
        }
    }
}

/// One algorithm execution: the raw cover and its wall-clock time.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The cover produced (before shared postprocessing).
    pub cover: Cover,
    /// Wall-clock duration of the algorithm proper.
    pub elapsed: Duration,
    /// True if the algorithm completed (CFinder may hit its clique cap).
    pub complete: bool,
}

/// Runs one algorithm with experiment-grade settings.
pub fn run_algorithm(kind: AlgorithmKind, graph: &CsrGraph, seed: u64) -> RunOutput {
    let start = Instant::now();
    match kind {
        AlgorithmKind::Oca => {
            let config = OcaConfig {
                halting: oca::HaltingConfig {
                    max_seeds: (4 * graph.node_count()).max(100),
                    target_coverage: 0.99,
                    stagnation_limit: 200,
                },
                merge_threshold: None, // shared postprocessing applies it
                rng_seed: seed,
                ..Default::default()
            };
            let r = Oca::new(config).run(graph);
            RunOutput {
                cover: r.cover,
                elapsed: start.elapsed(),
                complete: true,
            }
        }
        AlgorithmKind::Lfk => {
            let config = LfkConfig {
                rng_seed: seed,
                min_community_size: 2,
                ..Default::default()
            };
            let cover = lfk(graph, &config);
            RunOutput {
                cover,
                elapsed: start.elapsed(),
                complete: true,
            }
        }
        AlgorithmKind::CFinder | AlgorithmKind::CFinderFaithful => {
            let config = CFinderConfig {
                triangle_fast_path: kind == AlgorithmKind::CFinder,
                ..Default::default()
            };
            let r = cfinder(graph, &config);
            RunOutput {
                cover: r.cover,
                elapsed: start.elapsed(),
                complete: r.complete,
            }
        }
        AlgorithmKind::Lpa => {
            let cover = label_propagation(
                graph,
                &LpaConfig {
                    rng_seed: seed,
                    ..Default::default()
                },
            );
            RunOutput {
                cover,
                elapsed: start.elapsed(),
                complete: true,
            }
        }
    }
}

/// The shared postprocessing of Section IV, applied to every algorithm's
/// output in the quality experiments.
pub fn shared_postprocess(cover: &Cover) -> Cover {
    merge_similar(cover, 0.5)
}

/// A simple fixed-width table printer for experiment output.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:width$}", cell, width = widths[i] + 2);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.max(cols * 3)));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Writes the table as CSV to `results/<name>.csv` under the workspace
    /// root, creating the directory if needed. Returns the path.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut csv = String::new();
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        csv.push_str(
            &self
                .header
                .iter()
                .map(|s| escape(s))
                .collect::<Vec<_>>()
                .join(","),
        );
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.iter().map(|s| escape(s)).collect::<Vec<_>>().join(","));
            csv.push('\n');
        }
        std::fs::write(&path, csv)?;
        Ok(path)
    }
}

/// The `results/` directory next to the workspace root (falls back to cwd).
pub fn results_dir() -> PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|root| root.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Parses `--key value` style arguments with defaults, for the experiment
/// binaries (no external CLI crate in the sanctioned dependency set).
#[derive(Debug, Clone)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Captures the process arguments.
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            if let Some(key) = argv[i].strip_prefix("--") {
                if i + 1 < argv.len() {
                    pairs.push((key.to_string(), argv[i + 1].clone()));
                    i += 2;
                    continue;
                }
            }
            i += 1;
        }
        Args { pairs }
    }

    /// Returns the value for `key` parsed as `T`, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// Like [`Args::get`], but exits with an error message when the option
    /// is present and malformed instead of silently using the default.
    pub fn get_strict<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.pairs.iter().rev().find(|(k, _)| k == key) {
            None => default,
            Some((_, v)) => v.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid value for --{key}: {v:?}");
                std::process::exit(2);
            }),
        }
    }
}

/// Formats a duration as fractional seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    fn toy() -> CsrGraph {
        let mut edges = Vec::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((4, 5));
        from_edges(10, edges)
    }

    #[test]
    fn all_algorithms_run_on_toy_graph() {
        let g = toy();
        for kind in [
            AlgorithmKind::Oca,
            AlgorithmKind::Lfk,
            AlgorithmKind::CFinder,
            AlgorithmKind::CFinderFaithful,
            AlgorithmKind::Lpa,
        ] {
            let out = run_algorithm(kind, &g, 7);
            assert!(out.complete, "{:?} did not complete", kind);
            assert!(!out.cover.is_empty(), "{:?} found nothing", kind);
        }
    }

    #[test]
    fn cfinder_variants_agree() {
        let g = toy();
        let fast = run_algorithm(AlgorithmKind::CFinder, &g, 1);
        let slow = run_algorithm(AlgorithmKind::CFinderFaithful, &g, 1);
        assert_eq!(fast.cover, slow.cover);
    }

    #[test]
    fn table_renders_and_aligns() {
        let mut t = Table::new(["a", "long-header", "x"]);
        t.row(["1", "2", "3"]);
        t.row(["wide-cell", "4", "5"]);
        let text = t.render();
        assert!(text.contains("long-header"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn shared_postprocess_merges_duplicates() {
        use oca_graph::Community;
        let cover = Cover::new(
            6,
            vec![
                Community::from_raw([0, 1, 2]),
                Community::from_raw([0, 1, 2]),
                Community::from_raw([3, 4, 5]),
            ],
        );
        assert_eq!(shared_postprocess(&cover).len(), 2);
    }
}
