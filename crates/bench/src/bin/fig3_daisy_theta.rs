//! Figure 3: Θ of the daisy community structure at different tree sizes.
//!
//! The paper grows daisy trees from ~10² to 10⁵ nodes and scores the three
//! algorithms against the overlapping petal/core ground truth. Expected
//! shape: OCA above LFK and CFinder across sizes (both baselines handle
//! the planted overlap worse).
//!
//! ```text
//! cargo run -p oca-bench --release --bin fig3_daisy_theta -- --max-size 100000
//! ```

use oca_bench::{run_algorithm, shared_postprocess, Args, Table, QUALITY_ALGORITHMS};
use oca_gen::{daisy_tree, DaisyParams};
use oca_metrics::{overlapping_nmi, theta};

fn main() {
    let args = Args::parse();
    let max_size: usize = args.get("max-size", 10_000);
    let seed: u64 = args.get("seed", 42);
    let flower = DaisyParams {
        p: 5,
        q: 7,
        n: 100,
        alpha: 0.9,
        beta: 0.9,
    };

    let mut table = Table::new(["size", "algorithm", "theta", "nmi", "communities", "secs"]);
    println!(
        "Figure 3 reproduction: Theta vs daisy tree size (petals of {} nodes)",
        flower.n
    );
    let mut size = 100usize;
    while size <= max_size {
        let flowers = (size / flower.n).max(1);
        let bench = daisy_tree(&flower, flowers - 1, 0.05, seed + size as u64);
        for alg in QUALITY_ALGORITHMS {
            let out = run_algorithm(alg, &bench.graph, seed);
            let cover = shared_postprocess(&out.cover);
            table.row([
                bench.graph.node_count().to_string(),
                out.algorithm.to_string(),
                format!("{:.3}", theta(&bench.ground_truth, &cover)),
                format!("{:.3}", overlapping_nmi(&bench.ground_truth, &cover)),
                cover.len().to_string(),
                oca_bench::secs(out.elapsed),
            ]);
            eprint!(".");
        }
        size *= 10;
    }
    eprintln!();
    print!("{}", table.render());
    match table.write_csv("fig3_daisy_theta") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
