//! Figure 5: execution time against graph size (log scale in the paper).
//!
//! LFR graphs with av.deg = 50, max.deg = 150, community sizes 500–700,
//! n ∈ {5000, …, 25000}. The paper reports CFinder as prohibitively slow
//! (it enumerates cliques), with OCA fastest. CFinder here runs in its
//! faithful maximal-clique mode and is skipped beyond `--cfinder-cap`
//! nodes, mirroring the paper discarding it "for experiments on larger
//! graphs".
//!
//! ```text
//! cargo run -p oca-bench --release --bin fig5_time_vs_nodes -- --max-nodes 25000
//! ```

use oca_bench::{display_name, run_algorithm, Args, Table};
use oca_gen::{lfr, LfrParams};

fn main() {
    let args = Args::parse();
    let max_nodes: usize = args.get("max-nodes", 25_000);
    let step: usize = args.get("step", 5_000);
    let cfinder_cap: usize = args.get("cfinder-cap", 10_000);
    let seed: u64 = args.get("seed", 42);

    let mut table = Table::new(["nodes", "algorithm", "secs", "communities", "complete"]);
    println!(
        "Figure 5 reproduction: execution time vs nodes (LFR av.deg=50 max.deg=150 com=500-700)"
    );
    let mut n = step;
    while n <= max_nodes {
        let params = LfrParams::timing(n, 500.min(n / 2), 700.min(n - 1), seed + n as u64);
        let bench = lfr(&params);
        for alg in ["oca", "lfk", "cfinder-faithful"] {
            if alg == "cfinder-faithful" && n > cfinder_cap {
                table.row([
                    n.to_string(),
                    display_name(alg).to_string(),
                    "skipped (prohibitive)".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]);
                continue;
            }
            let out = run_algorithm(alg, &bench.graph, seed);
            table.row([
                n.to_string(),
                out.algorithm.to_string(),
                oca_bench::secs(out.elapsed),
                out.cover.len().to_string(),
                out.complete.to_string(),
            ]);
            eprint!(".");
        }
        n += step;
    }
    eprintln!();
    print!("{}", table.render());
    match table.write_csv("fig5_time_vs_nodes") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
