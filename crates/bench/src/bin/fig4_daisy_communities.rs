//! Figure 4: typical communities found in a daisy graph.
//!
//! The paper shows qualitatively that OCA and CFinder recover petal- and
//! core-shaped communities while LFK lumps whole daisies together. This
//! binary classifies each found community against the planted layout and
//! prints the distribution of shapes per algorithm.
//!
//! ```text
//! cargo run -p oca-bench --release --bin fig4_daisy_communities
//! ```

use oca_bench::{run_algorithm, shared_postprocess, Args, Table, QUALITY_ALGORITHMS};
use oca_gen::{daisy, DaisyParams};
use oca_graph::{Community, Cover};
use oca_metrics::rho;

/// Classifies a found community by its best ρ against the planted shapes.
fn classify(found: &Community, truth: &Cover) -> (&'static str, f64) {
    let petals = truth.len() - 1; // layout order: petals then core
    let mut best = ("unmatched", 0.0f64);
    for (i, t) in truth.communities().iter().enumerate() {
        let r = rho(t, found);
        if r > best.1 {
            best = (if i < petals { "petal" } else { "core" }, r);
        }
    }
    if best.1 < 0.3 {
        // Whole-daisy blobs match nothing well but contain everything.
        let daisy_cov = found.len() as f64 / truth.node_count() as f64;
        if daisy_cov > 0.5 {
            return ("whole-daisy blob", best.1);
        }
        return ("fragment", best.1);
    }
    best
}

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let params = DaisyParams {
        p: 5,
        q: 7,
        n: 120,
        alpha: 0.9,
        beta: 0.9,
    };
    let bench = daisy(&params, seed);
    println!(
        "Figure 4 reproduction: one daisy ({} nodes, {} petals + core, {} overlap nodes)",
        bench.graph.node_count(),
        params.p - 1,
        bench.ground_truth.overlap_node_count()
    );

    let mut table = Table::new(["algorithm", "community", "size", "shape", "best rho"]);
    for alg in QUALITY_ALGORITHMS {
        let out = run_algorithm(alg, &bench.graph, seed);
        let cover = shared_postprocess(&out.cover);
        for (i, c) in cover.communities().iter().enumerate() {
            let (shape, r) = classify(c, &bench.ground_truth);
            table.row([
                out.algorithm.to_string(),
                format!("#{i}"),
                c.len().to_string(),
                shape.to_string(),
                format!("{r:.3}"),
            ]);
        }
    }
    print!("{}", table.render());
    println!("\npaper expectation: OCA & CFinder report petal/core shapes; LFK whole-daisy blobs.");
    match table.write_csv("fig4_daisy_communities") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
