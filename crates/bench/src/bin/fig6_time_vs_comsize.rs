//! Figure 6: execution time against community size.
//!
//! LFR graphs (av.deg = 50, max.deg = 150) whose community sizes lie in
//! `[k, k+50]` for k = 50…450. The paper shows OCA roughly flat in k while
//! LFK's time grows; CFinder cannot finish at all and is omitted.
//!
//! ```text
//! cargo run -p oca-bench --release --bin fig6_time_vs_comsize -- --nodes 5000
//! ```

use oca_bench::{run_algorithm, Args, Table};
use oca_gen::{lfr, LfrParams};

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 5_000);
    let max_k: usize = args.get("max-k", 450);
    let seed: u64 = args.get("seed", 42);

    let mut table = Table::new(["k", "algorithm", "secs", "communities"]);
    println!(
        "Figure 6 reproduction: execution time vs community size (LFR n = {nodes}, sizes [k, k+50])"
    );
    let mut k = 50usize;
    while k <= max_k {
        let params = LfrParams::timing(nodes, k, (k + 50).min(nodes - 1), seed + k as u64);
        let bench = lfr(&params);
        for alg in ["oca", "lfk"] {
            let out = run_algorithm(alg, &bench.graph, seed);
            table.row([
                k.to_string(),
                out.algorithm.to_string(),
                oca_bench::secs(out.elapsed),
                out.cover.len().to_string(),
            ]);
            eprint!(".");
        }
        k += 100;
    }
    eprintln!();
    print!("{}", table.render());
    match table.write_csv("fig6_time_vs_comsize") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
