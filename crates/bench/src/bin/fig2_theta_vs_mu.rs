//! Figure 2: evolution of Θ against the LFR mixing parameter µ.
//!
//! The paper sweeps µ ∈ [0.2, 0.8] on LFR benchmarks and reports the
//! suitability Θ of OCA, LFK and CFinder (k = 3), with the Section IV
//! postprocessing applied to all algorithms. Expected shape: OCA ≈ LFK
//! near 1 for µ ≤ 0.5 and reliable to ≈ 0.7; CFinder lower throughout.
//!
//! ```text
//! cargo run -p oca-bench --release --bin fig2_theta_vs_mu -- --nodes 1000
//! ```

use oca_bench::{run_algorithm, shared_postprocess, Args, Table, QUALITY_ALGORITHMS};
use oca_gen::{lfr, LfrParams};
use oca_metrics::{overlapping_nmi, theta};

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 1000);
    let seed: u64 = args.get("seed", 42);

    let mut table = Table::new(["mu", "algorithm", "theta", "nmi", "communities", "secs"]);
    println!("Figure 2 reproduction: Theta vs mixing parameter (LFR, n = {nodes})");
    for step in 0..=6 {
        let mu = 0.2 + 0.1 * step as f64;
        let bench = lfr(&LfrParams::small(nodes, mu, seed + step));
        for alg in QUALITY_ALGORITHMS {
            let out = run_algorithm(alg, &bench.graph, seed);
            let cover = shared_postprocess(&out.cover);
            let th = theta(&bench.ground_truth, &cover);
            let nmi = overlapping_nmi(&bench.ground_truth, &cover);
            table.row([
                format!("{mu:.1}"),
                out.algorithm.to_string(),
                format!("{th:.3}"),
                format!("{nmi:.3}"),
                cover.len().to_string(),
                oca_bench::secs(out.elapsed),
            ]);
        }
        eprint!(".");
    }
    eprintln!();
    print!("{}", table.render());
    match table.write_csv("fig2_theta_vs_mu") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
