//! Table I: the datasets analyzed by OCA.
//!
//! Regenerates the dataset inventory — LFR benchmarks (10⁴–10⁶ nodes),
//! a daisy tree (10⁵ nodes, ≈ 4·10⁵ edges) and the Wikipedia substitute
//! (scale-free R-MAT; see DESIGN.md §3) — and prints the same columns the
//! paper reports. Scales are configurable so the default run stays quick:
//!
//! ```text
//! cargo run -p oca-bench --release --bin table1_datasets -- --scale full
//! ```

use oca_bench::{Args, Table};
use oca_gen::{daisy_tree, lfr, rmat, DaisyParams, LfrParams, RmatParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let scale: String = args.get("scale", "quick".to_string());
    let full = scale == "full";
    let seed: u64 = args.get("seed", 42);

    // Paper scales: LFR 10^4..10^6, daisy 10^5, Wikipedia 1.7e7/1.76e8.
    // Quick scales keep the same shapes at CI-friendly sizes.
    let lfr_sizes: Vec<usize> = if full {
        vec![10_000, 100_000, 1_000_000]
    } else {
        vec![1_000, 10_000]
    };
    let daisy_flowers = if full { 1000 } else { 100 };
    let rmat_scale = if full { 22 } else { 16 };

    let mut table = Table::new(["name", "nodes", "edges", "avg degree", "ground truth"]);
    println!("Table I reproduction: datasets analyzed by OCA ({scale} scale)");

    for (i, &n) in lfr_sizes.iter().enumerate() {
        let params = LfrParams {
            average_degree: 20.0,
            max_degree: 50,
            ..LfrParams::small(n, 0.3, seed + i as u64)
        };
        let bench = lfr(&params);
        table.row([
            format!("LFR-benchmark (n={n})"),
            bench.graph.node_count().to_string(),
            bench.graph.edge_count().to_string(),
            format!("{:.1}", bench.graph.average_degree()),
            format!("{} communities", bench.ground_truth.len()),
        ]);
        eprint!(".");
    }

    let daisy_params = DaisyParams {
        p: 5,
        q: 7,
        n: 100,
        alpha: 0.35,
        beta: 0.35,
    };
    let daisy = daisy_tree(&daisy_params, daisy_flowers - 1, 0.02, seed);
    table.row([
        "Daisy".to_string(),
        daisy.graph.node_count().to_string(),
        daisy.graph.edge_count().to_string(),
        format!("{:.1}", daisy.graph.average_degree()),
        format!(
            "{} communities, {} overlap nodes",
            daisy.ground_truth.len(),
            daisy.ground_truth.overlap_node_count()
        ),
    ]);
    eprint!(".");

    let mut rng = StdRng::seed_from_u64(seed);
    let wiki = rmat(&RmatParams::graph500(rmat_scale, 10), &mut rng);
    table.row([
        format!("Wikipedia substitute (R-MAT s={rmat_scale})"),
        wiki.node_count().to_string(),
        wiki.edge_count().to_string(),
        format!("{:.1}", wiki.average_degree()),
        "none (real-world stand-in)".to_string(),
    ]);
    eprintln!();

    print!("{}", table.render());
    println!("\npaper reference: LFR 10^4-10^6 nodes / ~10^5-10^7 edges;");
    println!("daisy 10^5 nodes / ~4*10^5 edges; Wikipedia 16,986,429 / 176,454,501.");
    match table.write_csv("table1_datasets") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
