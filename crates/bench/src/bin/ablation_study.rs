//! Ablation study for the design choices called out in DESIGN.md §5:
//!
//! 1. spectral `c = −1/λ_min` vs fixed `c` values (quality plateau);
//! 2. merge postprocessing on/off (duplicate rate and Θ);
//! 3. seed strategy: random neighborhood vs singleton vs 1-hop ball.
//!
//! ```text
//! cargo run -p oca-bench --release --bin ablation_study -- --nodes 1000
//! ```

use oca::{CStrategy, HaltingConfig, Oca, OcaConfig, SeedStrategy};
use oca_bench::{Args, Table};
use oca_gen::{daisy_tree, lfr, DaisyParams, LfrParams};
use oca_graph::{Cover, CsrGraph};
use oca_metrics::theta;

fn run(
    graph: &CsrGraph,
    c: CStrategy,
    seed_strategy: SeedStrategy,
    merge: Option<f64>,
) -> (Cover, usize) {
    let config = OcaConfig {
        c,
        seed_strategy,
        merge_threshold: merge,
        halting: HaltingConfig {
            max_seeds: 4 * graph.node_count(),
            target_coverage: 0.99,
            stagnation_limit: 200,
            ..Default::default()
        },
        ..Default::default()
    };
    let r = Oca::new(config).run(graph);
    (r.cover, r.raw_community_count)
}

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 1000);
    let seed: u64 = args.get("seed", 42);
    let lfr_bench = lfr(&LfrParams::small(nodes, 0.3, seed));
    let daisy_bench = daisy_tree(
        &DaisyParams::default_shape(100),
        nodes / 100 - 1,
        0.05,
        seed,
    );

    // 1. c sweep.
    let mut c_table = Table::new(["c", "theta(LFR)", "theta(daisy)"]);
    println!("Ablation 1: interaction strength (spectral vs fixed)");
    let mut entries: Vec<(String, CStrategy)> = vec![(
        "spectral (paper)".to_string(),
        CStrategy::Spectral(Default::default()),
    )];
    for &c in &[0.05, 0.1, 0.3, 0.5, 0.7, 0.9] {
        entries.push((format!("{c:.2}"), CStrategy::Fixed(c)));
    }
    for (label, strategy) in entries {
        let (lc, _) = run(
            &lfr_bench.graph,
            strategy,
            SeedStrategy::default(),
            Some(0.5),
        );
        let (dc, _) = run(
            &daisy_bench.graph,
            strategy,
            SeedStrategy::default(),
            Some(0.5),
        );
        c_table.row([
            label,
            format!("{:.3}", theta(&lfr_bench.ground_truth, &lc)),
            format!("{:.3}", theta(&daisy_bench.ground_truth, &dc)),
        ]);
        eprint!(".");
    }
    eprintln!();
    print!("{}", c_table.render());
    let _ = c_table.write_csv("ablation_c_sweep");

    // 2. merge postprocessing.
    let mut m_table = Table::new([
        "merge",
        "raw communities",
        "final communities",
        "theta(LFR)",
    ]);
    println!("\nAblation 2: merge postprocessing");
    for (label, merge) in [
        ("off", None),
        ("rho>=0.5 (paper)", Some(0.5)),
        ("rho>=0.8", Some(0.8)),
    ] {
        let (cover, raw) = run(
            &lfr_bench.graph,
            CStrategy::Spectral(Default::default()),
            SeedStrategy::default(),
            merge,
        );
        m_table.row([
            label.to_string(),
            raw.to_string(),
            cover.len().to_string(),
            format!("{:.3}", theta(&lfr_bench.ground_truth, &cover)),
        ]);
        eprint!(".");
    }
    eprintln!();
    print!("{}", m_table.render());
    let _ = m_table.write_csv("ablation_merge");

    // 3. seed strategy.
    let mut s_table = Table::new(["seed strategy", "theta(LFR)", "theta(daisy)"]);
    println!("\nAblation 3: seed strategy");
    for (label, strat) in [
        (
            "random neighborhood (paper)",
            SeedStrategy::RandomNeighborhood {
                include_probability: 0.5,
            },
        ),
        ("singleton", SeedStrategy::Singleton),
        ("1-hop ball", SeedStrategy::Ball { radius: 1 }),
    ] {
        let (lc, _) = run(
            &lfr_bench.graph,
            CStrategy::Spectral(Default::default()),
            strat,
            Some(0.5),
        );
        let (dc, _) = run(
            &daisy_bench.graph,
            CStrategy::Spectral(Default::default()),
            strat,
            Some(0.5),
        );
        s_table.row([
            label.to_string(),
            format!("{:.3}", theta(&lfr_bench.ground_truth, &lc)),
            format!("{:.3}", theta(&daisy_bench.ground_truth, &dc)),
        ]);
        eprint!(".");
    }
    eprintln!();
    print!("{}", s_table.render());
    let _ = s_table.write_csv("ablation_seed_strategy");
}
