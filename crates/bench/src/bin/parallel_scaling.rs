//! Parallel scaling bench: sweeps the OCA driver's thread count on
//! generated graphs, records throughput/speedup, and *verifies* the
//! driver's determinism contract — every thread count must produce a
//! cover and seeds-tried cutoff identical to the 1-thread run. Results go
//! to `results/BENCH_parallel.json` (fields documented in README.md); a
//! failed determinism check exits non-zero, so CI can gate on it.
//!
//! ```text
//! cargo run -p oca-bench --release --bin parallel_scaling -- --nodes 4000 --threads 1,2,4,8
//! cargo run -p oca-bench --release --bin parallel_scaling -- --smoke   # tiny CI gate
//! ```

use oca::{HaltingConfig, Oca, OcaConfig, OcaResult};
use oca_bench::{results_dir, secs, Args, Table};
use oca_gen::{lfr, planted_partition, LfrParams};
use oca_graph::CsrGraph;
use std::fmt::Write as _;

struct Point {
    threads: usize,
    result: OcaResult,
    deterministic: bool,
}

fn config(n: usize, seed: u64, threads: usize, batch: usize) -> OcaConfig {
    OcaConfig {
        halting: HaltingConfig {
            max_seeds: (4 * n).max(100),
            target_coverage: 0.99,
            stagnation_limit: 200,
            ..Default::default()
        },
        rng_seed: seed,
        threads,
        batch,
        ..Default::default()
    }
}

/// Runs the thread sweep on one graph; `points[0]` is the reference run.
fn sweep(graph: &CsrGraph, threads: &[usize], seed: u64, batch: usize) -> Vec<Point> {
    let mut points: Vec<Point> = Vec::new();
    for &t in threads {
        let result = Oca::new(config(graph.node_count(), seed, t, batch)).run(graph);
        let deterministic = points.first().is_none_or(|reference| {
            result.cover == reference.result.cover
                && result.seeds_tried == reference.result.seeds_tried
        });
        points.push(Point {
            threads: t,
            result,
            deterministic,
        });
        eprint!(".");
    }
    points
}

fn json_graph(family: &str, graph: &CsrGraph, points: &[Point]) -> String {
    let base_secs = points[0].result.elapsed.as_secs_f64();
    let mut out = String::new();
    let _ = write!(
        out,
        "    {{\n      \"family\": \"{family}\",\n      \"nodes\": {},\n      \"edges\": {},\n      \"points\": [\n",
        graph.node_count(),
        graph.edge_count()
    );
    for (i, p) in points.iter().enumerate() {
        let s = p.result.elapsed.as_secs_f64();
        let throughput = p.result.seeds_tried as f64 / s.max(1e-9);
        let _ = writeln!(
            out,
            "        {{\"threads\": {}, \"secs\": {:.6}, \"seeds_tried\": {}, \"communities\": {}, \"halt\": \"{}\", \"throughput_seeds_per_sec\": {:.1}, \"speedup\": {:.3}, \"identical_to_1_thread\": {}}}{}",
            p.threads,
            s,
            p.result.seeds_tried,
            p.result.cover.len(),
            p.result.halt_reason.map_or("none", |r| r.label()),
            throughput,
            base_secs / s.max(1e-9),
            p.deterministic,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    out.push_str("      ]\n    }");
    out
}

fn main() {
    let args = Args::parse();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed: u64 = args.get_strict("seed", 42);
    let batch: usize = args.get_strict("batch", 64);
    let nodes: usize = args.get_strict("nodes", if smoke { 300 } else { 4000 });
    let mut threads: Vec<usize> = if smoke {
        vec![1, 2]
    } else {
        let raw: String = args.get("threads", "1,2,4,8".to_string());
        raw.split(',')
            .map(|t| {
                t.trim().parse().unwrap_or_else(|_| {
                    eprintln!("error: invalid value for --threads: {raw:?}");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    // The determinism verdict is "identical to the 1-thread run", so the
    // sweep always starts with an actual 1-thread reference.
    threads.retain(|&t| t != 1);
    threads.insert(0, 1);

    println!(
        "parallel scaling: OCA ticket-ordered driver, threads {threads:?}, batch {batch}, seed {seed}{}",
        if smoke { " (smoke mode)" } else { "" }
    );

    let mut graphs: Vec<(&str, CsrGraph)> =
        vec![("lfr", lfr(&LfrParams::small(nodes, 0.3, seed)).graph)];
    if !smoke {
        let pp = planted_partition(nodes / 50, 50, 0.3, 0.01, seed);
        graphs.push(("planted", pp.graph));
    }

    let mut table = Table::new([
        "graph",
        "threads",
        "secs",
        "seeds",
        "communities",
        "speedup",
        "deterministic",
    ]);
    let mut all_points: Vec<(&str, CsrGraph, Vec<Point>)> = Vec::new();
    for (family, graph) in graphs {
        let points = sweep(&graph, &threads, seed, batch);
        eprintln!();
        let base_secs = points[0].result.elapsed.as_secs_f64();
        for p in &points {
            table.row([
                family.to_string(),
                p.threads.to_string(),
                secs(p.result.elapsed),
                p.result.seeds_tried.to_string(),
                p.result.cover.len().to_string(),
                format!(
                    "{:.2}",
                    base_secs / p.result.elapsed.as_secs_f64().max(1e-9)
                ),
                p.deterministic.to_string(),
            ]);
        }
        all_points.push((family, graph, points));
    }
    print!("{}", table.render());

    let pass = all_points
        .iter()
        .all(|(_, _, points)| points.iter().all(|p| p.deterministic));
    let mut json = String::from("{\n  \"bench\": \"parallel_scaling\",\n");
    let _ = write!(
        json,
        "  \"mode\": \"{}\",\n  \"meta\": {},\n  \"rng_seed\": {seed},\n  \"batch\": {batch},\n  \"thread_counts\": {threads:?},\n  \"determinism\": \"{}\",\n  \"graphs\": [\n",
        if smoke { "smoke" } else { "full" },
        oca_bench::run_meta_json(&format!(
            "lfr{} n={nodes} mu=0.3",
            if smoke { "" } else { "+planted" }
        )),
        if pass { "pass" } else { "fail" }
    );
    for (i, (family, graph, points)) in all_points.iter().enumerate() {
        json.push_str(&json_graph(family, graph, points));
        json.push_str(if i + 1 < all_points.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");

    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("could not create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join("BENCH_parallel.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    if pass {
        println!("determinism check: PASS (identical cover and cutoff at every thread count)");
    } else {
        eprintln!("determinism check: FAIL — parallel output diverged from the 1-thread run");
        std::process::exit(1);
    }
}
