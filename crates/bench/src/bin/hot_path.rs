//! Hot-path bench: times the sequential greedy-ascent inner loop in
//! isolation (`local_search` over a reusable [`oca::CommunityState`]) and
//! end-to-end single-thread detection, on LFR / BA / hub-stress BA /
//! daisy graphs. Results go to `results/BENCH_hotpath.json` (fields
//! documented in README.md) with ns/move, moves/s, a per-phase
//! ascent/dedup/merge/orphan wall-clock breakdown, peak RSS, and
//! before/after deltas against a committed baseline snapshot; a ns/move
//! regression beyond 25% of the baseline — or a dedup+merge phase blow-up
//! beyond 1.5x + 10 ms — exits non-zero, so CI can gate on it.
//!
//! For the lfr family (up to 200k nodes) a second, checkpointed
//! end-to-end leg records the driver's `ckpt_*` telemetry — rounds
//! written, last/total write cost, overhead as a percentage of
//! wall-clock — so the steady-state price of `detect --checkpoint` is
//! visible next to the numbers it perturbs.
//!
//! The end-to-end leg runs with the tuned preset's ascent budget and
//! covered-hub pruning pinned (DESIGN.md §2a). For ba-hub cases small
//! enough to afford it, an unbudgeted reference run scores the budgeted
//! cover (`theta_vs_unbudgeted` / `omega_vs_unbudgeted`), and the hub
//! gate holds both the wall-clock win (≤ 2x baseline + 1 s) and the
//! quality floor (θ no more than 0.10 below the baseline's).
//!
//! ```text
//! cargo run -p oca-bench --release --bin hot_path                      # full: n = 10k, 100k, 1M
//! cargo run -p oca-bench --release --bin hot_path -- --sizes 10000 --families lfr,daisy
//! cargo run -p oca-bench --release --bin hot_path -- --smoke           # tiny CI gate
//! cargo run -p oca-bench --release --bin hot_path -- --write-baseline  # refresh the snapshot
//! ```
//!
//! The default 1M point covers LFR and daisy; the BA variants are skipped
//! there because a structureless BA graph makes every ascent swallow a
//! macroscopic fraction of the nodes, turning its end-to-end run into a
//! multi-minute stress test rather than a hot-path measurement (opt in
//! with `--families ba --sizes 1000000`).

use oca::{
    initial_set, local_search, ticket_seed, CheckpointConfig, CommunityState, HaltingConfig, Oca,
    OcaConfig, SearchConfig, SeedStrategy,
};
use oca_bench::{peak_rss_bytes, results_dir, Args, Table};
use oca_gen::{barabasi_albert, daisy_tree, lfr, DaisyParams, LfrParams};
use oca_graph::{Cover, CsrGraph, NodeId};
use oca_metrics::{omega_index, theta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Measurements of the isolated ascent loop on one graph.
struct AscentStats {
    ascents: usize,
    moves: usize,
    total_ns: u128,
    ns_per_move: f64,
    moves_per_sec: f64,
}

/// Measurements of one end-to-end single-thread detection, including the
/// per-phase wall-clock breakdown (`OcaResult::phases`) so off-ascent
/// regressions — dedup, merging, orphan assignment — are visible and
/// gateable on their own, not just inside `end_to_end_secs`.
struct EndToEndStats {
    secs: f64,
    seeds_tried: usize,
    communities: usize,
    coverage: f64,
    halt: &'static str,
    ascent_ns: u64,
    dedup_ns: u64,
    merge_ns: u64,
    orphan_ns: u64,
}

/// One benchmark case: a (family, n) pair with both measurements. The
/// quality deltas are the θ / omega-index of the budgeted cover against
/// an unbudgeted reference run on the same graph — recorded for ba-hub
/// cases small enough that the reference is affordable, so the speedup
/// numbers always travel with proof they did not buy speed with quality.
struct Case {
    family: &'static str,
    nodes: usize,
    edges: usize,
    ascent: AscentStats,
    end_to_end: EndToEndStats,
    theta_vs_unbudgeted: Option<f64>,
    omega_vs_unbudgeted: Option<f64>,
    ckpt: Option<CkptLeg>,
}

/// Checkpoint telemetry from a second, checkpointed end-to-end run
/// (`Detection`'s `ckpt_*` counters), recorded for the lfr family so the
/// steady-state cost of `--checkpoint` travels with the hot-path numbers.
struct CkptLeg {
    rounds: u64,
    last_bytes: u64,
    last_write_ns: u64,
    total_write_ns: u64,
    overhead_pct: f64,
}

/// Moves after which the isolated-ascent loop stops early: plenty for a
/// stable ns/move, and it keeps families whose ascents swallow huge sets
/// (BA has no community structure to stop at) from dominating wall-clock.
const MOVE_BUDGET: usize = 4_000_000;

/// Times up to `max_ascents` isolated greedy ascents from the
/// deterministic ticket stream, reusing one `CommunityState` (steady
/// state: no allocation after warm-up). The move count is the unit of the
/// ns/move metric; the loop stops early at [`MOVE_BUDGET`] moves.
fn bench_ascents(graph: &CsrGraph, max_ascents: usize, seed: u64) -> AscentStats {
    let mut state = CommunityState::new(graph, 0.8);
    let config = SearchConfig::default();
    let strategy = SeedStrategy::default();
    let n = graph.node_count() as u32;
    let mut moves = 0usize;
    let mut ascents = 0usize;
    // Warm-up: touch the buffers once so first-use page faults and
    // bucket-table growth stay out of the timed region.
    let mut rng = StdRng::seed_from_u64(ticket_seed(seed, u64::MAX));
    let warm = initial_set(strategy, graph, NodeId(rng.random_range(0..n)), &mut rng);
    local_search(&mut state, &warm, &config);

    let start = Instant::now();
    for ticket in 0..max_ascents as u64 {
        let mut rng = StdRng::seed_from_u64(ticket_seed(seed, ticket));
        let v = NodeId(rng.random_range(0..n));
        let initial = initial_set(strategy, graph, v, &mut rng);
        let outcome = local_search(&mut state, &initial, &config);
        moves += outcome.moves;
        ascents += 1;
        if moves >= MOVE_BUDGET {
            break;
        }
    }
    let total_ns = start.elapsed().as_nanos();
    AscentStats {
        ascents,
        moves,
        total_ns,
        ns_per_move: total_ns as f64 / (moves as f64).max(1.0),
        moves_per_sec: moves as f64 / (total_ns as f64 / 1e9).max(1e-12),
    }
}

/// The hub-pruning threshold the registry's tuned preset derives from the
/// graph: 8x the average degree, floored at 64. Pinned here (rather than
/// calling through `oca-api`) for the same reason as the halting values
/// below — the bench workload must stay comparable across preset retunes.
fn hub_prune_degree(graph: &CsrGraph) -> usize {
    let n = graph.node_count().max(1);
    (8 * (2 * graph.edge_count() / n)).max(64)
}

/// The ascent budget / covered-hub pruning settings of the registry's
/// tuned preset, pinned explicitly. This is the configuration whose
/// end-to-end numbers the bench records and gates: the library default
/// (budgets off) is the *reference* the quality deltas compare against.
fn tuned_search(graph: &CsrGraph) -> SearchConfig {
    SearchConfig {
        budget_factor: 64.0,
        prune_hub_degree: hub_prune_degree(graph),
        ..SearchConfig::default()
    }
}

/// Runs the full single-thread OCA pipeline (spectral `c`, seeded ascents,
/// dedup, halting, merge postprocessing) — the Fig. 5/6 measurement.
/// Returns the cover alongside the timings so callers can score it
/// against a reference run.
fn e2e_config(n: usize, seed: u64, search: SearchConfig) -> OcaConfig {
    OcaConfig {
        search,
        halting: HaltingConfig {
            max_seeds: (4 * n).max(100),
            target_coverage: 0.99,
            stagnation_limit: 200,
            // The duplicate-streak and seed-efficiency criteria: hub
            // graphs whose ascents can only rediscover known communities —
            // or trickle one or two covered nodes per dozens of full-cost
            // ascents — stop here instead of burning the whole seed budget
            // (DESIGN.md §4a). The values mirror the registry's tuned
            // preset but are pinned explicitly: the bench's workload (and
            // its committed baseline) must stay comparable across preset
            // retunes.
            stagnation_streak: 500,
            seeds_per_covered: 0.15,
        },
        rng_seed: seed,
        threads: 1,
        ..Default::default()
    }
}

fn bench_end_to_end(graph: &CsrGraph, seed: u64, search: SearchConfig) -> (EndToEndStats, Cover) {
    let result = Oca::new(e2e_config(graph.node_count(), seed, search)).run(graph);
    let stats = EndToEndStats {
        secs: result.elapsed.as_secs_f64(),
        seeds_tried: result.seeds_tried,
        communities: result.cover.len(),
        coverage: result.cover.coverage(),
        halt: result.halt_reason.map_or("none", |r| r.label()),
        ascent_ns: result.phases.ascent_ns,
        dedup_ns: result.phases.dedup_ns,
        merge_ns: result.phases.merge_ns,
        orphan_ns: result.phases.orphan_ns,
    };
    (stats, result.cover)
}

/// Largest lfr size for which the checkpointed second end-to-end leg is
/// repeated on every bench invocation. The leg doubles that case's e2e
/// cost, so the million-node point is left to `resume_chaos`.
const CKPT_LEG_MAX_NODES: usize = 200_000;

/// Reruns the end-to-end detection with `--checkpoint`-equivalent wiring
/// (every round, to a scratch path the completed run then removes) and
/// returns the driver's `ckpt_*` telemetry. The cover must be untouched:
/// checkpointing is pure observation plus I/O.
fn bench_checkpointed(graph: &CsrGraph, seed: u64, search: SearchConfig, plain: &Cover) -> CkptLeg {
    let path = std::env::temp_dir().join(format!(
        "oca_hotpath_{}_{}.ockpt",
        std::process::id(),
        graph.node_count()
    ));
    let result = Oca::new(OcaConfig {
        checkpoint: Some(CheckpointConfig::at(&path)),
        ..e2e_config(graph.node_count(), seed, search)
    })
    .run(graph);
    assert_eq!(
        &result.cover, plain,
        "checkpointing must not change the cover"
    );
    let stats = result.checkpoint;
    CkptLeg {
        rounds: stats.rounds_checkpointed,
        last_bytes: stats.last_bytes,
        last_write_ns: stats.last_write_ns,
        total_write_ns: stats.total_write_ns,
        overhead_pct: 100.0 * stats.total_write_ns as f64
            / (result.elapsed.as_nanos() as f64).max(1.0),
    }
}

/// Largest ba-hub size for which the unbudgeted reference run is cheap
/// enough to repeat on every bench invocation. Above this the reference
/// would dominate wall-clock (it is the multi-minute regime the budgets
/// exist to avoid), so the quality fields come from the smaller cases.
const QUALITY_REF_MAX_NODES: usize = 30_000;

/// The graph families of the bench. Daisy scales by *flower count*
/// (200-node flowers in a daisy tree), keeping community size constant as
/// n grows — the regime of the paper's Fig. 6 flat curve. `ba-hub`
/// doubles Barabási–Albert's attachment count: denser hubs mean more
/// ascents converging to overlapping near-duplicates, which is exactly
/// the workload that stresses dedup and merge rather than the ascent
/// inner loop (the regression class this bench phase-times).
fn make_graph(family: &str, n: usize, seed: u64) -> CsrGraph {
    match family {
        "lfr" => lfr(&LfrParams::timing(n, 20, 100, seed)).graph,
        "ba" => {
            let mut rng = StdRng::seed_from_u64(seed);
            barabasi_albert(n, 8, &mut rng)
        }
        "ba-hub" => {
            let mut rng = StdRng::seed_from_u64(seed);
            barabasi_albert(n, 16, &mut rng)
        }
        "daisy" => {
            let flower = 200.min(n.max(10));
            let k = (n / flower).saturating_sub(1);
            daisy_tree(&DaisyParams::default_shape(flower), k, 0.3, seed).graph
        }
        other => panic!("unknown family {other:?}"),
    }
}

/// A previously recorded case, parsed from the baseline JSON. The phase
/// fields are 0 when the baseline predates phase timing (pre-phase
/// snapshots stay comparable for ns/move and end-to-end).
struct BaselineCase {
    family: String,
    nodes: usize,
    ns_per_move: f64,
    end_to_end_secs: f64,
    dedup_ns: u64,
    merge_ns: u64,
    theta_vs_unbudgeted: Option<f64>,
}

/// Minimal extraction of the fields the gate needs from a prior run's
/// JSON (written by this binary, so the shape is known; no JSON crate in
/// the sanctioned dependency set).
fn json_number(chunk: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = chunk.find(&pat)? + pat.len();
    let rest = chunk[at..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_baseline(text: &str) -> Vec<BaselineCase> {
    let mut out = Vec::new();
    for chunk in text.split("\"family\":").skip(1) {
        let name = chunk.split('"').nth(1).unwrap_or("").to_string();
        if let (Some(nodes), Some(npm), Some(secs)) = (
            json_number(chunk, "nodes"),
            json_number(chunk, "ns_per_move"),
            json_number(chunk, "end_to_end_secs"),
        ) {
            out.push(BaselineCase {
                family: name,
                nodes: nodes as usize,
                ns_per_move: npm,
                end_to_end_secs: secs,
                dedup_ns: json_number(chunk, "dedup_ns").map_or(0, |v| v as u64),
                merge_ns: json_number(chunk, "merge_ns").map_or(0, |v| v as u64),
                theta_vs_unbudgeted: json_number(chunk, "theta_vs_unbudgeted"),
            });
        }
    }
    out
}

fn json_case(case: &Case, baseline: Option<&BaselineCase>, last: bool) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "    {{\"family\": \"{}\", \"nodes\": {}, \"edges\": {}, \
         \"ascents\": {}, \"moves\": {}, \"ascent_total_ns\": {}, \
         \"ns_per_move\": {:.2}, \"moves_per_sec\": {:.0}, \
         \"end_to_end_secs\": {:.6}, \"seeds_tried\": {}, \"communities\": {}, \
         \"coverage\": {:.4}, \"halt\": \"{}\"",
        case.family,
        case.nodes,
        case.edges,
        case.ascent.ascents,
        case.ascent.moves,
        case.ascent.total_ns,
        case.ascent.ns_per_move,
        case.ascent.moves_per_sec,
        case.end_to_end.secs,
        case.end_to_end.seeds_tried,
        case.end_to_end.communities,
        case.end_to_end.coverage,
        case.end_to_end.halt,
    );
    let _ = write!(
        out,
        ", \"ascent_ns\": {}, \"dedup_ns\": {}, \"merge_ns\": {}, \"orphan_ns\": {}",
        case.end_to_end.ascent_ns,
        case.end_to_end.dedup_ns,
        case.end_to_end.merge_ns,
        case.end_to_end.orphan_ns,
    );
    if let (Some(th), Some(om)) = (case.theta_vs_unbudgeted, case.omega_vs_unbudgeted) {
        let _ = write!(
            out,
            ", \"theta_vs_unbudgeted\": {th:.4}, \"omega_vs_unbudgeted\": {om:.4}",
        );
    }
    if let Some(c) = &case.ckpt {
        let _ = write!(
            out,
            ", \"ckpt_rounds\": {}, \"ckpt_last_bytes\": {}, \"ckpt_last_write_ns\": {}, \
             \"ckpt_total_write_ns\": {}, \"ckpt_overhead_pct\": {:.3}",
            c.rounds, c.last_bytes, c.last_write_ns, c.total_write_ns, c.overhead_pct,
        );
    }
    if let Some(b) = baseline {
        let _ = write!(
            out,
            ", \"before_ns_per_move\": {:.2}, \"ns_per_move_ratio\": {:.3}, \
             \"before_end_to_end_secs\": {:.6}, \"end_to_end_speedup\": {:.3}",
            b.ns_per_move,
            case.ascent.ns_per_move / b.ns_per_move.max(1e-9),
            b.end_to_end_secs,
            b.end_to_end_secs / case.end_to_end.secs.max(1e-9),
        );
        if b.dedup_ns + b.merge_ns > 0 {
            let _ = write!(
                out,
                ", \"before_dedup_ns\": {}, \"before_merge_ns\": {}",
                b.dedup_ns, b.merge_ns,
            );
        }
    }
    out.push('}');
    if !last {
        out.push(',');
    }
    out.push('\n');
    out
}

fn main() {
    let args = Args::parse();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let write_baseline = std::env::args().any(|a| a == "--write-baseline");
    let seed: u64 = args.get_strict("seed", 42);
    // Smoke mode only changes the default; an explicit --sizes still wins
    // (same convention as parallel_scaling's --nodes).
    let default_sizes = if smoke {
        "3000"
    } else {
        "10000,100000,1000000"
    };
    let sizes: Vec<usize> = {
        let raw: String = args.get("sizes", default_sizes.to_string());
        raw.split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|_| {
                    eprintln!("error: invalid value for --sizes: {raw:?}");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    let baseline_path: String = args.get(
        "baseline",
        results_dir()
            .join("BENCH_hotpath_baseline.json")
            .display()
            .to_string(),
    );
    let baseline_text = std::fs::read_to_string(&baseline_path).unwrap_or_default();
    let baseline = parse_baseline(&baseline_text);
    // The first occurrence is the top-level field (cases have no RSS key).
    let baseline_rss = json_number(&baseline_text, "peak_rss_bytes").map_or(0, |v| v as u64);

    println!(
        "hot path: sequential ascent loop, sizes {sizes:?}, seed {seed}{}",
        if smoke { " (smoke mode)" } else { "" }
    );

    let families_raw: String = args.get("families", String::new());
    let explicit_families: Option<Vec<String>> = if families_raw.is_empty() {
        None
    } else {
        Some(
            families_raw
                .split(',')
                .map(|f| f.trim().to_string())
                .collect(),
        )
    };

    let mut cases: Vec<Case> = Vec::new();
    for &n in &sizes {
        for family in ["lfr", "ba", "ba-hub", "daisy"] {
            match &explicit_families {
                Some(want) if !want.iter().any(|f| f == family) => continue,
                Some(_) => {}
                // BA variants at the million-node point are opt-in (see
                // module docs).
                None if family.starts_with("ba") && n >= 1_000_000 => {
                    eprintln!(
                        "{family}/{n}: skipped by default (pass --families {family} to include)"
                    );
                    continue;
                }
                None => {}
            }
            eprint!("{family}/{n}: gen");
            let graph = make_graph(family, n, seed);
            // Enough ascents for a stable ns/move without making the 1M
            // point take minutes: the ascent count is capped, the move
            // count reported alongside.
            let ascents = (2 * n).clamp(200, 20_000);
            eprint!(" ascents");
            let ascent = bench_ascents(&graph, ascents, seed);
            eprint!(" e2e");
            let (end_to_end, cover) = bench_end_to_end(&graph, seed, tuned_search(&graph));
            // The quality check: rerun ba-hub with the budgets/pruning off
            // and score the budgeted cover against that reference. Only on
            // the hub family (the one the budgets reshape) and only where
            // the unbudgeted run is affordable.
            let (theta_vs, omega_vs) = if family == "ba-hub" && n <= QUALITY_REF_MAX_NODES {
                eprint!(" ref");
                let (_, reference) = bench_end_to_end(&graph, seed, SearchConfig::default());
                (
                    Some(theta(&reference, &cover)),
                    Some(omega_index(&reference, &cover)),
                )
            } else {
                (None, None)
            };
            // The checkpointed second leg: lfr is the paper's reference
            // family and the one `detect --checkpoint` targets, so its
            // ckpt_* telemetry rides along with the hot-path record.
            let ckpt = if family == "lfr" && n <= CKPT_LEG_MAX_NODES {
                eprint!(" ckpt");
                Some(bench_checkpointed(
                    &graph,
                    seed,
                    tuned_search(&graph),
                    &cover,
                ))
            } else {
                None
            };
            eprintln!(" done ({:.1}s)", end_to_end.secs);
            cases.push(Case {
                family,
                nodes: graph.node_count(),
                edges: graph.edge_count(),
                ascent,
                end_to_end,
                theta_vs_unbudgeted: theta_vs,
                omega_vs_unbudgeted: omega_vs,
                ckpt,
            });
        }
    }
    let peak_rss = peak_rss_bytes();

    let find_baseline = |case: &Case| {
        baseline
            .iter()
            .find(|b| b.family == case.family && b.nodes == case.nodes)
    };

    let mut table = Table::new([
        "graph",
        "nodes",
        "edges",
        "ns/move",
        "moves/s",
        "e2e secs",
        "off-ascent",
        "communities",
        "vs before",
    ]);
    for case in &cases {
        let off_ascent_ns =
            case.end_to_end.dedup_ns + case.end_to_end.merge_ns + case.end_to_end.orphan_ns;
        table.row([
            case.family.to_string(),
            case.nodes.to_string(),
            case.edges.to_string(),
            format!("{:.1}", case.ascent.ns_per_move),
            format!("{:.2e}", case.ascent.moves_per_sec),
            format!("{:.3}", case.end_to_end.secs),
            format!("{:.3}", off_ascent_ns as f64 / 1e9),
            case.end_to_end.communities.to_string(),
            find_baseline(case).map_or("-".to_string(), |b| {
                format!("{:.2}x", b.end_to_end_secs / case.end_to_end.secs.max(1e-9))
            }),
        ]);
    }
    print!("{}", table.render());
    println!("peak RSS: {:.1} MiB", peak_rss as f64 / (1024.0 * 1024.0));

    let mut json = String::from("{\n  \"bench\": \"hot_path\",\n");
    let _ = write!(
        json,
        "  \"mode\": \"{}\",\n  \"meta\": {},\n  \"rng_seed\": {seed},\n  \"peak_rss_bytes\": {peak_rss},\n",
        if smoke { "smoke" } else { "full" },
        oca_bench::run_meta_json(&format!(
            "lfr/ba/ba-hub/daisy sweep, sizes {sizes:?}"
        )),
    );
    if baseline_rss > 0 {
        let _ = writeln!(
            json,
            "  \"before_peak_rss_bytes\": {baseline_rss}, \"peak_rss_ratio\": {:.3},",
            peak_rss as f64 / baseline_rss as f64,
        );
    }
    json.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        json.push_str(&json_case(case, find_baseline(case), i + 1 == cases.len()));
    }
    json.push_str("  ]\n}\n");

    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("could not create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let name = if write_baseline {
        "BENCH_hotpath_baseline.json"
    } else {
        "BENCH_hotpath.json"
    };
    let path = dir.join(name);
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    // Regression gate: ns/move must stay within 25% of the baseline
    // snapshot for every case the baseline also measured, and the
    // off-ascent phases (dedup + merge) must not blow up either — the
    // BA-100k collapse this bench was extended for sat entirely outside
    // ns/move. Phase wall-clock is noisier than ns/move, so its gate is
    // wider: fail only past 1.5x the baseline plus a 10 ms grace (tiny
    // smoke-mode phases never trip on jitter, a reintroduced quadratic
    // sweep still does). The gate never passes vacuously: zero matches
    // against a non-empty baseline is a misconfigured snapshot (e.g. a
    // full-mode baseline checked against a smoke run) and fails in smoke
    // mode rather than silently gating nothing.
    let mut regressed = false;
    let mut matched = 0usize;
    for case in &cases {
        if let Some(b) = find_baseline(case) {
            matched += 1;
            let ratio = case.ascent.ns_per_move / b.ns_per_move.max(1e-9);
            if ratio > 1.25 {
                eprintln!(
                    "REGRESSION: {}/{} ns/move {:.1} vs baseline {:.1} ({:.2}x > 1.25x)",
                    case.family, case.nodes, case.ascent.ns_per_move, b.ns_per_move, ratio
                );
                regressed = true;
            }
            let off_ascent = case.end_to_end.dedup_ns + case.end_to_end.merge_ns;
            let before = b.dedup_ns + b.merge_ns;
            if before > 0 && off_ascent > before + before / 2 + 10_000_000 {
                eprintln!(
                    "REGRESSION: {}/{} dedup+merge {:.1}ms vs baseline {:.1}ms (> 1.5x + 10ms)",
                    case.family,
                    case.nodes,
                    off_ascent as f64 / 1e6,
                    before as f64 / 1e6,
                );
                regressed = true;
            }
            // Hub-stress gate: the budgeted ba-hub end-to-end must hold
            // both the wall-clock win (within 2x baseline + 1 s grace for
            // small-case jitter) and the quality floor (θ against the
            // unbudgeted reference no more than 0.10 below the baseline's).
            if case.family == "ba-hub" {
                if case.end_to_end.secs > 2.0 * b.end_to_end_secs + 1.0 {
                    eprintln!(
                        "REGRESSION: {}/{} end-to-end {:.2}s vs baseline {:.2}s (> 2x + 1s)",
                        case.family, case.nodes, case.end_to_end.secs, b.end_to_end_secs,
                    );
                    regressed = true;
                }
                if let (Some(th), Some(before_th)) =
                    (case.theta_vs_unbudgeted, b.theta_vs_unbudgeted)
                {
                    if th < before_th - 0.10 {
                        eprintln!(
                            "REGRESSION: {}/{} theta_vs_unbudgeted {:.3} vs baseline {:.3} \
                             (quality floor is baseline - 0.10)",
                            case.family, case.nodes, th, before_th,
                        );
                        regressed = true;
                    }
                }
            }
        }
    }
    if regressed {
        std::process::exit(1);
    }
    if baseline.is_empty() {
        println!("regression gate: no baseline at {baseline_path} — nothing compared");
    } else if matched == 0 {
        eprintln!(
            "regression gate: baseline {baseline_path} matched none of the {} cases \
             (regenerate it with the sizes this run used, e.g. --smoke --write-baseline)",
            cases.len()
        );
        if smoke {
            std::process::exit(1);
        }
    } else {
        println!("regression gate: PASS ({matched} cases within 25% of baseline ns/move)");
    }
}
