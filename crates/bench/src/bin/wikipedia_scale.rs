//! The Wikipedia experiment: OCA on a web-scale graph.
//!
//! The paper runs OCA on the 2009 Wikipedia link graph (16,986,429 nodes,
//! 176,454,501 edges) and "found all relevant communities in less than
//! 3.25 hours" on a 2.83 GHz core with ~2.5 GB of RAM. The snapshot is not
//! redistributable, so this binary substitutes a Wikipedia-*like* graph —
//! scale-free R-MAT background plus planted dense cores, the "relevant
//! communities" — and reports throughput plus how many of the planted
//! cores OCA recovers (see DESIGN.md §3).
//!
//! ```text
//! cargo run -p oca-bench --release --bin wikipedia_scale -- --scale 20 --threads 4
//! ```

use oca::{HaltingConfig, Oca, OcaConfig};
use oca_bench::{Args, Table};
use oca_gen::{wiki_like, WikiLikeParams};
use oca_metrics::average_f1;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let scale: u32 = args.get_strict("scale", 18); // 2^18 = 262k nodes by default
    let threads: usize = args.get_strict("threads", 1);
    let seed: u64 = args.get_strict("seed", 42);
    if threads == 0 {
        eprintln!("error: --threads must be at least 1");
        std::process::exit(2);
    }

    println!("Wikipedia-scale reproduction: OCA on a wiki-like graph (2^{scale} nodes)");
    let gen_start = Instant::now();
    let bench = wiki_like(&WikiLikeParams::at_scale(scale, seed));
    println!(
        "generated: {} nodes, {} edges, {} planted cores in {:.1}s",
        bench.graph.node_count(),
        bench.graph.edge_count(),
        bench.planted.len(),
        gen_start.elapsed().as_secs_f64()
    );

    let default_seeds = 30 * bench.planted.len().max(100);
    let seeds: usize = args.get("seeds", default_seeds);
    let config = OcaConfig {
        halting: HaltingConfig {
            max_seeds: seeds,
            // Most nodes legitimately belong to no community (paper,
            // Section IV), so halting rides on stagnation, not coverage.
            target_coverage: 0.5,
            stagnation_limit: 10 * bench.planted.len().max(50),
            ..Default::default()
        },
        threads,
        rng_seed: seed,
        ..Default::default()
    };
    let result = Oca::new(config).run(&bench.graph);
    let recovery = average_f1(&bench.planted, &result.cover);

    let mut table = Table::new(["metric", "value"]);
    table.row(["nodes".to_string(), bench.graph.node_count().to_string()]);
    table.row(["edges".to_string(), bench.graph.edge_count().to_string()]);
    table.row(["threads".to_string(), threads.to_string()]);
    table.row(["c (spectral)".to_string(), format!("{:.5}", result.c)]);
    table.row([
        "lambda_min".to_string(),
        format!("{:.3}", result.lambda_min),
    ]);
    table.row(["seeds tried".to_string(), result.seeds_tried.to_string()]);
    table.row(["planted cores".to_string(), bench.planted.len().to_string()]);
    table.row([
        "communities found".to_string(),
        result.cover.len().to_string(),
    ]);
    table.row(["recovery F1".to_string(), format!("{recovery:.3}")]);
    table.row([
        "total secs".to_string(),
        format!("{:.1}", result.elapsed.as_secs_f64()),
    ]);
    let nodes_per_sec = bench.graph.node_count() as f64 / result.elapsed.as_secs_f64();
    table.row(["nodes/sec".to_string(), format!("{nodes_per_sec:.0}")]);
    table.row([
        "extrapolated hours for 1.7e7 nodes".to_string(),
        format!("{:.2}", 16_986_429.0 / nodes_per_sec / 3600.0),
    ]);
    print!("{}", table.render());
    println!("\npaper reference: all relevant communities of Wikipedia in < 3.25 h.");
    match table.write_csv("wikipedia_scale") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
