//! The Wikipedia experiment at true scale: streaming `.ocg` build plus
//! OCA detection on a 100M+-edge graph, with peak-RSS gates.
//!
//! The paper runs OCA on the 2009 Wikipedia link graph (16,986,429 nodes,
//! 176,454,501 edges) and "found all relevant communities in less than
//! 3.25 hours" on a 2.83 GHz core with ~2.5 GB of RAM. The snapshot is not
//! redistributable, so this bench substitutes a Wikipedia-*like* graph —
//! scale-free R-MAT background plus planted dense cores — at a comparable
//! edge count, and exercises the storage layer the way that experiment
//! demands: the graph is *streamed* from the generator through the
//! external-memory `.ocg` builder (never materializing the edge list in
//! RAM), then detected on twice — once memory-mapped, once copied into
//! owned heap storage — and the two covers must match bit for bit.
//!
//! Because `VmHWM` is a per-process high-water mark, each measured phase
//! — build, full-file verify, detect-mmap, detect-ram — runs in its own
//! subprocess (the binary re-execs itself with `--phase`) and reports a
//! JSON fragment; the parent combines the fragments into
//! `results/BENCH_scale.json` and enforces three gates:
//!
//! 1. the builder's peak RSS stays within the configured chunk budget
//!    (the external-memory claim),
//! 2. the mmap path's load-peak RSS stays under a fixed fraction of the
//!    in-RAM path's (the zero-copy claim),
//! 3. the mmap and in-RAM covers are bit-identical (the storage layer is
//!    invisible to detection).
//!
//! ```text
//! cargo run -p oca-bench --release --bin wikipedia_scale -- --smoke
//! cargo run -p oca-bench --release --bin wikipedia_scale -- --scale 23 --edge-factor 16
//! ```

use oca::{HaltingConfig, Oca, OcaConfig};
use oca_bench::{peak_rss_bytes, results_dir, run_meta_json, Args, Table};
use oca_gen::{wiki_like_edges, WikiLikeParams};
use oca_graph::{
    build_ocg_from_emitter, open_ocg_path, read_cover_path, verify_ocg_path, write_cover_path,
    BuildOptions, Cover,
};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// The CI gate: the mmap path may use at most this fraction of the in-RAM
/// path's load-peak RSS. Opening a `.ocg` is O(1) and touches no payload
/// pages, so the mmap side is expected to sit far below this.
const MAX_LOAD_RSS_FRACTION: f64 = 0.75;

/// The full (non-smoke) run must reach this many deduplicated edges to
/// count as a Wikipedia-scale reproduction.
const FULL_MIN_EDGES: u64 = 100_000_000;

/// Everything a phase needs, resolved once by the parent and passed to
/// children explicitly so all processes agree on the configuration.
#[derive(Debug, Clone)]
struct Params {
    smoke: bool,
    scale: u32,
    edge_factor: usize,
    seed: u64,
    seeds: usize,
    threads: usize,
    chunk_edges: usize,
    dir: PathBuf,
    keep: bool,
}

impl Params {
    fn ocg_path(&self) -> PathBuf {
        self.dir.join(format!("wiki_scale_{}.ocg", self.scale))
    }

    fn planted_path(&self) -> PathBuf {
        self.dir.join(format!("wiki_scale_{}.planted", self.scale))
    }

    fn fragment_path(&self, phase: &str) -> PathBuf {
        self.dir.join(format!("fragment-{phase}.json"))
    }

    fn min_edges(&self) -> u64 {
        if self.smoke {
            0
        } else {
            FULL_MIN_EDGES
        }
    }
}

/// The builder's RSS allowance: two chunk buffers' worth of packed edges
/// (ingest and scatter generations), the per-node arrays (degrees,
/// permutation, offsets, plus the generator's shuffle pool), and a fixed
/// slack for the runtime, spill buffers, and allocator overhead. The
/// point is what the formula *excludes*: any term proportional to the
/// edge count — edges must live on disk, not in RAM.
fn builder_rss_budget(chunk_edges: usize, nodes: usize) -> u64 {
    16 * chunk_edges as u64 + 24 * nodes as u64 + 256 * 1024 * 1024
}

fn main() {
    let args = Args::parse();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let keep = std::env::args().any(|a| a == "--keep");
    let default_dir = results_dir()
        .parent()
        .map(|root| root.join("target").join("wikipedia_scale"))
        .unwrap_or_else(|| PathBuf::from("target/wikipedia_scale"));
    let params = Params {
        smoke,
        scale: args.get_strict("scale", if smoke { 16 } else { 23 }),
        edge_factor: args.get_strict("edge-factor", if smoke { 10 } else { 16 }),
        seed: args.get_strict("seed", 42),
        seeds: args.get_strict("seeds", if smoke { 200 } else { 1000 }),
        threads: args.get_strict("threads", 1),
        chunk_edges: args.get_strict("chunk-edges", if smoke { 1 << 16 } else { 8 << 20 }),
        dir: args.get_strict("dir", default_dir),
        keep,
    };
    if params.threads == 0 {
        eprintln!("error: --threads must be at least 1");
        std::process::exit(2);
    }

    let phase: String = args.get_strict("phase", String::new());
    if !phase.is_empty() {
        run_phase(&phase, &params);
    } else {
        orchestrate(&params);
    }
}

// ---------------------------------------------------------------------------
// Parent: drive the phases, combine fragments, enforce gates.
// ---------------------------------------------------------------------------

fn orchestrate(p: &Params) {
    println!(
        "Wikipedia-scale gate: streamed .ocg build + OCA on 2^{} nodes (edge factor {}){}",
        p.scale,
        p.edge_factor,
        if p.smoke { " [smoke]" } else { "" }
    );
    if let Err(e) = std::fs::create_dir_all(&p.dir) {
        eprintln!("error: cannot create {}: {e}", p.dir.display());
        std::process::exit(1);
    }
    let exe = std::env::current_exe().expect("own executable path");
    for phase in ["build", "verify", "detect-mmap", "detect-ram"] {
        std::fs::remove_file(p.fragment_path(phase)).ok();
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(["--phase", phase])
            .args(["--scale", &p.scale.to_string()])
            .args(["--edge-factor", &p.edge_factor.to_string()])
            .args(["--seed", &p.seed.to_string()])
            .args(["--seeds", &p.seeds.to_string()])
            .args(["--threads", &p.threads.to_string()])
            .args(["--chunk-edges", &p.chunk_edges.to_string()])
            .args(["--dir", &p.dir.display().to_string()]);
        if p.smoke {
            cmd.arg("--smoke");
        }
        let status = cmd.status().unwrap_or_else(|e| {
            eprintln!("error: could not spawn phase {phase}: {e}");
            std::process::exit(1);
        });
        if !status.success() {
            eprintln!("error: phase {phase} failed ({status})");
            std::process::exit(1);
        }
    }

    let build = read_fragment(p, "build");
    let verify = read_fragment(p, "verify");
    let mmap = read_fragment(p, "detect-mmap");
    let ram = read_fragment(p, "detect-ram");

    // Gate 1: external-memory build stays within its chunk budget.
    let edges = json_number(&build, "edges").unwrap_or(0.0) as u64;
    let build_rss = json_number(&build, "peak_rss_bytes").unwrap_or(0.0) as u64;
    let rss_budget = json_number(&build, "rss_budget_bytes").unwrap_or(0.0) as u64;
    let build_within_budget = build_rss > 0 && build_rss <= rss_budget;
    // Gate 2: the mmap load path uses a fraction of the in-RAM load path.
    let mmap_load = json_number(&mmap, "load_peak_rss_bytes").unwrap_or(0.0);
    let ram_load = json_number(&ram, "load_peak_rss_bytes").unwrap_or(0.0);
    let load_fraction = if ram_load > 0.0 {
        mmap_load / ram_load
    } else {
        f64::INFINITY
    };
    let mmap_load_under_fraction = mmap_load > 0.0 && load_fraction <= MAX_LOAD_RSS_FRACTION;
    // Gate 3: storage choice is invisible to detection.
    let fp_mmap = json_string(&mmap, "cover_fingerprint");
    let fp_ram = json_string(&ram, "cover_fingerprint");
    let covers_bit_identical = fp_mmap.is_some() && fp_mmap == fp_ram;
    // Full runs must actually be at the paper's scale.
    let edges_at_scale = edges >= p.min_edges();

    let passed =
        build_within_budget && mmap_load_under_fraction && covers_bit_identical && edges_at_scale;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"wikipedia_scale\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if p.smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(
        json,
        "  \"meta\": {},",
        run_meta_json(&format!(
            "wiki-like scale={} edge_factor={} seed={}",
            p.scale, p.edge_factor, p.seed
        ))
    );
    let _ = writeln!(
        json,
        "  \"params\": {{\"scale\": {}, \"edge_factor\": {}, \"seed\": {}, \"seeds\": {}, \
         \"threads\": {}, \"chunk_edges\": {}, \"min_edges\": {}}},",
        p.scale,
        p.edge_factor,
        p.seed,
        p.seeds,
        p.threads,
        p.chunk_edges,
        p.min_edges()
    );
    let _ = writeln!(json, "  \"build\": {},", build.trim());
    let _ = writeln!(json, "  \"verify\": {},", verify.trim());
    let _ = writeln!(json, "  \"detect_mmap\": {},", mmap.trim());
    let _ = writeln!(json, "  \"detect_ram\": {},", ram.trim());
    let _ = writeln!(
        json,
        "  \"gates\": {{\"build_within_budget\": {build_within_budget}, \
         \"edges_at_scale\": {edges_at_scale}, \
         \"mmap_load_rss_fraction\": {load_fraction:.4}, \
         \"max_load_rss_fraction\": {MAX_LOAD_RSS_FRACTION}, \
         \"mmap_load_under_fraction\": {mmap_load_under_fraction}, \
         \"covers_bit_identical\": {covers_bit_identical}, \
         \"passed\": {passed}}}"
    );
    json.push('}');
    json.push('\n');

    let out = results_dir().join("BENCH_scale.json");
    std::fs::create_dir_all(results_dir()).ok();
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }

    let gb = 1024.0 * 1024.0 * 1024.0;
    let mut table = Table::new(["metric", "value"]);
    table.row([
        "nodes".to_string(),
        format!("{}", json_number(&build, "nodes").unwrap_or(0.0) as u64),
    ]);
    table.row(["edges".to_string(), edges.to_string()]);
    table.row([
        "build secs".to_string(),
        format!("{:.1}", json_number(&build, "secs").unwrap_or(0.0)),
    ]);
    table.row([
        "build peak RSS".to_string(),
        format!(
            "{:.2} GiB (budget {:.2} GiB)",
            build_rss as f64 / gb,
            rss_budget as f64 / gb
        ),
    ]);
    table.row([
        "verify secs".to_string(),
        format!("{:.1}", json_number(&verify, "secs").unwrap_or(0.0)),
    ]);
    table.row([
        "load RSS mmap/ram".to_string(),
        format!(
            "{:.2} / {:.2} GiB (fraction {:.3} ≤ {MAX_LOAD_RSS_FRACTION})",
            mmap_load / gb,
            ram_load / gb,
            load_fraction
        ),
    ]);
    for (label, frag) in [("detect (mmap)", &mmap), ("detect (ram)", &ram)] {
        table.row([
            format!("{label} secs / F1 / peak RSS"),
            format!(
                "{:.1}s / {:.3} / {:.2} GiB",
                json_number(frag, "secs").unwrap_or(0.0),
                json_number(frag, "recovery_f1").unwrap_or(-1.0),
                json_number(frag, "peak_rss_bytes").unwrap_or(0.0) / gb
            ),
        ]);
    }
    table.row([
        "covers bit-identical".to_string(),
        covers_bit_identical.to_string(),
    ]);
    table.row(["gates passed".to_string(), passed.to_string()]);
    print!("{}", table.render());

    if !p.keep {
        std::fs::remove_file(p.ocg_path()).ok();
        std::fs::remove_file(p.planted_path()).ok();
    }
    for phase in ["build", "verify", "detect-mmap", "detect-ram"] {
        std::fs::remove_file(p.fragment_path(phase)).ok();
    }

    if !passed {
        eprintln!("error: scale gates failed (see {})", out.display());
        std::process::exit(1);
    }
    println!("\npaper reference: all relevant communities of Wikipedia in < 3.25 h.");
}

fn read_fragment(p: &Params, phase: &str) -> String {
    std::fs::read_to_string(p.fragment_path(phase)).unwrap_or_else(|e| {
        eprintln!("error: phase {phase} left no fragment: {e}");
        std::process::exit(1);
    })
}

// ---------------------------------------------------------------------------
// Children: one measured phase per process (VmHWM is a process-wide
// high-water mark, so phases must not share an address space).
// ---------------------------------------------------------------------------

fn run_phase(phase: &str, p: &Params) {
    let fragment = match phase {
        "build" => phase_build(p),
        "verify" => phase_verify(p),
        "detect-mmap" => phase_detect(p, true),
        "detect-ram" => phase_detect(p, false),
        other => {
            eprintln!("error: unknown phase {other:?}");
            std::process::exit(2);
        }
    };
    let path = p.fragment_path(phase);
    if let Err(e) = std::fs::write(&path, fragment) {
        eprintln!("error: could not write {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// Streams the wiki-like generator through the external-memory `.ocg`
/// builder — the edge list never exists in RAM — and writes the planted
/// ground truth beside it for the detect phases to score against.
fn phase_build(p: &Params) -> String {
    let start = Instant::now();
    let params = WikiLikeParams {
        edge_factor: p.edge_factor,
        ..WikiLikeParams::at_scale(p.scale, p.seed)
    };
    let options = BuildOptions {
        chunk_edges: p.chunk_edges,
        min_nodes: 1usize << p.scale,
        // The full audit sweep runs as its own subprocess phase: it pages
        // the whole file through this process's RSS, which would drown
        // the external-memory budget this phase exists to measure.
        verify: false,
        ..BuildOptions::default()
    };
    let (stats, planted) = build_ocg_from_emitter(
        |emit| wiki_like_edges(&params, emit),
        p.ocg_path(),
        &options,
    )
    .unwrap_or_else(|e| {
        eprintln!("error: build failed: {e}");
        std::process::exit(1);
    });
    if let Err(e) = write_cover_path(&planted, p.planted_path()) {
        eprintln!("error: could not save planted cover: {e}");
        std::process::exit(1);
    }
    let secs = start.elapsed().as_secs_f64();
    let peak_rss = peak_rss_bytes();
    let budget = builder_rss_budget(p.chunk_edges, stats.nodes);
    println!(
        "build: {} nodes, {} edges ({} read, {} self-loops, {} duplicates) \
         in {secs:.1}s over {} run(s); peak RSS {:.1} MiB (budget {:.1} MiB)",
        stats.nodes,
        stats.edges,
        stats.edges_read,
        stats.self_loops,
        stats.duplicates,
        stats.ingest_runs,
        peak_rss as f64 / (1024.0 * 1024.0),
        budget as f64 / (1024.0 * 1024.0),
    );
    format!(
        "{{\"nodes\": {}, \"edges\": {}, \"edges_read\": {}, \"self_loops\": {}, \
         \"duplicates\": {}, \"ingest_runs\": {}, \"planted_communities\": {}, \
         \"secs\": {secs:.3}, \"peak_rss_bytes\": {peak_rss}, \"rss_budget_bytes\": {budget}}}",
        stats.nodes,
        stats.edges,
        stats.edges_read,
        stats.self_loops,
        stats.duplicates,
        stats.ingest_runs,
        planted.len(),
    )
}

/// The full O(n+m) audit of the file the build phase wrote: payload
/// checksum against the header, every CSR invariant, permutation check.
/// Its RSS is dominated by paging the whole mapping through — that's why
/// it is not the phase the builder's budget gate measures.
fn phase_verify(p: &Params) -> String {
    let start = Instant::now();
    let info = verify_ocg_path(p.ocg_path()).unwrap_or_else(|e| {
        eprintln!("error: verification failed: {e}");
        std::process::exit(1);
    });
    let secs = start.elapsed().as_secs_f64();
    let peak_rss = peak_rss_bytes();
    println!(
        "verify: checksum + full CSR invariants clean in {secs:.1}s \
         ({} nodes, {} edges, {:.2} GiB file)",
        info.node_count,
        info.edge_count,
        info.byte_len as f64 / (1024.0 * 1024.0 * 1024.0),
    );
    format!(
        "{{\"secs\": {secs:.3}, \"peak_rss_bytes\": {peak_rss}, \
         \"file_bytes\": {}, \"checksum\": \"{:016x}\"}}",
        info.byte_len, info.checksum,
    )
}

/// Loads the built `.ocg` (memory-mapped, or copied into owned heap
/// storage for the in-RAM comparison), runs OCA, and reports recovery
/// against the planted cover plus the load-time and whole-phase RSS peaks.
fn phase_detect(p: &Params, mapped: bool) -> String {
    let storage = if mapped { "mmap" } else { "ram" };
    let ocg = open_ocg_path(p.ocg_path()).unwrap_or_else(|e| {
        eprintln!("error: could not open graph: {e}");
        std::process::exit(1);
    });
    let relabeling = ocg.relabeling().filter(|r| !r.is_identity());
    let graph = if mapped {
        ocg.graph
    } else {
        let owned = ocg.graph.to_owned_storage();
        drop(ocg.graph);
        owned
    };
    // VmHWM here is the cost of *getting the graph into memory*: O(1) for
    // the mapped path (no payload page has been touched), the full copy
    // for the owned path. This is the number gate 2 compares.
    let load_peak_rss = peak_rss_bytes();

    let planted = read_cover_path(graph.node_count(), p.planted_path()).unwrap_or_else(|e| {
        eprintln!("error: could not read planted cover: {e}");
        std::process::exit(1);
    });
    let config = OcaConfig {
        halting: HaltingConfig {
            max_seeds: p.seeds,
            // Most nodes legitimately belong to no community (paper,
            // Section IV), so halting rides on stagnation, not coverage.
            target_coverage: 0.5,
            stagnation_limit: 10 * planted.len().max(50),
            ..Default::default()
        },
        threads: p.threads,
        rng_seed: p.seed,
        ..Default::default()
    };
    let result = Oca::new(config).run(&graph);
    // Detection ran in compact (degree-ordered) ids; the planted truth is
    // in input ids, so cross back before scoring or fingerprinting.
    let cover_input = match &relabeling {
        Some(r) => r.cover_to_original(&result.cover),
        None => result.cover.clone(),
    };
    let recovery = oca_metrics::average_f1(&planted, &cover_input);
    let fingerprint = cover_fingerprint(&cover_input);
    let secs = result.elapsed.as_secs_f64();
    let nodes_per_sec = graph.node_count() as f64 / secs.max(1e-9);
    let peak_rss = peak_rss_bytes();
    println!(
        "detect ({storage}): {} communities from {} seeds in {secs:.1}s \
         (F1 {recovery:.3}, {nodes_per_sec:.0} nodes/s); \
         load RSS {:.1} MiB, peak RSS {:.1} MiB",
        result.cover.len(),
        result.seeds_tried,
        load_peak_rss as f64 / (1024.0 * 1024.0),
        peak_rss as f64 / (1024.0 * 1024.0),
    );
    format!(
        "{{\"storage\": \"{storage}\", \"load_peak_rss_bytes\": {load_peak_rss}, \
         \"peak_rss_bytes\": {peak_rss}, \"secs\": {secs:.3}, \"seeds_tried\": {}, \
         \"communities\": {}, \"recovery_f1\": {recovery:.4}, \
         \"nodes_per_sec\": {nodes_per_sec:.0}, \"cover_fingerprint\": \"{fingerprint}\"}}",
        result.seeds_tried,
        result.cover.len(),
    )
}

/// An order-sensitive FNV-1a digest of a cover's exact community list —
/// two covers fingerprint equally iff they are bit-identical.
fn cover_fingerprint(cover: &Cover) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u32| {
        for byte in word.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(cover.node_count() as u32);
    mix(cover.len() as u32);
    for community in cover.communities() {
        mix(community.len() as u32);
        for &member in community.members() {
            mix(member.raw());
        }
    }
    format!("{hash:016x}")
}

// Minimal extractors for the flat JSON fragments the phases emit (no JSON
// crate in the sanctioned dependency set).

fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = text.find(&needle)? + needle.len();
    let rest = &text[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn json_string(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let start = text.find(&needle)? + needle.len();
    let rest = &text[start..];
    Some(rest[..rest.find('"')?].to_string())
}
