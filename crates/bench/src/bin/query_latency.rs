//! Serving-layer latency bench: stands up `oca-serve` on an LFR graph,
//! drives sustained `query`/`local` load from concurrent clients while a
//! background recompute keeps publishing fresh epochs, and reports exact
//! client-side p50/p99 per endpoint to `results/BENCH_serve.json` (fields
//! documented in README.md).
//!
//! Full mode measures the paper-scale serving target — LFR with one
//! million nodes — and **gates** on `query` p99 ≤ 1 ms: the cover-index
//! lookup path must stay index-speed no matter what the background
//! recompute is doing. `local` latency is reported but not gated (a
//! seeded ascent is real algorithmic work, not an index probe).
//!
//! ```text
//! cargo run -p oca-bench --release --bin query_latency            # LFR-1M
//! cargo run -p oca-bench --release --bin query_latency -- --smoke # 10k CI gate
//! ```

use oca::{CStrategy, HaltingConfig, LocalConfig, OcaConfig, OcaDetector, SearchConfig};
use oca_bench::{results_dir, run_meta_json, Args, Table};
use oca_gen::{lfr, LfrParams};
use oca_graph::{CancelToken, CommunityDetector, DetectContext};
use oca_serve::{Client, RecomputeFn, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cancels the server on scope unwind, so a panicking client thread can
/// never leave `std::thread::scope` waiting on the accept loop forever.
struct CancelOnDrop(CancelToken);

impl Drop for CancelOnDrop {
    fn drop(&mut self) {
        self.0.cancel();
    }
}

/// What one client thread measured: exact per-request nanoseconds.
#[derive(Default)]
struct ClientSamples {
    query_ns: Vec<u64>,
    local_ns: Vec<u64>,
    errors: u64,
}

/// Exact `q`-quantile of a sorted sample, in microseconds.
fn quantile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64 / 1_000.0
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = Args::parse();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed: u64 = args.get_strict("seed", 42);
    let nodes: usize = args.get_strict("nodes", if smoke { 10_000 } else { 1_000_000 });
    let secs: f64 = args.get_strict("secs", if smoke { 2.0 } else { 10.0 });
    // Closed-loop load matched to the host: on an oversubscribed box the
    // bench would otherwise measure scheduler queueing between its own
    // client threads, not serving latency.
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let clients: usize = args.get_strict("clients", host.min(4));
    let workers: usize = args.get_strict("workers", host.clamp(2, 4));
    let recompute_ms: u64 = args.get_strict("recompute-millis", if smoke { 250 } else { 1000 });
    // Sized so a recompute round completes (and so publishes an epoch)
    // well inside the measurement window even on a single busy core.
    let recompute_seeds: usize = args.get_strict("recompute-seeds", if smoke { 200 } else { 400 });
    let fixed_c: f64 = args.get_strict("fixed-c", 0.75);
    // One in `local-every` requests is a seeded ascent; the rest are
    // index lookups — a read-heavy mix, like a deployed cover service.
    let local_every: usize = args.get_strict("local-every", 16).max(1);

    println!(
        "query latency: oca-serve under sustained load, n={nodes}, {clients} clients x {secs}s, \
         {workers} workers, recompute every {recompute_ms}ms{}",
        if smoke { " (smoke mode)" } else { "" }
    );

    let t0 = Instant::now();
    let params = LfrParams::timing(nodes, 500.min(nodes / 2), 700.min(nodes - 1), seed);
    let bench = lfr(&params);
    let graph = Arc::new(bench.graph);
    println!(
        "generated lfr n={} m={} with {} ground-truth communities in {:.1}s",
        graph.node_count(),
        graph.edge_count(),
        bench.ground_truth.len(),
        t0.elapsed().as_secs_f64()
    );

    let config = ServeConfig {
        workers,
        seed,
        recompute_interval: Some(Duration::from_millis(recompute_ms)),
        max_duration: None,
        local: LocalConfig {
            // Fixed c keeps startup graph-size-independent; the serving
            // default budget so a hub query cannot stall a worker.
            c: CStrategy::Fixed(fixed_c),
            search: SearchConfig {
                budget_factor: 64.0,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };
    // The background refresh: a seed-capped OCA pass with the same fixed
    // c as the serving config — c is a property of the static graph, so
    // re-running the spectral power iteration every round would spend
    // the whole window resolving what is already known.
    let recompute: Box<RecomputeFn> = Box::new(move |graph, seed, cancel| {
        let config = OcaConfig {
            halting: HaltingConfig {
                max_seeds: recompute_seeds,
                ..Default::default()
            },
            rng_seed: seed,
            threads: 1,
            c: CStrategy::Fixed(fixed_c),
            ..Default::default()
        };
        let detector = OcaDetector::new(config).map_err(|e| e.to_string())?;
        let mut ctx = DetectContext::new(seed).with_cancel(cancel.clone());
        detector
            .detect(graph, &mut ctx)
            .map(|d| d.cover)
            .map_err(|e| e.to_string())
    });

    let server = Server::new(
        Arc::clone(&graph),
        bench.ground_truth,
        config,
        Some(recompute),
    )
    .unwrap_or_else(|e| panic!("server construction failed: {e}"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let n = graph.node_count() as u64;

    let mut samples: Vec<ClientSamples> = Vec::new();
    let mut report = None;
    std::thread::scope(|scope| {
        let _guard = CancelOnDrop(server.cancel_token());
        let server = &server;
        let run = scope.spawn(move || server.run(listener));
        let load = |id: usize| {
            let mut rng = StdRng::seed_from_u64(seed ^ (0x9E37 + id as u64));
            let mut client = Client::connect(addr).expect("connect");
            let mut out = ClientSamples::default();
            let deadline = Instant::now() + Duration::from_secs_f64(secs);
            let mut i = 0usize;
            while Instant::now() < deadline {
                let v = rng.random_range(0..n);
                i += 1;
                let (line, bucket) = if i % local_every == 0 {
                    (format!("local {v}"), true)
                } else {
                    (format!("query {v}"), false)
                };
                let start = Instant::now();
                let response = client.request(&line).expect("request");
                let nanos = start.elapsed().as_nanos() as u64;
                if bucket {
                    out.local_ns.push(nanos);
                } else {
                    out.query_ns.push(nanos);
                }
                if response.contains("\"ok\":false") {
                    out.errors += 1;
                }
            }
            out
        };
        let handles: Vec<_> = (0..clients)
            .map(|id| scope.spawn(move || load(id)))
            .collect();
        for handle in handles {
            samples.push(handle.join().expect("client thread"));
        }
        let mut control = Client::connect(addr).expect("connect for shutdown");
        let _ = control.request("shutdown").expect("shutdown");
        report = Some(run.join().expect("server thread").expect("server run"));
    });
    let report = report.expect("report");

    let mut query_ns: Vec<u64> = samples.iter().flat_map(|s| s.query_ns.clone()).collect();
    let mut local_ns: Vec<u64> = samples.iter().flat_map(|s| s.local_ns.clone()).collect();
    let errors: u64 = samples.iter().map(|s| s.errors).sum();
    query_ns.sort_unstable();
    local_ns.sort_unstable();
    let total = query_ns.len() + local_ns.len();
    let throughput = total as f64 / secs;

    let mut table = Table::new(["endpoint", "count", "p50_us", "p99_us"]);
    for (name, sorted) in [("query", &query_ns), ("local", &local_ns)] {
        table.row([
            name.to_string(),
            sorted.len().to_string(),
            format!("{:.1}", quantile_us(sorted, 0.50)),
            format!("{:.1}", quantile_us(sorted, 0.99)),
        ]);
    }
    print!("{}", table.render());
    println!(
        "throughput {throughput:.0} req/s over {clients} clients; {} epochs published \
         (final epoch {}); {errors} request errors",
        report.recomputes, report.final_epoch
    );

    let query_p99 = quantile_us(&query_ns, 0.99);
    let pass = query_p99 <= 1_000.0 && errors == 0;

    let mut json = String::from("{\n  \"bench\": \"query_latency\",\n");
    let _ = write!(
        json,
        "  \"mode\": \"{}\",\n  \"meta\": {},\n  \"rng_seed\": {seed},\n",
        if smoke { "smoke" } else { "full" },
        run_meta_json(&format!(
            "lfr-timing n={} communities 500..700 seed {seed}",
            graph.node_count()
        )),
    );
    let _ = writeln!(
        json,
        "  \"nodes\": {}, \"edges\": {},\n  \"workers\": {workers}, \"clients\": {clients}, \
         \"duration_secs\": {secs}, \"local_every\": {local_every},\n  \
         \"recompute_interval_ms\": {recompute_ms}, \"recompute_seed_budget\": {recompute_seeds},\n  \
         \"recomputes_published\": {}, \"final_epoch\": {},",
        graph.node_count(),
        graph.edge_count(),
        report.recomputes,
        report.final_epoch,
    );
    let _ = writeln!(
        json,
        "  \"client_query\": {{\"count\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},\n  \
         \"client_local\": {{\"count\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},\n  \
         \"throughput_req_per_sec\": {throughput:.1}, \"request_errors\": {errors},\n  \
         \"server_requests\": {}, \"server_errors\": {},",
        query_ns.len(),
        quantile_us(&query_ns, 0.50),
        query_p99,
        local_ns.len(),
        quantile_us(&local_ns, 0.50),
        quantile_us(&local_ns, 0.99),
        report.requests,
        report.errors,
    );
    let _ = writeln!(
        json,
        "  \"gate\": {{\"query_p99_limit_us\": 1000.0, \"pass\": {pass}}}\n}}"
    );

    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("could not create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join("BENCH_serve.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    if pass {
        println!("latency gate: PASS (query p99 {query_p99:.1}us <= 1000us, no request errors)");
    } else {
        eprintln!(
            "latency gate: FAIL — query p99 {query_p99:.1}us (limit 1000us), {errors} errors"
        );
        std::process::exit(1);
    }
}
