//! Crash/resume chaos harness for the checkpointed OCA driver: runs the
//! real detection as a subprocess with a `.ockpt` armed, `SIGKILL`s it at
//! random instants, resumes, and repeats — then proves the survivor chain
//! converged to the exact uninterrupted result.
//!
//! Gates (exit 1 on any failure), written to `results/BENCH_resume.json`:
//!
//! * the final resumed cover and `seeds_tried` are **bit-identical** to an
//!   uninterrupted baseline run;
//! * every checkpoint surviving a kill resumes in-process to the same
//!   bit-identical cover (every kill point is verified, not just the last);
//! * zero torn or unreadable checkpoints: whenever the target path exists
//!   after a kill, it parses and verifies in full;
//! * bounded redo: the recorded checkpoint ticket never regresses across
//!   the kill chain, and the final run reports the baseline's seed count;
//! * checkpoint overhead (write time over wall-clock) is at most 5%.
//!
//! ```text
//! cargo run -p oca-bench --release --bin resume_chaos            # 100k full run
//! cargo run -p oca-bench --release --bin resume_chaos -- --smoke # 5k CI gate
//! ```

use oca::{
    checkpoint_summary, CheckpointConfig, CheckpointFaults, Oca, OcaConfig, OcaResult, ResumePolicy,
};
use oca_bench::{results_dir, run_meta_json, Args, Table};
use oca_gen::{lfr, LfrParams};
use oca_graph::CsrGraph;
use oca_serve::persist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

/// The one detection config of the whole harness. Parent baseline, killed
/// children and resumed children must agree on everything in the
/// checkpoint's config binding; `threads` and the checkpoint block are
/// deliberately outside it.
fn detect_config(seed: u64, threads: usize, ckpt: Option<&Path>) -> OcaConfig {
    OcaConfig {
        rng_seed: seed,
        threads,
        batch: 64,
        checkpoint: ckpt.map(|path| CheckpointConfig {
            path: path.to_path_buf(),
            every_rounds: 1,
            resume: ResumePolicy::Strict,
            faults: CheckpointFaults::none(),
        }),
        ..OcaConfig::default()
    }
}

/// Loads the shared `.ocg` graph exactly the way every process in the
/// harness does, so the checkpoint's graph binding always matches.
fn load_graph(ocg: &Path) -> CsrGraph {
    oca_api::GraphSource::from_path(ocg)
        .load()
        .unwrap_or_else(|e| panic!("loading {}: {e}", ocg.display()))
        .graph
}

// ---------------------------------------------------------------------
// Child mode: one (possibly resumed) checkpointed detection run. The
// parent SIGKILLs us at a random instant — or lets us finish, in which
// case we persist the cover and print the telemetry it gates on.
// ---------------------------------------------------------------------

fn run_detect_child(argv: &[String]) -> ! {
    let [ocg, ckpt, out, seed, threads] = argv else {
        eprintln!("usage: --detect-child <graph.ocg> <run.ockpt> <out.cover> <seed> <threads>");
        std::process::exit(2);
    };
    let seed: u64 = seed.parse().expect("seed");
    let threads: usize = threads.parse().expect("threads");
    let graph = load_graph(Path::new(ocg));
    let config = detect_config(seed, threads, Some(Path::new(ckpt)));
    match Oca::new(config).run_ctx(&graph, &oca_graph::DetectContext::new(seed)) {
        Ok(result) => {
            persist::save_cover_path(out, &result.cover, 0.5).expect("save cover");
            println!("seeds_tried={}", result.seeds_tried);
            println!("elapsed_ns={}", result.elapsed.as_nanos());
            println!("ckpt_rounds={}", result.checkpoint.rounds_checkpointed);
            println!("ckpt_total_write_ns={}", result.checkpoint.total_write_ns);
            println!(
                "ckpt_resumed_from={}",
                result.checkpoint.resumed_from_ticket.unwrap_or(0)
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("detect child failed: {e}");
            std::process::exit(2);
        }
    }
}

/// Pulls `key=value` telemetry lines out of a completed child's stdout.
fn child_stat(stdout: &str, key: &str) -> u64 {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// What the parent observed at one kill point.
struct KillRound {
    delay_ms: u64,
    ckpt_present: bool,
    ckpt_readable: bool,
    seeds_at_kill: u64,
    advanced: bool,
    mid_write_debris: u64,
    /// The previous child outran its kill and completed (spending the
    /// checkpoint), so this round started a fresh chain — recorded
    /// progress legitimately resets to zero here.
    fresh_chain: bool,
}

#[allow(clippy::too_many_lines)]
fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if argv.len() >= 2 && argv[1] == "--detect-child" {
        run_detect_child(&argv[2..]);
    }

    let args = Args::parse();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed: u64 = args.get_strict("seed", 42);
    let nodes: usize = args.get_strict("nodes", if smoke { 5_000 } else { 100_000 });
    let kill_rounds: u64 = args.get_strict("kill-rounds", if smoke { 3 } else { 8 });
    let threads: usize = args.get_strict("threads", 2);
    // The paper-scale gate is 5% on LFR-100k. Smoke runs are a fraction
    // of a second of work on a tiny graph, where per-round fsyncs are
    // proportionally enormous and jittery (shared CI hosts); the loose
    // smoke budget still catches pathological per-write cost.
    let overhead_budget_pct = if smoke { 50.0 } else { 5.0 };

    println!(
        "resume_chaos: checkpointed OCA detection under SIGKILL, n={nodes}, \
         {kill_rounds} kill/resume rounds, {threads} threads{}",
        if smoke { " (smoke mode)" } else { "" }
    );

    let work_dir = std::env::temp_dir().join(format!("oca-resume-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&work_dir).expect("work dir");
    let ocg_path = work_dir.join("graph.ocg");
    let ckpt_path = work_dir.join("run.ockpt");
    let out_path = work_dir.join("final.cover");

    // --- Shared graph: generate once, every process mmap-loads the same
    // file, so the checkpoint's graph binding holds across the fleet.
    let t0 = Instant::now();
    let params = LfrParams::timing(nodes, 100.min(nodes / 4), 300.min(nodes - 1), seed);
    let bench = lfr(&params);
    oca_graph::write_ocg_path(
        &bench.graph,
        None,
        oca_graph::BuildReport::default(),
        &ocg_path,
    )
    .expect("write shared ocg");
    drop(bench);
    let graph = load_graph(&ocg_path);
    println!(
        "generated lfr n={} m={} in {:.1}s",
        graph.node_count(),
        graph.edge_count(),
        t0.elapsed().as_secs_f64()
    );

    // --- Baselines: the uninterrupted cover the chain must reproduce,
    // and the checkpoint overhead of an uninterrupted checkpointed run.
    let baseline: OcaResult = Oca::new(detect_config(seed, threads, None)).run(&graph);
    let base_ckpt_path = work_dir.join("baseline.ockpt");
    let ckpt_baseline: OcaResult =
        Oca::new(detect_config(seed, threads, Some(&base_ckpt_path))).run(&graph);
    assert_eq!(
        ckpt_baseline.cover, baseline.cover,
        "checkpointing alone changed the cover"
    );
    let overhead_pct = 100.0 * ckpt_baseline.checkpoint.total_write_ns as f64
        / ckpt_baseline.elapsed.as_nanos().max(1) as f64;
    let baseline_ms = baseline.elapsed.as_millis().max(20) as u64;
    println!(
        "baseline: {} seeds, {} communities in {:.2}s; checkpointed run wrote {} rounds \
         ({} bytes last) for {overhead_pct:.3}% overhead",
        baseline.seeds_tried,
        baseline.cover.len(),
        baseline.elapsed.as_secs_f64(),
        ckpt_baseline.checkpoint.rounds_checkpointed,
        ckpt_baseline.checkpoint.last_bytes,
    );

    // --- Kill chain: spawn the child, SIGKILL it at a random instant,
    // inspect the surviving checkpoint, save a copy, resume. When a kill
    // lands so late the child finished, the chain just starts over.
    let exe = std::env::current_exe().expect("current_exe");
    let spawn = |stdout_piped: bool| {
        let mut cmd = Command::new(&exe);
        cmd.arg("--detect-child")
            .arg(&ocg_path)
            .arg(&ckpt_path)
            .arg(&out_path)
            .arg(seed.to_string())
            .arg(threads.to_string())
            .stderr(std::process::Stdio::inherit());
        cmd.stdout(if stdout_piped {
            std::process::Stdio::piped()
        } else {
            std::process::Stdio::null()
        });
        cmd.spawn().expect("spawn detect child")
    };

    let mut rng = StdRng::seed_from_u64(seed ^ 0x00C0_FFEE);
    let mut rounds: Vec<KillRound> = Vec::new();
    let mut saved_ckpts: Vec<PathBuf> = Vec::new();
    let mut last_seeds = 0u64;
    let mut completions_before_kill = 0u64;
    let mut chain_restarted = false;
    let t_chain = Instant::now();
    while (rounds.len() as u64) < kill_rounds {
        // The child pays its startup (graph load, and on a fresh chain
        // the spectral c resolution) before its first boundary write, so
        // a blind timer mostly kills before any checkpoint exists.
        // Instead: watch the checkpoint until THIS child has written one
        // past the spawn-time state, then dwell a random slice of the
        // remaining work so the kill lands at an arbitrary later instant
        // — usually a later round, sometimes mid-write.
        let seeds_at_spawn = checkpoint_summary(&ckpt_path)
            .map(|s| s.seeds_tried)
            .unwrap_or(0);
        let mut child = spawn(false);
        let t_spawn = Instant::now();
        let watch_cap = Duration::from_secs(120);
        loop {
            if t_spawn.elapsed() > watch_cap {
                break; // kill anyway; the round records whatever survived
            }
            if matches!(child.try_wait(), Ok(Some(_))) {
                break; // completed before advancing — handled below
            }
            let seeds_now = checkpoint_summary(&ckpt_path)
                .map(|s| s.seeds_tried)
                .unwrap_or(0);
            if seeds_now > seeds_at_spawn {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let remaining_ms = baseline_ms
            .saturating_sub(baseline_ms * last_seeds / baseline.seeds_tried.max(1) as u64);
        let dwell_ms = rng.random_range(0..=(remaining_ms.max(10) / 2));
        std::thread::sleep(Duration::from_millis(dwell_ms));
        let delay_ms = t_spawn.elapsed().as_millis() as u64;
        let _ = child.kill();
        // A SIGKILLed child dies on the signal (no exit code); a clean
        // zero exit means the child outran the kill and completed.
        let finished = child.wait().expect("wait").success();
        if finished {
            // The kill lost the race: that child completed and spent the
            // checkpoint. Verify its cover anyway and restart the chain.
            let (cover, _) = persist::load_cover_path(&out_path, Some(graph.node_count()))
                .expect("completed child left a loadable cover");
            assert_eq!(cover, baseline.cover, "early completion diverged");
            completions_before_kill += 1;
            last_seeds = 0;
            chain_restarted = true;
            continue;
        }
        // Temp debris = the kill landed inside an atomic write; the
        // target path itself must still be pristine.
        let mut mid_write_debris = 0u64;
        if let Ok(entries) = std::fs::read_dir(&work_dir) {
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().contains(".tmp.") {
                    mid_write_debris += 1;
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        let ckpt_present = ckpt_path.exists();
        let (ckpt_readable, seeds_at_kill) = if ckpt_present {
            match checkpoint_summary(&ckpt_path) {
                Ok(summary) => (true, summary.seeds_tried),
                Err(e) => {
                    eprintln!("kill round {}: unreadable checkpoint: {e}", rounds.len());
                    (false, last_seeds)
                }
            }
        } else {
            (false, last_seeds)
        };
        let advanced = seeds_at_kill > last_seeds;
        if ckpt_present && ckpt_readable {
            let copy = work_dir.join(format!("kill_{}.ockpt", rounds.len()));
            std::fs::copy(&ckpt_path, &copy).expect("save checkpoint copy");
            saved_ckpts.push(copy);
        }
        println!(
            "kill round {}: delay {delay_ms}ms, checkpoint {}{}",
            rounds.len(),
            if ckpt_present {
                if ckpt_readable {
                    format!("readable ({seeds_at_kill} seeds recorded)")
                } else {
                    "UNREADABLE".to_string()
                }
            } else {
                "absent (killed before the first write)".to_string()
            },
            if mid_write_debris > 0 {
                ", kill landed mid-write"
            } else {
                ""
            }
        );
        rounds.push(KillRound {
            delay_ms,
            ckpt_present,
            ckpt_readable,
            seeds_at_kill,
            advanced,
            mid_write_debris,
            fresh_chain: std::mem::take(&mut chain_restarted),
        });
        last_seeds = seeds_at_kill.max(last_seeds);
    }

    // --- Let the survivor finish: the chain's final resume must land on
    // the uninterrupted result exactly.
    let final_child = spawn(true);
    let output = final_child.wait_with_output().expect("final child");
    assert!(
        output.status.success(),
        "final resumed run failed (status {:?})",
        output.status.code()
    );
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    let final_seeds = child_stat(&stdout, "seeds_tried");
    let final_resumed_from = child_stat(&stdout, "ckpt_resumed_from");
    let (final_cover, _) =
        persist::load_cover_path(&out_path, Some(graph.node_count())).expect("final cover loads");
    let chain_secs = t_chain.elapsed().as_secs_f64();

    // --- Every kill point, not just the last: each saved checkpoint must
    // resume in-process to the identical cover.
    let mut kill_points_verified = 0u64;
    for copy in &saved_ckpts {
        let r = Oca::new(detect_config(
            // A different nominal seed: the checkpoint's recorded seed
            // must win or the resumed schedule diverges.
            seed ^ 0xDEAD_BEEF,
            threads,
            Some(copy),
        ))
        .run(&graph);
        assert_eq!(
            r.cover,
            baseline.cover,
            "resume from {} diverged",
            copy.display()
        );
        assert_eq!(r.seeds_tried, baseline.seeds_tried);
        kill_points_verified += 1;
    }

    // --- Gates ---------------------------------------------------------
    let unreadable = rounds
        .iter()
        .filter(|r| r.ckpt_present && !r.ckpt_readable)
        .count() as u64;
    // Bounded redo: within one chain the recorded boundary never regresses.
    // A `fresh_chain` round (the previous child completed and spent the
    // checkpoint before the kill landed) legitimately resets progress.
    let monotone = rounds
        .windows(2)
        .all(|w| w[1].fresh_chain || w[1].seeds_at_kill >= w[0].seeds_at_kill);
    let bit_identical = final_cover == baseline.cover;
    let seeds_match = final_seeds == baseline.seeds_tried as u64;
    let debris: u64 = rounds.iter().map(|r| r.mid_write_debris).sum();
    let overhead_ok = overhead_pct <= overhead_budget_pct;
    let pass = bit_identical
        && seeds_match
        && unreadable == 0
        && monotone
        && overhead_ok
        && kill_points_verified == saved_ckpts.len() as u64;

    let mut table = Table::new(["round", "delay_ms", "checkpoint", "seeds_at_kill"]);
    for (i, r) in rounds.iter().enumerate() {
        table.row([
            i.to_string(),
            r.delay_ms.to_string(),
            if !r.ckpt_present {
                "absent".to_string()
            } else if r.ckpt_readable {
                "readable".to_string()
            } else {
                "UNREADABLE".to_string()
            },
            r.seeds_at_kill.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "final resume: {} seeds (baseline {}), resumed from ticket {final_resumed_from}, \
         cover bit-identical: {bit_identical}; {kill_points_verified}/{} kill points \
         re-verified; chain took {chain_secs:.1}s",
        final_seeds,
        baseline.seeds_tried,
        saved_ckpts.len()
    );

    // --- JSON ----------------------------------------------------------
    let mut json = String::from("{\n  \"bench\": \"resume_chaos\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",\n  \"meta\": {},\n  \"rng_seed\": {seed},",
        if smoke { "smoke" } else { "full" },
        run_meta_json(&format!("lfr-timing n={} seed {seed}", graph.node_count())),
    );
    let _ = writeln!(
        json,
        "  \"nodes\": {}, \"edges\": {}, \"threads\": {threads}, \"kill_rounds\": {},",
        graph.node_count(),
        graph.edge_count(),
        rounds.len(),
    );
    let _ = writeln!(
        json,
        "  \"baseline\": {{\"seeds_tried\": {}, \"communities\": {}, \
         \"elapsed_secs\": {:.3}, \"halt\": \"{}\"}},",
        baseline.seeds_tried,
        baseline.cover.len(),
        baseline.elapsed.as_secs_f64(),
        baseline.halt_reason.map_or("none", |r| r.label()),
    );
    let _ = writeln!(
        json,
        "  \"checkpointed_baseline\": {{\"ckpt_rounds\": {}, \"ckpt_last_bytes\": {}, \
         \"ckpt_last_write_ns\": {}, \"ckpt_total_write_ns\": {}, \
         \"elapsed_secs\": {:.3}, \"overhead_pct\": {overhead_pct:.4}}},",
        ckpt_baseline.checkpoint.rounds_checkpointed,
        ckpt_baseline.checkpoint.last_bytes,
        ckpt_baseline.checkpoint.last_write_ns,
        ckpt_baseline.checkpoint.total_write_ns,
        ckpt_baseline.elapsed.as_secs_f64(),
    );
    json.push_str("  \"kill_chain\": [\n");
    for (i, r) in rounds.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"round\": {i}, \"delay_ms\": {}, \"ckpt_present\": {}, \
             \"ckpt_readable\": {}, \"seeds_at_kill\": {}, \"advanced\": {}, \
             \"mid_write_kills\": {}, \"fresh_chain\": {}}}{}",
            r.delay_ms,
            r.ckpt_present,
            r.ckpt_readable,
            r.seeds_at_kill,
            r.advanced,
            r.mid_write_debris,
            r.fresh_chain,
            if i + 1 < rounds.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"final_resume\": {{\"seeds_tried\": {final_seeds}, \
         \"resumed_from_ticket\": {final_resumed_from}, \
         \"completions_before_kill\": {completions_before_kill}, \
         \"chain_secs\": {chain_secs:.3}}},",
    );
    let _ = writeln!(
        json,
        "  \"gate\": {{\"bit_identical_cover\": {bit_identical}, \
         \"seeds_match\": {seeds_match}, \"kill_points_verified\": {kill_points_verified}, \
         \"unreadable_checkpoints\": {unreadable}, \"mid_write_kills\": {debris}, \
         \"monotone_progress\": {monotone}, \"overhead_limit_pct\": {overhead_budget_pct}, \
         \"overhead_pct\": {overhead_pct:.4}, \"overhead_ok\": {overhead_ok}, \
         \"pass\": {pass}}}\n}}",
    );

    let _ = std::fs::remove_dir_all(&work_dir);
    let dir: PathBuf = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("could not create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join("BENCH_resume.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    if pass {
        println!(
            "resume gate: PASS ({} kills, {kill_points_verified} kill points verified \
             bit-identical, overhead {overhead_pct:.3}% <= {overhead_budget_pct}%)",
            rounds.len()
        );
    } else {
        eprintln!(
            "resume gate: FAIL — bit_identical {bit_identical}, seeds_match {seeds_match}, \
             unreadable {unreadable}, monotone {monotone}, overhead {overhead_pct:.3}% \
             (limit {overhead_budget_pct}%)"
        );
        std::process::exit(1);
    }
}
