//! Fault-injection harness: stands up `oca-serve` on an LFR graph with
//! every fail point armed — request panics, stalls, worker kills,
//! recompute failures and panics — then drives it simultaneously with
//! well-formed clients (whose responses are the gate) and hostile ones
//! (garbage bytes, oversized lines, torn writes, byte-at-a-time slowpokes,
//! idlers). A separate phase `SIGKILL`s subprocesses mid-`save_cover_path`
//! / mid-`write_ocg_path` and verifies the surviving file every time.
//!
//! Gates (exit 1 on any failure), written to `results/BENCH_chaos.json`:
//!
//! * zero lost or torn responses to well-formed requests — every request
//!   gets exactly one parseable JSON line, even while panics fire;
//! * under-fault `query` p99 within budget (50 ms);
//! * overload burst observes at least one typed `overloaded` fast-reject;
//! * the armed fail points actually fired (the run is not vacuous);
//! * every kill-subprocess round leaves a cover / `.ocg` file that loads
//!   and verifies (old file intact or new file complete).
//!
//! ```text
//! cargo run -p oca-bench --release --bin chaos            # 100k full run
//! cargo run -p oca-bench --release --bin chaos -- --smoke # 5k CI gate
//! ```

use oca::{CStrategy, HaltingConfig, LocalConfig, OcaConfig, OcaDetector, SearchConfig};
use oca_bench::{results_dir, run_meta_json, Args, Table};
use oca_gen::{lfr, LfrParams};
use oca_graph::{from_edges, CancelToken, Community, CommunityDetector, Cover, DetectContext};
use oca_serve::{persist, Client, FaultPlan, FaultSpec, RecomputeFn, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cancels the server on scope unwind so a panicking client thread can
/// never leave `std::thread::scope` waiting on the accept loop forever.
struct CancelOnDrop(CancelToken);

impl Drop for CancelOnDrop {
    fn drop(&mut self) {
        self.0.cancel();
    }
}

/// What one well-formed client measured. Any response that is not exactly
/// one parseable JSON line is `torn`; any I/O failure is `lost`.
#[derive(Default)]
struct ClientTally {
    sent: u64,
    answered: u64,
    lost: u64,
    torn: u64,
    error_responses: u64,
    partial_responses: u64,
    query_ns: Vec<u64>,
    local_ns: Vec<u64>,
    topk_ns: Vec<u64>,
}

/// Exact `q`-quantile of a sorted sample, in milliseconds.
fn quantile_ms(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64 / 1_000_000.0
}

/// Pulls the first `"key":<u64>` out of a flat JSON response.
fn extract_u64(json: &str, key: &str) -> u64 {
    json.split(&format!("\"{key}\":"))
        .nth(1)
        .map(|s| {
            s.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
        })
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

// ---------------------------------------------------------------------
// Crash-writer subprocess modes: write the same file over and over until
// the parent SIGKILLs us. The payloads are deterministic and big enough
// that kills land mid-write.
// ---------------------------------------------------------------------

/// Cover written by the `--crash-writer` child: 200k nodes in 2000-node
/// blocks (~0.8 MB on disk).
fn crash_cover() -> Cover {
    let n = 200_000u32;
    let communities: Vec<Community> = (0..n)
        .step_by(2000)
        .map(|base| Community::from_raw((base..base + 2000).collect::<Vec<_>>()))
        .collect();
    Cover::new(n as usize, communities)
}

/// Ring graph written by the `--crash-writer-ocg` child (~1.6 MB on disk).
fn crash_graph() -> oca_graph::CsrGraph {
    let n = 200_000u32;
    let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    from_edges(n as usize, edges)
}

fn run_crash_writer(mode: &str, path: &str) -> ! {
    match mode {
        "--crash-writer" => {
            let cover = crash_cover();
            loop {
                if let Err(e) = persist::save_cover_path(path, &cover, 0.5) {
                    eprintln!("crash-writer save failed: {e}");
                    std::process::exit(2);
                }
            }
        }
        "--crash-writer-ocg" => {
            let graph = crash_graph();
            loop {
                if let Err(e) =
                    oca_graph::write_ocg_path(&graph, None, oca_graph::BuildReport::default(), path)
                {
                    eprintln!("crash-writer ocg failed: {e}");
                    std::process::exit(2);
                }
            }
        }
        other => {
            eprintln!("unknown crash-writer mode {other}");
            std::process::exit(2);
        }
    }
}

/// One kill-subprocess variant: `rounds` spawn/kill/verify cycles against
/// the same target path, with staggered kill delays so some kills land
/// before the first write, some mid-write, some between writes.
struct CrashOutcome {
    rounds: u64,
    verified: u64,
    temp_debris: u64,
}

fn crash_phase<V>(mode: &str, path: &Path, rounds: u64, verify: V) -> CrashOutcome
where
    V: Fn(&Path) -> Result<(), String>,
{
    let exe = std::env::current_exe().expect("current_exe");
    let dir = path.parent().expect("crash dir");
    let mut verified = 0u64;
    let mut temp_debris = 0u64;
    for round in 0..rounds {
        let mut child = Command::new(&exe)
            .arg(mode)
            .arg(path)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn crash writer");
        // Stagger the kill across the write cycle; the writer loops, so
        // later kills still interrupt *some* write or rename.
        std::thread::sleep(Duration::from_millis(3 + round * 7));
        let _ = child.kill();
        let _ = child.wait();
        // SIGKILL mid-write leaves the temp file behind — evidence the
        // kill landed inside a write, never a damaged target.
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if name.to_string_lossy().contains(".tmp.") {
                    temp_debris += 1;
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        match verify(path) {
            Ok(()) => verified += 1,
            Err(e) => eprintln!("{mode} round {round}: target failed verification: {e}"),
        }
    }
    CrashOutcome {
        rounds,
        verified,
        temp_debris,
    }
}

// ---------------------------------------------------------------------
// Hostile clients. Each runs until the shared deadline, counting the
// connections it abused.
// ---------------------------------------------------------------------

fn chaos_connect(addr: SocketAddr) -> Option<TcpStream> {
    let stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    Some(stream)
}

fn read_response_line(stream: &mut TcpStream) -> Option<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return None,
            Ok(_) if byte[0] == b'\n' => return Some(String::from_utf8_lossy(&line).into_owned()),
            Ok(_) => line.push(byte[0]),
            Err(_) => return None,
        }
    }
}

fn garbage_client(addr: SocketAddr, deadline: Instant, seed: u64, conns: &AtomicU64) {
    let mut rng = StdRng::seed_from_u64(seed);
    while Instant::now() < deadline {
        if let Some(mut stream) = chaos_connect(addr) {
            conns.fetch_add(1, Ordering::Relaxed);
            let mut junk: Vec<u8> = (0..64).map(|_| rng.random_range(0..=255) as u8).collect();
            junk.push(b'\n');
            let _ = stream.write_all(&junk);
            let _ = read_response_line(&mut stream);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn oversized_client(addr: SocketAddr, deadline: Instant, conns: &AtomicU64) {
    let huge = vec![b'a'; 256 * 1024];
    while Instant::now() < deadline {
        if let Some(mut stream) = chaos_connect(addr) {
            conns.fetch_add(1, Ordering::Relaxed);
            let _ = stream.write_all(&huge);
            let _ = stream.write_all(b"\n");
            let _ = read_response_line(&mut stream);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn torn_client(addr: SocketAddr, deadline: Instant, conns: &AtomicU64) {
    while Instant::now() < deadline {
        if let Some(mut stream) = chaos_connect(addr) {
            conns.fetch_add(1, Ordering::Relaxed);
            // Half a request, no newline, then vanish.
            let _ = stream.write_all(b"query 12");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn slow_client(addr: SocketAddr, deadline: Instant, conns: &AtomicU64) {
    while Instant::now() < deadline {
        if let Some(mut stream) = chaos_connect(addr) {
            conns.fetch_add(1, Ordering::Relaxed);
            for &b in b"query 5\n" {
                if stream.write_all(&[b]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            let _ = read_response_line(&mut stream);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn idle_client(addr: SocketAddr, deadline: Instant, idle: Duration, conns: &AtomicU64) {
    while Instant::now() < deadline {
        if let Some(stream) = chaos_connect(addr) {
            conns.fetch_add(1, Ordering::Relaxed);
            // Sit past the idle timeout; the reaper must free the worker.
            std::thread::sleep(idle + Duration::from_millis(200));
            drop(stream);
        }
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    // Crash-writer child modes re-enter here via `current_exe`; they
    // never return.
    let argv: Vec<String> = std::env::args().collect();
    if argv.len() >= 3 && argv[1].starts_with("--crash-writer") {
        run_crash_writer(&argv[1], &argv[2]);
    }

    let args = Args::parse();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed: u64 = args.get_strict("seed", 42);
    let nodes: usize = args.get_strict("nodes", if smoke { 5_000 } else { 100_000 });
    let secs: f64 = args.get_strict("secs", if smoke { 2.5 } else { 8.0 });
    let clients: usize = args.get_strict("clients", if smoke { 2 } else { 4 });
    // Well-formed clients pin one worker each for the whole window, so the
    // pool must be larger than the client count for hostile traffic (and
    // worker kills) to get serviced at all.
    let workers: usize = args.get_strict("workers", clients + 4);
    let crash_rounds: u64 = args.get_strict("crash-rounds", if smoke { 4 } else { 8 });
    let idle_timeout = Duration::from_millis(500);
    let query_budget_ms = 50.0;

    // Injected panics unwind through `catch_unwind` boundaries that print
    // the default hook's backtrace first; silence exactly those so the
    // output stays readable, and keep the default hook for real bugs.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.starts_with("injected"));
        if !injected {
            default_hook(info);
        }
    }));

    println!(
        "chaos: fault-injected oca-serve, n={nodes}, {clients} well-formed clients x {secs}s, \
         {workers} workers, {crash_rounds} kill-subprocess rounds per format{}",
        if smoke { " (smoke mode)" } else { "" }
    );

    // --- Phase 1: kill -9 mid-save, verify the survivor every time -----
    let crash_dir = std::env::temp_dir().join(format!("oca-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&crash_dir).expect("crash dir");
    let cover_path = crash_dir.join("warm.cover");
    let ocg_path = crash_dir.join("graph.ocg");
    // Pre-seed valid "old" files so round 0 kills (before the child's
    // first write completes) still have something that must verify.
    persist::save_cover_path(&cover_path, &crash_cover(), 0.5).expect("seed cover");
    oca_graph::write_ocg_path(
        &crash_graph(),
        None,
        oca_graph::BuildReport::default(),
        &ocg_path,
    )
    .expect("seed ocg");

    let t0 = Instant::now();
    let cover_crash = crash_phase("--crash-writer", &cover_path, crash_rounds, |p| {
        persist::load_cover_path(p, None)
            .map(|_| ())
            .map_err(|e| e.to_string())
    });
    let ocg_crash = crash_phase("--crash-writer-ocg", &ocg_path, crash_rounds, |p| {
        oca_graph::verify_ocg_path(p)
            .map(|_| ())
            .map_err(|e| e.to_string())
    });
    let _ = std::fs::remove_dir_all(&crash_dir);
    println!(
        "crash phase: cover {}/{} verified, ocg {}/{} verified \
         ({} temp debris = kills that landed mid-write) in {:.1}s",
        cover_crash.verified,
        cover_crash.rounds,
        ocg_crash.verified,
        ocg_crash.rounds,
        cover_crash.temp_debris + ocg_crash.temp_debris,
        t0.elapsed().as_secs_f64()
    );

    // --- Phase 2: serve under sustained load with every fault armed ----
    let t1 = Instant::now();
    let params = LfrParams::timing(nodes, 100.min(nodes / 4), 300.min(nodes - 1), seed);
    let bench = lfr(&params);
    let graph = Arc::new(bench.graph);
    println!(
        "generated lfr n={} m={} in {:.1}s",
        graph.node_count(),
        graph.edge_count(),
        t1.elapsed().as_secs_f64()
    );

    let fault_spec = FaultSpec {
        panic_request_every: 89,
        stall_request_every: 127,
        // Longer than the request deadline, so stalled `local`/`topk`
        // requests observably come back as typed partial results.
        stall: Duration::from_millis(30),
        kill_worker_every_conns: 7,
        fail_recompute_every: 3,
        panic_recompute_every: 5,
    };
    let faults = FaultPlan::new(fault_spec);
    let fixed_c = 0.75;
    let config = ServeConfig {
        workers,
        seed,
        recompute_interval: Some(Duration::from_millis(100)),
        max_duration: None,
        max_pending: 64,
        max_line_bytes: 64 * 1024,
        request_deadline: Some(Duration::from_millis(25)),
        idle_timeout: Some(idle_timeout),
        faults: faults.clone(),
        local: LocalConfig {
            c: CStrategy::Fixed(fixed_c),
            search: SearchConfig {
                budget_factor: 64.0,
                ..Default::default()
            },
            ..Default::default()
        },
    };
    let recompute: Box<RecomputeFn> = Box::new(move |graph, seed, cancel| {
        let config = OcaConfig {
            halting: HaltingConfig {
                max_seeds: 100,
                ..Default::default()
            },
            rng_seed: seed,
            threads: 1,
            c: CStrategy::Fixed(fixed_c),
            ..Default::default()
        };
        let detector = OcaDetector::new(config).map_err(|e| e.to_string())?;
        let mut ctx = DetectContext::new(seed).with_cancel(cancel.clone());
        detector
            .detect(graph, &mut ctx)
            .map(|d| d.cover)
            .map_err(|e| e.to_string())
    });

    let server = Server::new(
        Arc::clone(&graph),
        bench.ground_truth,
        config,
        Some(recompute),
    )
    .unwrap_or_else(|e| panic!("server construction failed: {e}"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let n = graph.node_count() as u64;

    let chaos_conns = AtomicU64::new(0);
    let mut tallies: Vec<ClientTally> = Vec::new();
    let mut overloaded_seen = 0u64;
    let mut final_stats = String::new();
    let mut report = None;
    let deadline = Instant::now() + Duration::from_secs_f64(secs);
    std::thread::scope(|scope| {
        let _guard = CancelOnDrop(server.cancel_token());
        let server = &server;
        let chaos_conns = &chaos_conns;
        let run = scope.spawn(move || server.run(listener));

        // Hostile traffic for the whole window.
        let hostiles = vec![
            scope.spawn(move || garbage_client(addr, deadline, seed ^ 0xBAD, chaos_conns)),
            scope.spawn(move || oversized_client(addr, deadline, chaos_conns)),
            scope.spawn(move || torn_client(addr, deadline, chaos_conns)),
            scope.spawn(move || slow_client(addr, deadline, chaos_conns)),
            scope.spawn(move || idle_client(addr, deadline, idle_timeout, chaos_conns)),
        ];

        // Well-formed load: the gate. Every request must get exactly one
        // parseable JSON line back, no matter what is failing around it.
        let load = |id: usize| {
            let mut rng = StdRng::seed_from_u64(seed ^ (0x51EE + id as u64));
            let mut client = Client::connect(addr).expect("connect well-formed client");
            let mut tally = ClientTally::default();
            let mut i = 0usize;
            while Instant::now() < deadline {
                let v = rng.random_range(0..n);
                i += 1;
                let (line, bucket) = match i % 8 {
                    1 => (format!("local {v}"), 1),
                    5 => (format!("topk {v} 5"), 2),
                    _ => (format!("query {v}"), 0),
                };
                tally.sent += 1;
                let start = Instant::now();
                match client.request(&line) {
                    Ok(response) => {
                        let nanos = start.elapsed().as_nanos() as u64;
                        let parseable = response.starts_with('{')
                            && response.ends_with('}')
                            && (response.contains("\"ok\":true")
                                || response.contains("\"kind\":\""));
                        if parseable {
                            tally.answered += 1;
                        } else {
                            tally.torn += 1;
                        }
                        if response.contains("\"ok\":false") {
                            tally.error_responses += 1;
                        }
                        if response.contains("\"partial\":true") {
                            tally.partial_responses += 1;
                        }
                        match bucket {
                            1 => tally.local_ns.push(nanos),
                            2 => tally.topk_ns.push(nanos),
                            _ => tally.query_ns.push(nanos),
                        }
                    }
                    Err(e) => {
                        eprintln!("well-formed client {id} lost a response: {e}");
                        tally.lost += 1;
                        // The connection is gone; reconnect and continue.
                        match Client::connect(addr) {
                            Ok(fresh) => client = fresh,
                            Err(_) => break,
                        }
                    }
                }
            }
            tally
        };
        let handles: Vec<_> = (0..clients)
            .map(|id| scope.spawn(move || load(id)))
            .collect();
        for handle in handles {
            tallies.push(handle.join().expect("well-formed client thread"));
        }
        for hostile in hostiles {
            hostile.join().expect("hostile client thread");
        }

        // --- Phase 3: overload burst. Pin every worker with a held
        // connection, then connect faster than the bounded queue drains;
        // the overflow must be fast-rejected with a typed line.
        let held: Vec<Client> = (0..workers)
            .map(|_| {
                let mut c = Client::connect(addr).expect("hold connect");
                c.request("query 0").expect("hold request");
                c
            })
            .collect();
        // Connect the whole burst before reading anything: the accept
        // loop parks the first `max_pending` and must fast-reject the
        // rest. Reading newest-first finds the rejections (whose line is
        // already on the wire) without waiting out the parked sockets.
        let burst: Vec<TcpStream> = (0..(64 + 32)).filter_map(|_| chaos_connect(addr)).collect();
        for mut stream in burst.into_iter().rev() {
            let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
            if let Some(line) = read_response_line(&mut stream) {
                if line.contains("\"kind\":\"overloaded\"") {
                    overloaded_seen += 1;
                }
            }
            if overloaded_seen >= 8 {
                break;
            }
        }
        drop(held);

        // Scrape server-side observability before shutting down; the
        // dropped connections free workers within one poll tick, but give
        // a slow box a few retries.
        let scrape = Instant::now() + Duration::from_secs(5);
        let (stats, mut control) = loop {
            let attempt =
                Client::connect(addr).and_then(|mut c| c.request("stats").map(|s| (s, c)));
            match attempt {
                Ok(pair) => break pair,
                Err(e) if Instant::now() < scrape => {
                    eprintln!("stats scrape retry: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => panic!("could not scrape stats before shutdown: {e}"),
            }
        };
        final_stats = stats;
        let _ = control.request("shutdown").expect("shutdown");
        drop(control);
        report = Some(run.join().expect("server thread").expect("server run"));
    });
    let report = report.expect("report");
    let counts = faults.counts();

    let mut query_ns: Vec<u64> = tallies.iter().flat_map(|t| t.query_ns.clone()).collect();
    let mut local_ns: Vec<u64> = tallies.iter().flat_map(|t| t.local_ns.clone()).collect();
    let mut topk_ns: Vec<u64> = tallies.iter().flat_map(|t| t.topk_ns.clone()).collect();
    query_ns.sort_unstable();
    local_ns.sort_unstable();
    topk_ns.sort_unstable();
    let sent: u64 = tallies.iter().map(|t| t.sent).sum();
    let answered: u64 = tallies.iter().map(|t| t.answered).sum();
    let lost: u64 = tallies.iter().map(|t| t.lost).sum();
    let torn: u64 = tallies.iter().map(|t| t.torn).sum();
    let error_responses: u64 = tallies.iter().map(|t| t.error_responses).sum();
    let partial_responses: u64 = tallies.iter().map(|t| t.partial_responses).sum();
    let last_recovery_ms = extract_u64(&final_stats, "last_recovery_ms");

    let mut table = Table::new(["endpoint", "count", "p50_ms", "p99_ms"]);
    for (name, sorted) in [
        ("query", &query_ns),
        ("local", &local_ns),
        ("topk", &topk_ns),
    ] {
        table.row([
            name.to_string(),
            sorted.len().to_string(),
            format!("{:.2}", quantile_ms(sorted, 0.50)),
            format!("{:.2}", quantile_ms(sorted, 0.99)),
        ]);
    }
    print!("{}", table.render());
    println!(
        "well-formed: {answered}/{sent} answered ({lost} lost, {torn} torn, \
         {error_responses} typed errors, {partial_responses} partial); \
         {} hostile connections",
        chaos_conns.load(Ordering::Relaxed)
    );
    println!(
        "faults fired: {} request panics, {} stalls, {} worker kills, \
         {} recompute failures, {} recompute panics",
        counts.request_panics,
        counts.request_stalls,
        counts.worker_kills,
        counts.recompute_failures,
        counts.recompute_panics
    );
    println!("server: {}", report.summary_line());

    let query_p99 = quantile_ms(&query_ns, 0.99);
    let faults_fired = counts.request_panics >= 1
        && counts.request_stalls >= 1
        && counts.worker_kills >= 1
        && counts.recompute_failures + counts.recompute_panics >= 1;
    let crash_ok =
        cover_crash.verified == cover_crash.rounds && ocg_crash.verified == ocg_crash.rounds;
    let pass = lost == 0
        && torn == 0
        && sent > 0
        && query_p99 <= query_budget_ms
        && overloaded_seen >= 1
        && faults_fired
        && crash_ok;

    let mut json = String::from("{\n  \"bench\": \"chaos\",\n");
    let _ = write!(
        json,
        "  \"mode\": \"{}\",\n  \"meta\": {},\n  \"rng_seed\": {seed},\n",
        if smoke { "smoke" } else { "full" },
        run_meta_json(&format!("lfr-timing n={} seed {seed}", graph.node_count())),
    );
    let _ = writeln!(
        json,
        "  \"nodes\": {}, \"edges\": {},\n  \"workers\": {workers}, \
         \"well_formed_clients\": {clients}, \"duration_secs\": {secs},",
        graph.node_count(),
        graph.edge_count(),
    );
    let _ = writeln!(
        json,
        "  \"fault_spec\": {{\"panic_request_every\": {}, \"stall_request_every\": {}, \
         \"stall_ms\": {}, \"kill_worker_every_conns\": {}, \"fail_recompute_every\": {}, \
         \"panic_recompute_every\": {}}},",
        fault_spec.panic_request_every,
        fault_spec.stall_request_every,
        fault_spec.stall.as_millis(),
        fault_spec.kill_worker_every_conns,
        fault_spec.fail_recompute_every,
        fault_spec.panic_recompute_every,
    );
    let _ = writeln!(
        json,
        "  \"faults_fired\": {{\"request_panics\": {}, \"request_stalls\": {}, \
         \"worker_kills\": {}, \"recompute_failures\": {}, \"recompute_panics\": {}}},",
        counts.request_panics,
        counts.request_stalls,
        counts.worker_kills,
        counts.recompute_failures,
        counts.recompute_panics,
    );
    let _ = writeln!(
        json,
        "  \"well_formed\": {{\"sent\": {sent}, \"answered\": {answered}, \"lost\": {lost}, \
         \"torn\": {torn}, \"typed_errors\": {error_responses}, \
         \"partial_results\": {partial_responses}}},\n  \
         \"hostile_connections\": {},\n  \"overloaded_rejects_observed\": {overloaded_seen},",
        chaos_conns.load(Ordering::Relaxed),
    );
    let _ = writeln!(
        json,
        "  \"under_fault_latency\": {{\
         \"query\": {{\"count\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}, \
         \"local\": {{\"count\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}, \
         \"topk\": {{\"count\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}}},",
        query_ns.len(),
        quantile_ms(&query_ns, 0.50),
        query_p99,
        local_ns.len(),
        quantile_ms(&local_ns, 0.50),
        quantile_ms(&local_ns, 0.99),
        topk_ns.len(),
        quantile_ms(&topk_ns, 0.50),
        quantile_ms(&topk_ns, 0.99),
    );
    let _ = writeln!(
        json,
        "  \"server\": {{\"connections\": {}, \"requests\": {}, \"errors\": {}, \
         \"panics\": {}, \"respawns\": {}, \"overloaded_rejects\": {}, \
         \"oversized_lines\": {}, \"idle_reaped\": {}, \"deadline_hits\": {}, \
         \"shutdown_rejects\": {}, \"recomputes_published\": {}, \
         \"recompute_failures\": {}, \"recovery_ms_after_last_outage\": {last_recovery_ms}, \
         \"degraded_at_exit\": {}, \"final_epoch\": {}}},",
        report.connections,
        report.requests,
        report.errors,
        report.panics,
        report.respawns,
        report.overloaded_rejects,
        report.oversized_lines,
        report.idle_reaped,
        report.deadline_hits,
        report.shutdown_rejects,
        report.recomputes,
        report.recompute_failures,
        report.degraded,
        report.final_epoch,
    );
    let _ = writeln!(
        json,
        "  \"crash_safety\": {{\
         \"cover\": {{\"kill_rounds\": {}, \"verified\": {}, \"mid_write_kills\": {}}}, \
         \"ocg\": {{\"kill_rounds\": {}, \"verified\": {}, \"mid_write_kills\": {}}}}},",
        cover_crash.rounds,
        cover_crash.verified,
        cover_crash.temp_debris,
        ocg_crash.rounds,
        ocg_crash.verified,
        ocg_crash.temp_debris,
    );
    let _ = writeln!(
        json,
        "  \"gate\": {{\"zero_lost\": {}, \"zero_torn\": {}, \
         \"query_p99_limit_ms\": {query_budget_ms}, \"query_p99_ok\": {}, \
         \"overload_observed\": {}, \"faults_fired\": {faults_fired}, \
         \"crash_safe\": {crash_ok}, \"pass\": {pass}}}\n}}",
        lost == 0,
        torn == 0,
        query_p99 <= query_budget_ms,
        overloaded_seen >= 1,
    );

    let dir: PathBuf = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("could not create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join("BENCH_chaos.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    if pass {
        println!(
            "chaos gate: PASS ({answered}/{sent} answered, query p99 {query_p99:.2}ms <= \
             {query_budget_ms}ms, {overloaded_seen} overload rejects, crash-safe \
             {}/{} rounds)",
            cover_crash.verified + ocg_crash.verified,
            cover_crash.rounds + ocg_crash.rounds
        );
    } else {
        eprintln!(
            "chaos gate: FAIL — lost {lost}, torn {torn}, query p99 {query_p99:.2}ms \
             (limit {query_budget_ms}ms), overloaded seen {overloaded_seen}, \
             faults fired {faults_fired}, crash safe {crash_ok}"
        );
        std::process::exit(1);
    }
}
