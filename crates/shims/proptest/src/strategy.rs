//! The [`Strategy`] trait and the combinators the workspace's property
//! tests use: ranges, tuples, `prop_map`, `Just`, and the collection
//! strategies `vec` / `btree_set`.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;

/// A recipe for generating random values (proptest's central trait,
/// without shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut StdRng) -> f32 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// A strategy for `Vec`s whose length is drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = sample_size(&self.size, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `BTreeSet`s whose cardinality is drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates sets of `element` values with cardinality in `size`.
    ///
    /// Like real proptest, generation retries duplicates to reach the
    /// requested cardinality; if the element domain is too small it stops
    /// after a bounded number of attempts and yields a smaller set.
    pub fn btree_set<S>(element: S, size: core::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = sample_size(&self.size, rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            let max_attempts = 50 * (target + 1);
            while out.len() < target && attempts < max_attempts {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    fn sample_size(range: &core::ops::Range<usize>, rng: &mut StdRng) -> usize {
        if range.is_empty() {
            range.start
        } else {
            rng.random_range(range.clone())
        }
    }
}
