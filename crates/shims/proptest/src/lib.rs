//! Offline stand-in for `proptest` (1.x API subset) — DESIGN.md §6.
//!
//! Implements enough of the proptest surface for the workspace's property
//! tests: the [`Strategy`] trait with `prop_map`, range and tuple
//! strategies, `prop::collection::{vec, btree_set}`, and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * cases are drawn from a fixed deterministic seed per test (derived from
//!   the test name), so runs are reproducible but not configurable via
//!   `PROPTEST_CASES`/persistence files — except for the case count, which
//!   honors `PROPTEST_CASES` when set;
//! * no shrinking: a failing case panics with the standard assert message
//!   rather than a minimized counterexample.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::Strategy;

/// The default number of cases per property (proptest's default is 256;
/// 128 keeps the suite quick under the shim's no-shrinking model).
pub const DEFAULT_CASES: usize = 128;

/// Runs `f` once per case with a deterministic per-test RNG.
///
/// Not part of the public proptest API; called by the `proptest!` macro
/// expansion.
pub fn run_cases<F: FnMut(&mut StdRng)>(test_name: &str, mut f: F) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES);
    // FNV-1a over the test name gives each property its own stream.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..cases as u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        f(&mut rng);
    }
}

/// Strategy constructors, mirroring the `proptest::prop` facade.
pub mod prop {
    /// Collection strategies (`prop::collection::*`).
    pub mod collection {
        pub use crate::strategy::collection::{btree_set, vec};
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that samples the strategies [`DEFAULT_CASES`] times.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |prop_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), prop_rng);)+
                    let prop_case = move || -> () { $body };
                    prop_case();
                });
            }
        )*
    };
}

/// Asserts a property holds (panics on failure — the shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Must appear directly inside a `proptest!` body (it returns from the
/// generated case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u32..10, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn btree_sets_hit_requested_sizes(s in prop::collection::btree_set(0u32..100, 3..6)) {
            prop_assert!((3..6).contains(&s.len()));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn prop_map_applies(d in (0u32..5).prop_map(|x| x * 2)) {
            prop_assert!(d % 2 == 0 && d < 10);
        }

        #[test]
        fn tuples_and_floats(p in (0u32..4, 0.25f64..0.75)) {
            prop_assert!(p.0 < 4);
            prop_assert!((0.25..0.75).contains(&p.1));
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        crate::run_cases("det", |rng| {
            a.push(crate::Strategy::sample(&(0u64..1000), rng))
        });
        crate::run_cases("det", |rng| {
            b.push(crate::Strategy::sample(&(0u64..1000), rng))
        });
        assert_eq!(a, b);
        assert!(a.iter().collect::<std::collections::BTreeSet<_>>().len() > 10);
    }
}
