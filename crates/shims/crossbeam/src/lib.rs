//! Offline stand-in for `crossbeam` (0.8 API subset), backed by
//! `std::thread::scope` (DESIGN.md §6).
//!
//! Covers scoped spawning as the workspace uses it:
//! `crossbeam::scope(|s| { s.spawn(move |_| …); }).expect(…)`. The closure
//! passed to [`Scope::spawn`] receives the scope again (crossbeam's
//! signature, enabling nested spawns), and [`scope`] returns `Err` with the
//! panic payload if any unjoined child panicked — same contract as
//! crossbeam's.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// A scope for spawning threads that may borrow from the caller's stack.
#[derive(Debug, Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope, so children
    /// can spawn further children.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Creates a scope, runs `f` inside it, and joins all spawned threads before
/// returning. Returns `Err` with the panic payload if a child panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let data = vec![1usize, 2, 3, 4];
        scope(|s| {
            for &x in &data {
                let counter = &counter;
                s.spawn(move |_| counter.fetch_add(x, Ordering::Relaxed));
            }
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let flag = AtomicUsize::new(0);
        scope(|s| {
            let flag = &flag;
            s.spawn(move |inner| {
                inner.spawn(move |_| flag.store(7, Ordering::Relaxed));
            });
        })
        .expect("no panics");
        assert_eq!(flag.load(Ordering::Relaxed), 7);
    }
}
