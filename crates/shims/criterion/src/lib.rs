//! Offline stand-in for `criterion` (0.5 API subset) — DESIGN.md §6.
//!
//! Provides the structural API the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`], [`BatchSize`], and the
//! `criterion_group!` / `criterion_main!` macros — with a deliberately
//! simple measurement model: each benchmark is warmed up once and then
//! timed over a short fixed budget, reporting the median iteration time to
//! stdout. No statistics, plots, or baselines; the point is that `cargo
//! bench` runs and gives order-of-magnitude numbers, and that bench targets
//! keep compiling under `--all-targets`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing budget for one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Iteration cap per benchmark (keeps nanosecond kernels bounded).
const MAX_ITERS: usize = 10_000;

/// The benchmark manager (vastly simplified).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as the benchmark named `id` and prints its timing.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count (accepted for API parity; the shim's
    /// time-budget model ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API parity; ignored).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs `f` as `group/id`.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    /// Runs `f` as `group/id` with `input` passed through by reference.
    pub fn bench_with_input<S, I, F>(&mut self, id: S, input: &I, mut f: F) -> &mut Self
    where
        S: Into<BenchmarkId>,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id: BenchmarkId = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.render()), |b| f(b, input));
        self
    }

    /// Finishes the group (a no-op in the shim, kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier with an attached parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id for `function` at `parameter`.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: String::new(),
        }
    }
}

/// How `iter_batched` amortizes setup cost; ignored by the shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    test_mode: bool,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        black_box(routine()); // warm-up
        let budget_start = Instant::now();
        while budget_start.elapsed() < MEASURE_BUDGET && self.samples.len() < MAX_ITERS {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        black_box(routine(setup())); // warm-up
        let budget_start = Instant::now();
        while budget_start.elapsed() < MEASURE_BUDGET && self.samples.len() < MAX_ITERS {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }
}

/// True when the bench binary is being driven by `cargo test` (which passes
/// `--test` to `harness = false` targets): run everything once, measure
/// nothing.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        test_mode: test_mode(),
    };
    f(&mut b);
    if b.test_mode {
        println!("test {id} ... ok");
        return;
    }
    if b.samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    println!(
        "{id:<50} median {:>12?} ({} iterations)",
        median,
        b.samples.len()
    );
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group entry point (generated by `criterion_group!`).
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench binary from its group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_and_ids_render() {
        let id = BenchmarkId::new("matvec", 1000);
        assert_eq!(id.render(), "matvec/1000");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 2), &3, |b, &x| {
            b.iter(|| x * 2);
        });
        group.bench_function(format!("{}-by-string", "named"), |b| b.iter(|| ()));
        group.finish();
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut b = Bencher {
            samples: Vec::new(),
            test_mode: true,
        };
        let mut calls = 0;
        b.iter_batched(
            || vec![1, 2, 3],
            |v| calls += v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(calls, 3);
    }
}
