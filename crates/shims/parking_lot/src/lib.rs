//! Offline stand-in for `parking_lot` (0.12 API subset), backed by
//! `std::sync` primitives (DESIGN.md §6).
//!
//! Matches the two properties the workspace relies on: `lock()` returns the
//! guard directly (no poison `Result`), and `into_inner()` returns the value
//! directly. Poisoning is absorbed: a poisoned std mutex still yields its
//! data, exactly like `parking_lot`, which has no poisoning at all.

use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(3);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 6);
        }
        *l.write() = 9;
        assert_eq!(l.into_inner(), 9);
    }
}
