//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment for this reproduction has no access to crates.io,
//! so the workspace vendors minimal, API-compatible shims for its external
//! dependencies (DESIGN.md §6). This one covers exactly the surface the
//! workspace uses: [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xorshift64* seeded through SplitMix64 — deterministic,
//! fast, and statistically adequate for benchmark-graph generation and
//! randomized search; it makes no cryptographic claims (neither does the
//! real `StdRng` contract beyond its named algorithm). Swapping the real
//! `rand` back in is a one-line change in the workspace manifest.

/// Low-level uniform bit source (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an [`RngCore`] (mirrors the role
/// of `rand::distr::StandardUniform`).
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from (mirrors `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($(($t:ty, $ut:ty)),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Reinterpret the wrapped difference in the unsigned
                // counterpart before widening: a direct `as u64` would
                // sign-extend and corrupt spans wider than half the type.
                let span = self.end.wrapping_sub(self.start) as $ut as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi.wrapping_sub(lo) as $ut as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range!((i8, u8), (i16, u16), (i32, u32), (i64, u64), (isize, usize));

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::from_rng(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level convenience methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xorshift64*
    /// with SplitMix64 seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 finalizer guarantees a non-zero, well-mixed state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            // xorshift64* only forbids the all-zero state; forcing a bit
            // would collapse seed pairs onto identical streams.
            if z == 0 {
                z = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { state: z }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna, 2016).
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// Sequence helpers (mirrors `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Shuffling for slices (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let k: u32 = rng.random_range(5..17);
            assert!((5..17).contains(&k));
            let k: usize = rng.random_range(0..=3);
            assert!(k <= 3);
            let x: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_mean_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.random_range(0u64..10)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.5).abs() < 0.05, "mean {mean} far from 4.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn signed_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..10_000 {
            // Spans wider than half the type width exercise the
            // unsigned-reinterpretation path.
            let k: i8 = rng.random_range(-100..=100);
            assert!((-100..=100).contains(&k));
            let k: i32 = rng.random_range(-2_000_000_000..2_000_000_000);
            assert!((-2_000_000_000..2_000_000_000).contains(&k));
        }
        let full: i64 = rng.random_range(i64::MIN..=i64::MAX);
        let _ = full; // any value is in range; just must not panic
    }

    #[test]
    fn neighboring_seeds_give_distinct_streams() {
        // `z | 1` in seeding used to collapse seed pairs onto one stream.
        let draws: Vec<u64> = (0..64)
            .map(|s| StdRng::seed_from_u64(s).random::<u64>())
            .collect();
        let distinct: std::collections::BTreeSet<_> = draws.iter().collect();
        assert_eq!(distinct.len(), draws.len(), "seed collision in {draws:?}");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
    }
}
