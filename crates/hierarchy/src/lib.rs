//! # oca-hierarchy — community hierarchies and graph summarization
//!
//! Section VI of the OCA paper sketches the steps that follow community
//! identification: "we will explore the hierarchies and relations among
//! them" and "graph summarization for graphs containing overlapped
//! communities". This crate implements both on top of any
//! [`oca_graph::Cover`] (OCA's output or a baseline's):
//!
//! * [`CommunityGraph`] — the relation structure: node-overlap and
//!   cross-edge weights between communities;
//! * [`Dendrogram`] — an agglomerative hierarchy with threshold cuts, so a
//!   cover can be viewed at any coarseness;
//! * [`Summary`] — a supernode/superedge summary with compression ratio
//!   and reconstruction-error fidelity metrics, aware of overlaps.
//!
//! ```
//! use oca_graph::{from_edges, Community, Cover};
//! use oca_hierarchy::Summary;
//!
//! let g = from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
//! let cover = Cover::new(5, vec![Community::from_raw([0, 1, 2]),
//!                                Community::from_raw([2, 3, 4])]);
//! let summary = Summary::build(&g, &cover);
//! assert_eq!(summary.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod community_graph;
pub mod dendrogram;
pub mod summarize;

pub use community_graph::CommunityGraph;
pub use dendrogram::{Dendrogram, Linkage, Merge};
pub use summarize::{Summary, Supernode};
