//! The community graph: relations among the communities of a cover.
//!
//! Section VI of the OCA paper names "the hierarchies and relations among
//! \[communities\]" as the next step once communities are identified. The
//! community graph makes those relations concrete: one vertex per
//! community, annotated with two kinds of weighted edges —
//!
//! * **overlap edges**: how many nodes two communities share (the
//!   specifically *overlapping* relation OCA produces), and
//! * **cross edges**: how many graph edges run between their non-shared
//!   parts (the classical inter-community relation).

use oca_graph::{Cover, CsrGraph};
use std::collections::HashMap;

/// A weighted graph over the communities of one cover.
#[derive(Debug, Clone)]
pub struct CommunityGraph {
    community_count: usize,
    /// Shared-node counts for community pairs `(i, j)`, `i < j`.
    overlap: HashMap<(u32, u32), u32>,
    /// Underlying-graph edge counts between distinct communities.
    cross_edges: HashMap<(u32, u32), u32>,
    /// Internal edges of each community.
    internal: Vec<u32>,
    /// Size of each community.
    sizes: Vec<u32>,
}

impl CommunityGraph {
    /// Builds the community graph of `cover` over `graph`.
    pub fn build(graph: &CsrGraph, cover: &Cover) -> Self {
        let k = cover.len();
        let memberships = cover.membership_index();
        let mut overlap: HashMap<(u32, u32), u32> = HashMap::new();
        for ms in &memberships {
            for (a, &ci) in ms.iter().enumerate() {
                for &cj in &ms[a + 1..] {
                    let key = (ci.min(cj), ci.max(cj));
                    *overlap.entry(key).or_insert(0) += 1;
                }
            }
        }
        let mut cross_edges: HashMap<(u32, u32), u32> = HashMap::new();
        let mut internal = vec![0u32; k];
        for (u, v) in graph.edges() {
            let mu = &memberships[u.index()];
            let mv = &memberships[v.index()];
            for &ci in mu {
                for &cj in mv {
                    if ci == cj {
                        internal[ci as usize] += 1;
                    } else {
                        let key = (ci.min(cj), ci.max(cj));
                        *cross_edges.entry(key).or_insert(0) += 1;
                    }
                }
            }
        }
        let sizes = cover.communities().iter().map(|c| c.len() as u32).collect();
        CommunityGraph {
            community_count: k,
            overlap,
            cross_edges,
            internal,
            sizes,
        }
    }

    /// Number of communities.
    pub fn community_count(&self) -> usize {
        self.community_count
    }

    /// Shared-node count between two communities.
    pub fn overlap(&self, i: usize, j: usize) -> u32 {
        if i == j {
            return self.sizes[i];
        }
        let key = ((i as u32).min(j as u32), (i as u32).max(j as u32));
        self.overlap.get(&key).copied().unwrap_or(0)
    }

    /// Cross-edge count between two distinct communities.
    pub fn cross_edges(&self, i: usize, j: usize) -> u32 {
        if i == j {
            return 0;
        }
        let key = ((i as u32).min(j as u32), (i as u32).max(j as u32));
        self.cross_edges.get(&key).copied().unwrap_or(0)
    }

    /// Internal edge count of one community.
    pub fn internal_edges(&self, i: usize) -> u32 {
        self.internal[i]
    }

    /// Size of one community.
    pub fn size(&self, i: usize) -> u32 {
        self.sizes[i]
    }

    /// Jaccard overlap similarity of two communities (0 when disjoint).
    pub fn overlap_similarity(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        let inter = self.overlap(i, j) as f64;
        let union = (self.sizes[i] + self.sizes[j]) as f64 - inter;
        if union == 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// All related community pairs `(i, j, overlap, cross_edges)` — pairs
    /// with at least one shared node or one cross edge — sorted by ids.
    pub fn related_pairs(&self) -> Vec<(u32, u32, u32, u32)> {
        let mut keys: Vec<(u32, u32)> = self
            .overlap
            .keys()
            .chain(self.cross_edges.keys())
            .copied()
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.into_iter()
            .map(|(i, j)| {
                (
                    i,
                    j,
                    self.overlap(i as usize, j as usize),
                    self.cross_edges(i as usize, j as usize),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::{from_edges, Community};

    /// Two triangles sharing node 2, plus a separate edge community.
    fn setup() -> (CsrGraph, Cover) {
        let g = from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (2, 4),
                (5, 6),
                (4, 5),
            ],
        );
        let cover = Cover::new(
            7,
            vec![
                Community::from_raw([0, 1, 2]),
                Community::from_raw([2, 3, 4]),
                Community::from_raw([5, 6]),
            ],
        );
        (g, cover)
    }

    use oca_graph::CsrGraph;

    #[test]
    fn overlap_counts_shared_nodes() {
        let (g, cover) = setup();
        let cg = CommunityGraph::build(&g, &cover);
        assert_eq!(cg.overlap(0, 1), 1, "node 2 shared");
        assert_eq!(cg.overlap(0, 2), 0);
        assert_eq!(cg.overlap(1, 1), 3, "self-overlap = size");
    }

    #[test]
    fn cross_edges_counted_between_communities() {
        let (g, cover) = setup();
        let cg = CommunityGraph::build(&g, &cover);
        // Edge 4-5 crosses communities 1 and 2.
        assert_eq!(cg.cross_edges(1, 2), 1);
        assert_eq!(cg.cross_edges(2, 1), 1, "symmetric");
        assert_eq!(cg.cross_edges(0, 2), 0);
    }

    #[test]
    fn internal_edges_match_communities() {
        let (g, cover) = setup();
        let cg = CommunityGraph::build(&g, &cover);
        assert_eq!(cg.internal_edges(0), 3);
        assert_eq!(cg.internal_edges(1), 3);
        assert_eq!(cg.internal_edges(2), 1);
    }

    #[test]
    fn overlap_edges_also_count_cross() {
        // Edges incident to the shared node count toward cross weight of
        // the pair (they connect the two communities through membership).
        let (g, cover) = setup();
        let cg = CommunityGraph::build(&g, &cover);
        // Edges 0-2 and 1-2: node 2 is in both communities, so each edge is
        // internal to community 0 AND crosses 0/1 via node 2's membership.
        assert!(cg.cross_edges(0, 1) >= 2);
    }

    #[test]
    fn similarity_and_pairs() {
        let (g, cover) = setup();
        let cg = CommunityGraph::build(&g, &cover);
        assert!((cg.overlap_similarity(0, 1) - 0.2).abs() < 1e-12, "1/5");
        assert_eq!(cg.overlap_similarity(0, 2), 0.0);
        let pairs = cg.related_pairs();
        assert!(pairs.iter().any(|&(i, j, o, _)| (i, j) == (0, 1) && o == 1));
        assert!(pairs.iter().any(|&(i, j, _, x)| (i, j) == (1, 2) && x == 1));
    }

    #[test]
    fn empty_cover() {
        let g = from_edges(3, [(0, 1)]);
        let cg = CommunityGraph::build(&g, &Cover::empty(3));
        assert_eq!(cg.community_count(), 0);
        assert!(cg.related_pairs().is_empty());
    }
}
