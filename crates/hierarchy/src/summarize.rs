//! Graph summarization over overlapping covers.
//!
//! The last future-work item of the paper's Section VI: "graph
//! summarization for graphs containing overlapped communities". A summary
//! replaces each community with a supernode annotated with its internal
//! statistics, keeps weighted superedges for the inter-community structure,
//! and keeps orphan nodes as singletons. The expected-adjacency
//! reconstruction gives a measurable fidelity score, so summaries can be
//! compared quantitatively.

use oca_graph::{Community, Cover, CsrGraph, NodeId};
use std::collections::HashMap;

/// A supernode of the summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Supernode {
    /// The nodes this supernode stands for.
    pub members: Community,
    /// Internal edge count.
    pub internal_edges: usize,
    /// Internal edge density.
    pub density: f64,
}

/// A summary graph: supernodes plus weighted superedges.
#[derive(Debug, Clone)]
pub struct Summary {
    node_count: usize,
    supernodes: Vec<Supernode>,
    /// Edge counts between supernodes `(i, j)`, `i < j`.
    superedges: HashMap<(u32, u32), u32>,
    /// For each node, the supernodes covering it.
    membership: Vec<Vec<u32>>,
}

impl Summary {
    /// Summarizes `graph` by `cover`. Orphan nodes become singleton
    /// supernodes so the summary always represents the whole graph.
    pub fn build(graph: &CsrGraph, cover: &Cover) -> Self {
        let mut communities: Vec<Community> = cover.communities().to_vec();
        for orphan in cover.orphans() {
            communities.push(Community::new(vec![orphan]));
        }
        let full = Cover::new(graph.node_count(), communities);
        let membership = full.membership_index();

        let supernodes: Vec<Supernode> = full
            .communities()
            .iter()
            .map(|c| Supernode {
                internal_edges: c.internal_edges(graph),
                density: c.density(graph),
                members: c.clone(),
            })
            .collect();

        let mut superedges: HashMap<(u32, u32), u32> = HashMap::new();
        for (u, v) in graph.edges() {
            for &ci in &membership[u.index()] {
                for &cj in &membership[v.index()] {
                    if ci != cj {
                        let key = (ci.min(cj), ci.max(cj));
                        *superedges.entry(key).or_insert(0) += 1;
                    }
                }
            }
        }
        Summary {
            node_count: graph.node_count(),
            supernodes,
            superedges,
            membership,
        }
    }

    /// The supernodes.
    pub fn supernodes(&self) -> &[Supernode] {
        &self.supernodes
    }

    /// Number of supernodes.
    pub fn len(&self) -> usize {
        self.supernodes.len()
    }

    /// True if there are no supernodes (empty graph).
    pub fn is_empty(&self) -> bool {
        self.supernodes.is_empty()
    }

    /// Weight of the superedge between two supernodes (0 if none).
    pub fn superedge(&self, i: usize, j: usize) -> u32 {
        if i == j {
            return 0;
        }
        let key = ((i as u32).min(j as u32), (i as u32).max(j as u32));
        self.superedges.get(&key).copied().unwrap_or(0)
    }

    /// Number of distinct superedges.
    pub fn superedge_count(&self) -> usize {
        self.superedges.len()
    }

    /// Compression ratio: summary size (supernodes + superedges) over
    /// original size (nodes + edges). Below 1 means the summary is smaller.
    pub fn compression_ratio(&self, graph: &CsrGraph) -> f64 {
        let original = (graph.node_count() + graph.edge_count()) as f64;
        if original == 0.0 {
            return 1.0;
        }
        (self.len() + self.superedge_count()) as f64 / original
    }

    /// Expected adjacency between two original nodes under the summary's
    /// uniform-within-supernode model. Used for reconstruction fidelity.
    pub fn expected_adjacency(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 0.0;
        }
        let mut best = 0.0f64;
        // Within a shared supernode: its density.
        for &ci in &self.membership[u.index()] {
            if self.membership[v.index()].contains(&ci) {
                best = best.max(self.supernodes[ci as usize].density);
            }
        }
        // Across supernodes: superedge weight over possible pairs.
        for &ci in &self.membership[u.index()] {
            for &cj in &self.membership[v.index()] {
                if ci != cj {
                    let w = self.superedge(ci as usize, cj as usize) as f64;
                    let pairs = (self.supernodes[ci as usize].members.len()
                        * self.supernodes[cj as usize].members.len())
                        as f64;
                    if pairs > 0.0 {
                        best = best.max((w / pairs).min(1.0));
                    }
                }
            }
        }
        best
    }

    /// Mean absolute reconstruction error over all edges plus an equal
    /// sample of non-edges (deterministic stride sample). 0 = perfect.
    pub fn reconstruction_error(&self, graph: &CsrGraph) -> f64 {
        let mut total = 0.0f64;
        let mut count = 0usize;
        for (u, v) in graph.edges() {
            total += 1.0 - self.expected_adjacency(u, v);
            count += 1;
        }
        // Deterministic non-edge sample of comparable size.
        let n = graph.node_count();
        if n >= 2 {
            let want = count.max(1);
            let mut got = 0usize;
            let mut step = 0usize;
            while got < want && step < 4 * want {
                step += 1;
                let u = NodeId(((step * 7919) % n) as u32);
                let v = NodeId(((step * 104_729 + 1) % n) as u32);
                if u != v && !graph.has_edge(u, v) {
                    total += self.expected_adjacency(u, v);
                    got += 1;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Node count of the summarized graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::{from_edges, Community};

    fn two_cliques_cover() -> (oca_graph::CsrGraph, Cover) {
        let mut edges = Vec::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((4, 5));
        let g = from_edges(10, edges);
        let cover = Cover::new(
            10,
            vec![Community::from_raw(0..5), Community::from_raw(5..10)],
        );
        (g, cover)
    }

    #[test]
    fn supernodes_capture_structure() {
        let (g, cover) = two_cliques_cover();
        let s = Summary::build(&g, &cover);
        assert_eq!(s.len(), 2);
        assert_eq!(s.supernodes()[0].internal_edges, 10);
        assert!((s.supernodes()[0].density - 1.0).abs() < 1e-12);
        assert_eq!(s.superedge(0, 1), 1, "single bridge");
    }

    #[test]
    fn compression_is_substantial_on_dense_communities() {
        let (g, cover) = two_cliques_cover();
        let s = Summary::build(&g, &cover);
        assert!(
            s.compression_ratio(&g) < 0.2,
            "ratio {}",
            s.compression_ratio(&g)
        );
    }

    #[test]
    fn reconstruction_is_good_for_cliques() {
        let (g, cover) = two_cliques_cover();
        let s = Summary::build(&g, &cover);
        let err = s.reconstruction_error(&g);
        assert!(err < 0.15, "reconstruction error {err}");
    }

    #[test]
    fn orphans_become_singletons() {
        let g = from_edges(4, [(0, 1), (1, 2)]);
        let cover = Cover::new(4, vec![Community::from_raw([0, 1, 2])]);
        let s = Summary::build(&g, &cover);
        assert_eq!(s.len(), 2);
        assert_eq!(s.supernodes()[1].members.len(), 1);
    }

    #[test]
    fn expected_adjacency_within_clique_is_one() {
        let (g, cover) = two_cliques_cover();
        let s = Summary::build(&g, &cover);
        assert!((s.expected_adjacency(NodeId(0), NodeId(4)) - 1.0).abs() < 1e-12);
        // Across cliques: 1 bridge / 25 pairs.
        assert!((s.expected_adjacency(NodeId(0), NodeId(9)) - 1.0 / 25.0).abs() < 1e-12);
        assert_eq!(s.expected_adjacency(NodeId(3), NodeId(3)), 0.0);
    }

    #[test]
    fn overlapping_cover_summary() {
        // Two triangles sharing node 2.
        let g = from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let cover = Cover::new(
            5,
            vec![
                Community::from_raw([0, 1, 2]),
                Community::from_raw([2, 3, 4]),
            ],
        );
        let s = Summary::build(&g, &cover);
        assert_eq!(s.len(), 2);
        // Node 2's membership is both supernodes.
        assert!((s.expected_adjacency(NodeId(2), NodeId(0)) - 1.0).abs() < 1e-12);
        assert!((s.expected_adjacency(NodeId(2), NodeId(4)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_summary() {
        let g = oca_graph::CsrGraph::empty(0);
        let s = Summary::build(&g, &Cover::empty(0));
        assert!(s.is_empty());
        assert_eq!(s.compression_ratio(&g), 1.0);
        assert_eq!(s.reconstruction_error(&g), 0.0);
    }
}
