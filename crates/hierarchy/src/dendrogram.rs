//! Agglomerative community hierarchy.
//!
//! Builds a dendrogram over a cover's communities by repeatedly merging the
//! most related pair. Relatedness combines the two signals of the community
//! graph: node overlap (Jaccard) and cross-edge density. Cutting the
//! dendrogram at a threshold yields a coarser cover, giving the multi-level
//! view the paper's Section VI asks for.

use crate::community_graph::CommunityGraph;
use oca_graph::{Community, Cover, CsrGraph};

/// One merge step of the agglomeration.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// First merged cluster (initial communities are `0..k`; later merges
    /// create ids `k`, `k+1`, …).
    pub left: usize,
    /// Second merged cluster.
    pub right: usize,
    /// The similarity at which the merge happened (non-increasing along
    /// the merge sequence... up to agglomeration chaining effects).
    pub similarity: f64,
    /// Id of the new cluster.
    pub merged: usize,
}

/// A dendrogram over the communities of one cover.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    base: Cover,
    merges: Vec<Merge>,
}

/// How to score candidate merges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Linkage {
    /// Jaccard overlap of the member sets.
    Overlap,
    /// Cross edges normalized by the smaller cluster's possible volume:
    /// `cross / min(size_i, size_j)`.
    CrossEdges,
    /// The maximum of both signals (default).
    Combined,
}

impl Dendrogram {
    /// Builds the full dendrogram (merging until one root or until no pair
    /// has positive similarity).
    pub fn build(graph: &CsrGraph, cover: &Cover, linkage: Linkage) -> Self {
        let cg = CommunityGraph::build(graph, cover);
        let k = cover.len();
        // Active clusters as member sets (simple O(k² log k) agglomeration;
        // covers have at most a few thousand communities in practice).
        let mut clusters: Vec<Option<Community>> =
            cover.communities().iter().cloned().map(Some).collect();
        let mut cross: Vec<Vec<f64>> = vec![vec![0.0; k]; k];
        for (i, j, _, x) in cg.related_pairs() {
            cross[i as usize][j as usize] = x as f64;
            cross[j as usize][i as usize] = x as f64;
        }
        let mut merges = Vec::new();
        let mut ids: Vec<usize> = (0..k).collect();
        loop {
            // Find the best active pair.
            let active: Vec<usize> = clusters
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_some())
                .map(|(i, _)| i)
                .collect();
            if active.len() <= 1 {
                break;
            }
            let mut best: Option<(f64, usize, usize)> = None;
            for (ai, &i) in active.iter().enumerate() {
                for &j in &active[ai + 1..] {
                    let sim = Self::similarity(linkage, &clusters, &cross, i, j);
                    if sim > 0.0 && best.is_none_or(|(bs, _, _)| sim > bs) {
                        best = Some((sim, i, j));
                    }
                }
            }
            let Some((sim, i, j)) = best else {
                break;
            };
            let merged_set = clusters[i]
                .as_ref()
                .unwrap()
                .merged(clusters[j].as_ref().unwrap());
            let new_slot = clusters.len();
            // Cross weights of the union = sum of parts.
            let mut new_cross = vec![0.0; clusters.len() + 1];
            for (idx, slot) in clusters.iter().enumerate() {
                if slot.is_some() && idx != i && idx != j {
                    new_cross[idx] = cross[i][idx] + cross[j][idx];
                }
            }
            for (idx, row) in cross.iter_mut().enumerate() {
                row.push(new_cross[idx]);
            }
            cross.push(new_cross);
            merges.push(Merge {
                left: ids[i],
                right: ids[j],
                similarity: sim,
                merged: k + merges.len(),
            });
            clusters[i] = None;
            clusters[j] = None;
            clusters.push(Some(merged_set));
            ids.push(k + merges.len() - 1);
            debug_assert_eq!(clusters.len(), new_slot + 1);
        }
        Dendrogram {
            base: cover.clone(),
            merges,
        }
    }

    fn similarity(
        linkage: Linkage,
        clusters: &[Option<Community>],
        cross: &[Vec<f64>],
        i: usize,
        j: usize,
    ) -> f64 {
        let (a, b) = (clusters[i].as_ref().unwrap(), clusters[j].as_ref().unwrap());
        let overlap = a.similarity(b);
        let denom = a.len().min(b.len()).max(1) as f64;
        let cross_score = (cross[i][j] / denom).min(1.0);
        match linkage {
            Linkage::Overlap => overlap,
            Linkage::CrossEdges => cross_score,
            Linkage::Combined => overlap.max(cross_score),
        }
    }

    /// The merge sequence.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Number of levels (base cover plus one per merge).
    pub fn levels(&self) -> usize {
        self.merges.len() + 1
    }

    /// Cuts the dendrogram: applies all merges with `similarity >=
    /// threshold` (in merge order) and returns the resulting cover.
    pub fn cut(&self, threshold: f64) -> Cover {
        let k = self.base.len();
        let mut clusters: Vec<Option<Community>> =
            self.base.communities().iter().cloned().map(Some).collect();
        // merge ids index into this vector once extended.
        for m in &self.merges {
            if m.similarity < threshold {
                // Merges are applied in recorded order; later merges may
                // reference unmade clusters, so stop at the first skip.
                break;
            }
            let left = clusters[m.left].take().expect("merge order consistent");
            let right = clusters[m.right].take().expect("merge order consistent");
            debug_assert_eq!(clusters.len(), k + (m.merged - k));
            clusters.push(Some(left.merged(&right)));
        }
        Cover::new(
            self.base.node_count(),
            clusters.into_iter().flatten().collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::{from_edges, Community};

    /// Four tight communities: two heavily overlapping pairs.
    fn setup() -> (oca_graph::CsrGraph, Cover) {
        let g = from_edges(
            12,
            [
                // clique A {0,1,2,3}
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                // clique B {2,3,4,5} overlaps A in {2,3}
                (2, 4),
                (2, 5),
                (3, 4),
                (3, 5),
                (4, 5),
                // clique C {6,7,8}
                (6, 7),
                (7, 8),
                (6, 8),
                // clique D {9,10,11}, single cross edge to C
                (9, 10),
                (10, 11),
                (9, 11),
                (8, 9),
            ],
        );
        let cover = Cover::new(
            12,
            vec![
                Community::from_raw([0, 1, 2, 3]),
                Community::from_raw([2, 3, 4, 5]),
                Community::from_raw([6, 7, 8]),
                Community::from_raw([9, 10, 11]),
            ],
        );
        (g, cover)
    }

    #[test]
    fn first_merge_is_the_overlapping_pair() {
        let (g, cover) = setup();
        let d = Dendrogram::build(&g, &cover, Linkage::Overlap);
        assert!(!d.merges().is_empty());
        let first = &d.merges()[0];
        assert_eq!((first.left, first.right), (0, 1));
        assert!((first.similarity - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn cut_at_high_threshold_keeps_base() {
        let (g, cover) = setup();
        let d = Dendrogram::build(&g, &cover, Linkage::Combined);
        let cut = d.cut(1.1);
        assert_eq!(cut.len(), cover.len());
    }

    #[test]
    fn cut_at_zero_merges_everything_related() {
        let (g, cover) = setup();
        let d = Dendrogram::build(&g, &cover, Linkage::Combined);
        let cut = d.cut(0.0);
        assert!(cut.len() < cover.len());
    }

    #[test]
    fn intermediate_cut_merges_only_overlap_pair() {
        let (g, cover) = setup();
        let d = Dendrogram::build(&g, &cover, Linkage::Overlap);
        let cut = d.cut(0.3);
        assert_eq!(cut.len(), 3, "A∪B, C, D");
        assert!(cut.communities().iter().any(|c| c.len() == 6
            && c.contains(oca_graph::NodeId(0))
            && c.contains(oca_graph::NodeId(5))));
    }

    #[test]
    fn cross_edge_linkage_connects_c_and_d() {
        let (g, cover) = setup();
        let d = Dendrogram::build(&g, &cover, Linkage::CrossEdges);
        // C and D share one cross edge; with CrossEdges linkage they merge.
        assert!(d
            .merges()
            .iter()
            .any(|m| (m.left, m.right) == (2, 3) || (m.left, m.right) == (3, 2)));
    }

    #[test]
    fn levels_count() {
        let (g, cover) = setup();
        let d = Dendrogram::build(&g, &cover, Linkage::Combined);
        assert_eq!(d.levels(), d.merges().len() + 1);
    }

    #[test]
    fn empty_cover_builds_trivial_dendrogram() {
        let g = from_edges(2, [(0, 1)]);
        let d = Dendrogram::build(&g, &Cover::empty(2), Linkage::Combined);
        assert_eq!(d.levels(), 1);
        assert!(d.cut(0.5).is_empty());
    }
}
