//! Daisy and daisy-tree benchmark graphs (Section V of the OCA paper).
//!
//! The paper introduces these as the (then) only benchmark with *overlapping*
//! ground truth. A daisy with parameters `p, q, n, α, β` has vertices
//! `0..n`, split into `p − 1` petals and a core:
//!
//! * petal `i` (for `1 ≤ i ≤ p−1`) holds the vertices `v ≡ i (mod p)`;
//! * the core holds `{v ≡ 0 (mod p)} ∪ {v ≡ 0 (mod q)}`.
//!
//! A vertex with `v ≢ 0 (mod p)` but `v ≡ 0 (mod q)` therefore lies in both
//! a petal and the core — the planted overlap. Petal pairs are wired with
//! probability `α`, core pairs with probability `β`. A daisy *tree* with
//! parameters `k, γ` grows from one daisy by attaching `k` more, each glued
//! to a random existing daisy through a random petal pair wired with
//! probability `γ`.

use crate::gnp::sprinkle_clique;
use oca_graph::{Community, Cover, CsrGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a single daisy flower.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaisyParams {
    /// Modulus defining the petals; the daisy has `p − 1` petals.
    pub p: usize,
    /// Second modulus defining the extra core members (the overlap).
    pub q: usize,
    /// Number of vertices.
    pub n: usize,
    /// Petal edge probability `α`.
    pub alpha: f64,
    /// Core edge probability `β`.
    pub beta: f64,
}

impl DaisyParams {
    /// Defaults chosen so a daisy of 100–200 nodes has clear, dense
    /// communities with non-trivial overlap: p = 5 petals-modulus,
    /// q = 7 (coprime with p, so overlaps exist), α = β = 0.9.
    pub fn default_shape(n: usize) -> Self {
        DaisyParams {
            p: 5,
            q: 7,
            n,
            alpha: 0.9,
            beta: 0.9,
        }
    }

    fn validate(&self) {
        assert!(self.p >= 2, "p must be at least 2");
        assert!(self.q >= 2, "q must be at least 2");
        assert!(
            self.n >= self.p,
            "need at least one vertex per residue class"
        );
        assert!((0.0..=1.0).contains(&self.alpha), "alpha is a probability");
        assert!((0.0..=1.0).contains(&self.beta), "beta is a probability");
    }
}

/// Membership of one daisy's vertices, with global vertex ids.
#[derive(Debug, Clone)]
pub struct DaisyLayout {
    /// Global ids of each petal's vertices (length `p − 1`).
    pub petals: Vec<Vec<u32>>,
    /// Global ids of the core vertices.
    pub core: Vec<u32>,
}

impl DaisyLayout {
    /// Computes the petal/core split for vertices `offset..offset + n`.
    pub fn new(params: &DaisyParams, offset: u32) -> Self {
        let mut petals = vec![Vec::new(); params.p - 1];
        let mut core = Vec::new();
        for local in 0..params.n {
            let v = offset + local as u32;
            let in_core_p = local % params.p == 0;
            let in_core_q = local % params.q == 0;
            if in_core_p || in_core_q {
                core.push(v);
            }
            if !in_core_p {
                let petal = local % params.p; // 1..=p-1
                petals[petal - 1].push(v);
            }
        }
        DaisyLayout { petals, core }
    }

    /// All ground-truth communities (petals then core) of this daisy.
    pub fn communities(&self) -> Vec<Community> {
        let mut out: Vec<Community> = self
            .petals
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| Community::from_raw(p.iter().copied()))
            .collect();
        if !self.core.is_empty() {
            out.push(Community::from_raw(self.core.iter().copied()));
        }
        out
    }
}

/// A generated daisy (or daisy tree): graph plus overlapping ground truth.
#[derive(Debug, Clone)]
pub struct DaisyBenchmark {
    /// The generated graph.
    pub graph: CsrGraph,
    /// Ground truth: one community per petal plus one per core.
    pub ground_truth: Cover,
    /// The layouts of the individual daisies (useful for diagnostics).
    pub layouts: Vec<DaisyLayout>,
}

/// Generates a single daisy.
pub fn daisy(params: &DaisyParams, seed: u64) -> DaisyBenchmark {
    daisy_tree(params, 0, 0.0, seed)
}

/// Generates a daisy tree: the initial daisy plus `k` attached daisies,
/// glued petal-to-petal with edge probability `gamma`.
pub fn daisy_tree(params: &DaisyParams, k: usize, gamma: f64, seed: u64) -> DaisyBenchmark {
    params.validate();
    assert!((0.0..=1.0).contains(&gamma), "gamma is a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let daisy_count = k + 1;
    let total_nodes = params.n * daisy_count;
    let mut builder = GraphBuilder::new(total_nodes);
    let mut layouts = Vec::with_capacity(daisy_count);

    for d in 0..daisy_count {
        let offset = (d * params.n) as u32;
        let layout = DaisyLayout::new(params, offset);
        for petal in &layout.petals {
            sprinkle_clique(&mut builder, petal, params.alpha, &mut rng);
        }
        sprinkle_clique(&mut builder, &layout.core, params.beta, &mut rng);

        if d > 0 {
            // Attach to a random previous daisy by a random petal pair.
            let target: usize = rng.random_range(0..d);
            let target_layout: &DaisyLayout = &layouts[target];
            let own_petal = layout.petals[rng.random_range(0..layout.petals.len())].clone();
            let other_petal =
                &target_layout.petals[rng.random_range(0..target_layout.petals.len())];
            for &u in &own_petal {
                for &v in other_petal {
                    if rng.random::<f64>() < gamma {
                        builder.add_edge(u, v);
                    }
                }
            }
        }
        layouts.push(layout);
    }

    let communities: Vec<Community> = layouts.iter().flat_map(|l| l.communities()).collect();
    DaisyBenchmark {
        graph: builder.build(),
        ground_truth: Cover::new(total_nodes, communities),
        layouts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::NodeId;

    fn shape() -> DaisyParams {
        DaisyParams::default_shape(70)
    }

    #[test]
    fn layout_partitions_and_overlaps() {
        let params = shape();
        let layout = DaisyLayout::new(&params, 0);
        assert_eq!(layout.petals.len(), 4);
        // Vertex 14: 14 % 5 = 4 → petal 4; 14 % 7 = 0 → also core. Overlap!
        assert!(layout.petals[3].contains(&14));
        assert!(layout.core.contains(&14));
        // Vertex 10: 10 % 5 = 0 → core only.
        assert!(layout.core.contains(&10));
        assert!(!layout.petals.iter().any(|p| p.contains(&10)));
        // Vertex 11: 11 % 5 = 1, 11 % 7 = 4 → petal 1 only.
        assert!(layout.petals[0].contains(&11));
        assert!(!layout.core.contains(&11));
    }

    #[test]
    fn every_vertex_is_covered() {
        let b = daisy(&shape(), 1);
        assert_eq!(b.ground_truth.orphans(), Vec::<NodeId>::new());
        assert!(b.ground_truth.overlap_node_count() > 0, "overlap planted");
    }

    #[test]
    fn alpha_one_makes_petals_cliques() {
        let params = DaisyParams {
            alpha: 1.0,
            beta: 1.0,
            ..shape()
        };
        let b = daisy(&params, 2);
        for c in b.ground_truth.communities() {
            assert!(
                (c.density(&b.graph) - 1.0).abs() < 1e-12,
                "community of size {} not a clique",
                c.len()
            );
        }
    }

    #[test]
    fn tree_attaches_all_daisies() {
        let b = daisy_tree(&shape(), 3, 0.4, 3);
        assert_eq!(b.graph.node_count(), 70 * 4);
        assert_eq!(b.layouts.len(), 4);
        // γ > 0 with dense petals: the whole tree should be one component.
        assert!(
            oca_graph::is_connected(&b.graph),
            "tree should be connected"
        );
    }

    #[test]
    fn gamma_zero_leaves_daisies_disconnected() {
        let b = daisy_tree(&shape(), 2, 0.0, 4);
        let comps = oca_graph::Components::compute(&b.graph);
        assert!(comps.count() >= 3, "got {} components", comps.count());
    }

    #[test]
    fn ground_truth_community_count() {
        let params = shape();
        let b = daisy_tree(&params, 2, 0.3, 5);
        // Each daisy: p−1 petals + core = 5 communities.
        assert_eq!(b.ground_truth.len(), 3 * 5);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = daisy_tree(&shape(), 2, 0.3, 9);
        let b = daisy_tree(&shape(), 2, 0.3, 9);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn paper_scale_density() {
        // The paper's daisy dataset: 10⁵ nodes, ~4·10⁵ edges. Check that our
        // default shape extrapolates to that edge/node ratio within 3x.
        let params = DaisyParams {
            p: 5,
            q: 7,
            n: 100,
            alpha: 0.35,
            beta: 0.35,
        };
        let b = daisy_tree(&params, 9, 0.02, 6);
        let ratio = b.graph.edge_count() as f64 / b.graph.node_count() as f64;
        assert!(ratio > 1.0 && ratio < 12.0, "edge/node ratio {ratio}");
    }
}
