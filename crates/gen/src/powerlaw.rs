//! Discrete truncated power-law sampling.
//!
//! The LFR benchmark (paper ref \[9\]) draws node degrees and community sizes
//! from power laws with exponents `τ₁` and `τ₂`, truncated to `[min, max]`.
//! Sampling uses the inverse-CDF over the precomputed discrete distribution.

use rand::Rng;

/// A discrete power-law distribution `P(k) ∝ k^(−exponent)` on `[min, max]`.
#[derive(Debug, Clone)]
pub struct PowerLaw {
    min: usize,
    /// Cumulative distribution; `cdf[i]` = P(X ≤ min + i).
    cdf: Vec<f64>,
}

impl PowerLaw {
    /// Creates the distribution.
    ///
    /// # Panics
    /// Panics if `min == 0` or `min > max`.
    pub fn new(exponent: f64, min: usize, max: usize) -> Self {
        assert!(min >= 1, "power-law support must start at 1 or above");
        assert!(min <= max, "min must not exceed max");
        let weights: Vec<f64> = (min..=max).map(|k| (k as f64).powf(-exponent)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        PowerLaw { min, cdf }
    }

    /// Smallest supported value.
    pub fn min(&self) -> usize {
        self.min
    }

    /// Largest supported value.
    pub fn max(&self) -> usize {
        self.min + self.cdf.len() - 1
    }

    /// Expected value of the distribution.
    pub fn mean(&self) -> f64 {
        let mut prev = 0.0;
        let mut mean = 0.0;
        for (i, &c) in self.cdf.iter().enumerate() {
            mean += (self.min + i) as f64 * (c - prev);
            prev = c;
        }
        mean
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // partition_point returns the count of entries < u, i.e. the first
        // index with cdf >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        self.min + idx.min(self.cdf.len() - 1)
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<usize> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Finds the smallest cut-off `min` such that a power law on `[min, max]`
/// with `exponent` has mean at least `target_mean`; used by LFR to hit a
/// requested average degree. Returns `None` if even `[max, max]` is below
/// the target.
pub fn min_for_mean(exponent: f64, max: usize, target_mean: f64) -> Option<usize> {
    (1..=max).find(|&lo| PowerLaw::new(exponent, lo, max).mean() >= target_mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degenerate_single_value() {
        let pl = PowerLaw::new(2.0, 5, 5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(pl.sample(&mut rng), 5);
        }
        assert!((pl.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn samples_stay_in_range() {
        let pl = PowerLaw::new(2.0, 3, 50);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let k = pl.sample(&mut rng);
            assert!((3..=50).contains(&k));
        }
    }

    #[test]
    fn small_values_dominate() {
        let pl = PowerLaw::new(2.5, 1, 100);
        let mut rng = StdRng::seed_from_u64(3);
        let samples = pl.sample_n(&mut rng, 5000);
        let ones = samples.iter().filter(|&&k| k == 1).count();
        assert!(
            ones > samples.len() / 2,
            "exponent 2.5 should put >50% mass on k=1, got {ones}"
        );
    }

    #[test]
    fn empirical_mean_matches_analytic() {
        let pl = PowerLaw::new(2.0, 5, 150);
        let mut rng = StdRng::seed_from_u64(4);
        let samples = pl.sample_n(&mut rng, 20000);
        let emp = samples.iter().sum::<usize>() as f64 / samples.len() as f64;
        assert!(
            (emp - pl.mean()).abs() < 0.5,
            "empirical {emp} vs analytic {}",
            pl.mean()
        );
    }

    #[test]
    fn min_for_mean_hits_target() {
        let max = 150;
        let target = 50.0;
        let lo = min_for_mean(2.0, max, target).unwrap();
        let mean = PowerLaw::new(2.0, lo, max).mean();
        assert!(mean >= target, "mean {mean} below target");
        if lo > 1 {
            let below = PowerLaw::new(2.0, lo - 1, max).mean();
            assert!(below < target, "cut-off not minimal");
        }
    }

    #[test]
    fn min_for_mean_unreachable() {
        assert_eq!(min_for_mean(2.0, 10, 11.0), None);
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn invalid_range_panics() {
        PowerLaw::new(2.0, 10, 5);
    }
}
