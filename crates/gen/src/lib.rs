//! # oca-gen — benchmark graph generators for the OCA reproduction
//!
//! Builds every dataset family the paper evaluates on (Table I):
//!
//! * [`lfr()`] — the LFR benchmark of Lancichinetti–Fortunato–Radicchi
//!   (ref \[9\]), with power-law degrees, power-law community sizes and a
//!   mixing parameter `µ`; used by Figures 2, 5 and 6.
//! * [`daisy()`] / [`daisy_tree()`] — the paper's own *overlapping*
//!   benchmark (Figures 3 and 4).
//! * [`barabasi_albert()`] and [`rmat()`] — scale-free generators standing
//!   in for the Wikipedia link graph (see DESIGN.md §3 for the substitution
//!   rationale).
//! * [`gnp()`] and [`planted_partition()`] — auxiliary generators for tests
//!   and ablations.
//!
//! All generators are deterministic given a seed, and the ones with planted
//! structure return a [`oca_graph::Cover`] ground truth alongside the graph.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ba;
pub mod config_model;
pub mod daisy;
pub mod gnp;
pub mod lfr;
pub mod planted;
pub mod powerlaw;
pub mod rmat;
pub mod wiki_like;

pub use ba::barabasi_albert;
pub use daisy::{daisy, daisy_tree, DaisyBenchmark, DaisyLayout, DaisyParams};
pub use gnp::gnp;
pub use lfr::{lfr, lfr_overlapping, realized_mixing, LfrBenchmark, LfrParams};
pub use planted::{planted_partition, PlantedPartition};
pub use powerlaw::PowerLaw;
pub use rmat::{rmat, rmat_edges, rmat_edges_into, RmatParams};
pub use wiki_like::{wiki_like, wiki_like_edges, WikiLikeBenchmark, WikiLikeParams};
