//! A Wikipedia-like workload: scale-free background plus dense cores.
//!
//! The paper's Wikipedia experiment (Section V) runs OCA on the 2009 link
//! graph and reports that "all relevant communities" were found in under
//! 3.25 hours — i.e. the graph is hub-heavy, most nodes belong to no
//! community, and the relevant communities are dense cores. Since the
//! snapshot is not redistributable, this generator reproduces those three
//! properties synthetically: an R-MAT background (heavy-tailed degrees)
//! with planted dense communities covering a small fraction of the nodes.
//! See DESIGN.md §3 for the substitution argument.

use crate::gnp::sprinkle_clique_with;
use crate::rmat::{rmat_edges, RmatParams};
use oca_graph::{Community, Cover, CsrGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters of the Wikipedia-like benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WikiLikeParams {
    /// log₂ of the node count (R-MAT scale).
    pub scale: u32,
    /// Background edges per node.
    pub edge_factor: usize,
    /// Fraction of nodes placed into planted communities.
    pub community_fraction: f64,
    /// Planted community sizes, sampled uniformly from this range.
    pub community_size: (usize, usize),
    /// Internal edge probability of planted communities.
    pub internal_density: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WikiLikeParams {
    /// Defaults matching Wikipedia's shape at a configurable scale:
    /// average background degree ≈ 10, 10% of nodes in dense cores.
    pub fn at_scale(scale: u32, seed: u64) -> Self {
        WikiLikeParams {
            scale,
            edge_factor: 10,
            community_fraction: 0.10,
            community_size: (20, 60),
            internal_density: 0.6,
            seed,
        }
    }
}

/// The generated benchmark: the graph plus its planted dense cores.
#[derive(Debug, Clone)]
pub struct WikiLikeBenchmark {
    /// The generated graph.
    pub graph: CsrGraph,
    /// The planted communities ("relevant communities" in paper terms).
    pub planted: Cover,
}

/// Generates a Wikipedia-like graph.
pub fn wiki_like(params: &WikiLikeParams) -> WikiLikeBenchmark {
    let n = 1usize << params.scale;
    let mut builder = GraphBuilder::new(n).with_edge_capacity(
        n * params.edge_factor + (n as f64 * params.community_fraction) as usize * 20,
    );
    let planted = wiki_like_edges(params, |u, v| builder.add_edge(u, v));
    WikiLikeBenchmark {
        graph: builder.build(),
        planted,
    }
}

/// Streams the Wikipedia-like edge sequence to a closure and returns the
/// planted cover (in the emitted node-id space). [`wiki_like`] is this
/// function with a [`GraphBuilder`] as the sink, so a streamed build —
/// e.g. feeding the external-memory `.ocg` builder at scales where the
/// edge list cannot live in RAM — sees exactly the same edges for the
/// same parameters.
pub fn wiki_like_edges(params: &WikiLikeParams, mut emit: impl FnMut(u32, u32)) -> Cover {
    assert!((0.0..=1.0).contains(&params.community_fraction));
    assert!((0.0..=1.0).contains(&params.internal_density));
    assert!(params.community_size.0 >= 2 && params.community_size.0 <= params.community_size.1);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let n = 1usize << params.scale;
    rmat_edges(
        &RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            scale: params.scale,
            edge_factor: params.edge_factor,
        },
        &mut rng,
        &mut emit,
    );

    // Plant dense cores on a random node subset.
    let mut nodes: Vec<u32> = (0..n as u32).collect();
    nodes.shuffle(&mut rng);
    let budget = (n as f64 * params.community_fraction) as usize;
    let mut used = 0usize;
    let mut communities = Vec::new();
    while used < budget {
        let size = rng
            .random_range(params.community_size.0..=params.community_size.1)
            .min(budget - used)
            .max(2);
        let members = &nodes[used..used + size];
        sprinkle_clique_with(members, params.internal_density, &mut rng, &mut emit);
        communities.push(Community::from_raw(members.iter().copied()));
        used += size;
    }
    Cover::new(n, communities)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WikiLikeParams {
        WikiLikeParams::at_scale(10, 7)
    }

    #[test]
    fn node_count_and_validity() {
        let b = wiki_like(&small());
        assert_eq!(b.graph.node_count(), 1024);
        assert!(b.graph.validate().is_ok());
    }

    #[test]
    fn planted_fraction_respected() {
        let b = wiki_like(&small());
        let planted_nodes: usize = b.planted.communities().iter().map(|c| c.len()).sum();
        let want = (1024.0 * 0.10) as usize;
        assert!(
            planted_nodes >= want.saturating_sub(1) && planted_nodes <= want + 60,
            "planted {planted_nodes} vs budget {want}"
        );
    }

    #[test]
    fn planted_cores_are_dense() {
        let b = wiki_like(&small());
        for c in b.planted.communities() {
            if c.len() >= 10 {
                assert!(
                    c.density(&b.graph) > 0.4,
                    "core of size {} too sparse: {}",
                    c.len(),
                    c.density(&b.graph)
                );
            }
        }
    }

    #[test]
    fn background_has_hubs() {
        let b = wiki_like(&WikiLikeParams::at_scale(12, 9));
        assert!(
            (b.graph.max_degree() as f64) > 5.0 * b.graph.average_degree(),
            "expected hub-heavy background"
        );
    }

    #[test]
    fn streamed_edges_match_built_graph() {
        let params = small();
        let built = wiki_like(&params);
        let n = 1usize << params.scale;
        let mut b = GraphBuilder::new(n);
        let planted = wiki_like_edges(&params, |u, v| b.add_edge(u, v));
        assert_eq!(b.build(), built.graph);
        assert_eq!(planted, built.planted);
    }

    #[test]
    fn deterministic() {
        let a = wiki_like(&small());
        let b = wiki_like(&small());
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.planted, b.planted);
    }
}
