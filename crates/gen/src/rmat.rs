//! R-MAT (recursive matrix) graph generation.
//!
//! The classic Chakrabarti–Zhan–Faloutsos generator: each edge picks its
//! endpoints by recursively descending a 2×2 probability matrix
//! `(a, b; c, d)`. With the default skewed parameters it produces the
//! heavy-tailed, community-ish structure typical of web/wiki link graphs —
//! our stand-in for the paper's 1.7·10⁷-node Wikipedia snapshot.

use oca_graph::{CsrGraph, GraphBuilder};
use rand::Rng;

/// R-MAT parameters; the four quadrant probabilities must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// log₂ of the node count.
    pub scale: u32,
    /// Average directed edges per node; undirected simplification lowers
    /// the realized count slightly.
    pub edge_factor: usize,
}

impl RmatParams {
    /// The widely used Graph500-style defaults (a=0.57, b=c=0.19).
    pub fn graph500(scale: u32, edge_factor: usize) -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            scale,
            edge_factor,
        }
    }

    /// The implied bottom-right probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT graph with `2^scale` nodes.
///
/// # Panics
/// Panics if probabilities are invalid.
pub fn rmat<R: Rng + ?Sized>(params: &RmatParams, rng: &mut R) -> CsrGraph {
    let n = 1usize << params.scale;
    let mut builder = GraphBuilder::new(n).with_edge_capacity(n.saturating_mul(params.edge_factor));
    rmat_edges_into(params, &mut builder, rng);
    builder.build()
}

/// Streams R-MAT edges into an existing builder (used by composite
/// generators such as [`crate::wiki_like()`]).
///
/// # Panics
/// Panics if probabilities are invalid.
pub fn rmat_edges_into<R: Rng + ?Sized>(
    params: &RmatParams,
    builder: &mut GraphBuilder,
    rng: &mut R,
) {
    rmat_edges(params, rng, |u, v| builder.add_edge(u, v));
}

/// Streams R-MAT edges to a closure, consuming the RNG exactly as
/// [`rmat_edges_into`] does (it is the same loop), so a streamed build and
/// an in-RAM build from the same seeded RNG see identical edges. This is
/// what lets the external-memory `.ocg` builder generate 100M+-edge
/// graphs without materializing the edge list.
///
/// # Panics
/// Panics if probabilities are invalid.
pub fn rmat_edges<R: Rng + ?Sized>(
    params: &RmatParams,
    rng: &mut R,
    mut emit: impl FnMut(u32, u32),
) {
    let d = params.d();
    assert!(
        params.a >= 0.0 && params.b >= 0.0 && params.c >= 0.0 && d >= -1e-9,
        "quadrant probabilities must be non-negative and sum to 1"
    );
    let n = 1usize << params.scale;
    let m = n.saturating_mul(params.edge_factor);
    let ab = params.a + params.b;
    let a_frac = if ab > 0.0 { params.a / ab } else { 0.5 };
    let cd = params.c + d;
    let c_frac = if cd > 0.0 { params.c / cd } else { 0.5 };
    for _ in 0..m {
        let mut u = 0usize;
        let mut v = 0usize;
        for _ in 0..params.scale {
            u <<= 1;
            v <<= 1;
            let top: bool = rng.random::<f64>() < ab;
            let left: bool = if top {
                rng.random::<f64>() < a_frac
            } else {
                rng.random::<f64>() < c_frac
            };
            if !top {
                u |= 1;
            }
            if !left {
                v |= 1;
            }
        }
        if u != v {
            emit(u as u32, v as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn node_count_is_power_of_two() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = rmat(&RmatParams::graph500(8, 4), &mut rng);
        assert_eq!(g.node_count(), 256);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn edge_count_close_to_requested() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = rmat(&RmatParams::graph500(10, 8), &mut rng);
        let requested = 1024 * 8;
        // Self-loops and duplicates shrink the realized count.
        assert!(g.edge_count() <= requested);
        assert!(
            g.edge_count() > requested / 2,
            "too many collisions: {}",
            g.edge_count()
        );
    }

    #[test]
    fn skewed_parameters_create_hubs() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = rmat(&RmatParams::graph500(12, 8), &mut rng);
        assert!(
            (g.max_degree() as f64) > 6.0 * g.average_degree(),
            "R-MAT should produce hubs: max {} avg {}",
            g.max_degree(),
            g.average_degree()
        );
    }

    #[test]
    fn uniform_parameters_look_like_gnp() {
        let mut rng = StdRng::seed_from_u64(4);
        let params = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            scale: 10,
            edge_factor: 6,
        };
        let g = rmat(&params, &mut rng);
        // Under uniform quadrants degrees concentrate: max degree stays small.
        assert!((g.max_degree() as f64) < 6.0 * g.average_degree());
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn invalid_probabilities_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        let params = RmatParams {
            a: 0.9,
            b: 0.9,
            c: 0.1,
            scale: 4,
            edge_factor: 2,
        };
        rmat(&params, &mut rng);
    }
}
