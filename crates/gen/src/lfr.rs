//! LFR benchmark graphs (Lancichinetti–Fortunato–Radicchi, paper ref \[9\]).
//!
//! Power-law degree sequence, power-law community sizes, and a mixing
//! parameter `µ` controlling the fraction of each node's edges that leave
//! its community. Ground-truth communities are returned alongside the graph,
//! which is what Figures 2, 5 and 6 of the OCA paper consume.

use crate::config_model::{wire, wire_simple};
use crate::powerlaw::{min_for_mean, PowerLaw};
use oca_graph::{Community, Cover, CsrGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of an LFR benchmark instance.
#[derive(Debug, Clone, PartialEq)]
pub struct LfrParams {
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Mixing parameter `µ ∈ [0, 1]`: fraction of each node's degree that
    /// points outside its community.
    pub mixing: f64,
    /// Degree power-law exponent `τ₁` (paper default 2).
    pub degree_exponent: f64,
    /// Community-size power-law exponent `τ₂` (paper default 1).
    pub community_exponent: f64,
    /// Target average degree.
    pub average_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Minimum community size.
    pub min_community: usize,
    /// Maximum community size.
    pub max_community: usize,
    /// RNG seed.
    pub seed: u64,
}

impl LfrParams {
    /// Reasonable small-scale defaults (n = 1000, the regime of Fig. 2).
    pub fn small(nodes: usize, mixing: f64, seed: u64) -> Self {
        LfrParams {
            nodes,
            mixing,
            degree_exponent: 2.0,
            community_exponent: 1.0,
            average_degree: 20.0,
            max_degree: 50,
            min_community: 20,
            max_community: 50,
            seed,
        }
    }

    /// The configuration of the paper's Fig. 5 and 6 timing experiments:
    /// av.deg = 50, max.deg = 150, community sizes in `[min_c, max_c]`.
    pub fn timing(nodes: usize, min_c: usize, max_c: usize, seed: u64) -> Self {
        LfrParams {
            nodes,
            mixing: 0.2,
            degree_exponent: 2.0,
            community_exponent: 1.0,
            average_degree: 50.0,
            max_degree: 150,
            min_community: min_c,
            max_community: max_c,
            seed,
        }
    }

    fn validate(&self) {
        assert!(self.nodes >= 2, "need at least two nodes");
        assert!(
            (0.0..=1.0).contains(&self.mixing),
            "mixing must lie in [0, 1]"
        );
        assert!(self.max_degree >= 1 && self.max_degree < self.nodes);
        assert!(self.min_community >= 2, "communities need at least 2 nodes");
        assert!(self.min_community <= self.max_community);
        assert!(
            self.max_community <= self.nodes,
            "max community exceeds node count"
        );
    }
}

/// A generated LFR instance: the graph plus its planted community structure.
#[derive(Debug, Clone)]
pub struct LfrBenchmark {
    /// The generated graph.
    pub graph: CsrGraph,
    /// The planted (non-overlapping) community structure.
    pub ground_truth: Cover,
}

/// Generates an LFR benchmark graph.
pub fn lfr(params: &LfrParams) -> LfrBenchmark {
    params.validate();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let n = params.nodes;

    // 1. Degree sequence: power law on [k_min, max_degree] whose mean hits
    //    the requested average degree.
    let k_min = min_for_mean(
        params.degree_exponent,
        params.max_degree,
        params.average_degree,
    )
    .unwrap_or(params.max_degree);
    let deg_dist = PowerLaw::new(params.degree_exponent, k_min, params.max_degree);
    let degrees: Vec<usize> = deg_dist.sample_n(&mut rng, n);

    // 2. Community sizes: power law until the sizes cover all nodes.
    let size_dist = PowerLaw::new(
        params.community_exponent,
        params.min_community,
        params.max_community,
    );
    let mut sizes: Vec<usize> = Vec::new();
    let mut total = 0usize;
    while total < n {
        let s = size_dist.sample(&mut rng);
        sizes.push(s);
        total += s;
    }
    let excess = total - n;
    if excess > 0 {
        let last = *sizes.last().unwrap();
        if last > excess && last - excess >= params.min_community {
            let shrunk = last - excess;
            *sizes.last_mut().unwrap() = shrunk;
        } else {
            // Drop the last community and spread its shortfall.
            sizes.pop();
            if sizes.is_empty() {
                sizes.push(n);
            } else {
                let covered: usize = sizes.iter().sum();
                let mut leftover = n - covered;
                let len = sizes.len();
                let mut i = 0usize;
                while leftover > 0 {
                    sizes[i % len] += 1;
                    leftover -= 1;
                    i += 1;
                }
            }
        }
    }
    debug_assert_eq!(sizes.iter().sum::<usize>(), n);

    // 3. Internal degrees, capped so every node fits in the largest community.
    let max_size = *sizes.iter().max().unwrap();
    let mut internal: Vec<usize> = degrees
        .iter()
        .map(|&d| {
            let i = ((1.0 - params.mixing) * d as f64).round() as usize;
            i.min(d).min(max_size - 1)
        })
        .collect();

    // 4. Assign nodes to communities, hardest (highest internal degree)
    //    first, into a random community that still has room and is large
    //    enough for the node's internal degree.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| internal[b].cmp(&internal[a]));
    let mut capacity = sizes.clone();
    let mut community_of = vec![usize::MAX; n];
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); sizes.len()];
    for &v in &order {
        let mut candidates: Vec<usize> = (0..sizes.len())
            .filter(|&ci| capacity[ci] > 0 && sizes[ci] > internal[v])
            .collect();
        if candidates.is_empty() {
            // Relax: any community with room; shrink the internal degree.
            candidates = (0..sizes.len()).filter(|&ci| capacity[ci] > 0).collect();
            let ci = candidates[rng.random_range(0..candidates.len())];
            internal[v] = internal[v].min(sizes[ci].saturating_sub(1));
            capacity[ci] -= 1;
            community_of[v] = ci;
            members[ci].push(v as u32);
        } else {
            let ci = candidates[rng.random_range(0..candidates.len())];
            capacity[ci] -= 1;
            community_of[v] = ci;
            members[ci].push(v as u32);
        }
    }

    // 5. Wire internal edges per community with a local configuration model.
    let mut builder = GraphBuilder::new(n);
    for mem in &members {
        let local_deg: Vec<usize> = mem.iter().map(|&v| internal[v as usize]).collect();
        let local_edges = wire_simple(&local_deg, &mut rng, 25);
        for (a, b) in local_edges {
            builder.add_edge(mem[a as usize], mem[b as usize]);
        }
    }

    // 6. Wire external edges globally, forbidding intra-community pairs.
    let external: Vec<usize> = degrees
        .iter()
        .zip(&internal)
        .map(|(&d, &i)| d.saturating_sub(i))
        .collect();
    let ext_edges = wire(&external, &mut rng, 25, |u, v| {
        community_of[u as usize] == community_of[v as usize]
    });
    for (u, v) in ext_edges {
        builder.add_edge(u, v);
    }

    // Shuffle-independence: ground truth from the assignment.
    let communities = members
        .into_iter()
        .filter(|m| !m.is_empty())
        .map(Community::from_raw)
        .collect();
    LfrBenchmark {
        graph: builder.build(),
        ground_truth: Cover::new(n, communities),
    }
}

/// Generates an *overlapping* LFR variant.
///
/// The classic LFR extension parameterizes overlap by `on` (number of
/// overlapping nodes) and `om` (memberships per overlapping node). We
/// realize it by the virtual-node construction: generate a standard LFR
/// instance with `on·(om−1)` extra virtual nodes, then fold each extra
/// virtual node onto one of the first `on` physical hosts — the host
/// inherits the virtual node's edges and community, ending up with `om`
/// memberships (fewer if two of its virtual nodes landed in the same
/// community).
///
/// # Panics
/// Panics if `memberships == 0` or `overlap_nodes > params.nodes`.
pub fn lfr_overlapping(
    params: &LfrParams,
    overlap_nodes: usize,
    memberships: usize,
) -> LfrBenchmark {
    assert!(memberships >= 1, "memberships must be at least 1");
    assert!(
        overlap_nodes <= params.nodes,
        "cannot have more overlapping nodes than nodes"
    );
    let extra = overlap_nodes * (memberships - 1);
    if extra == 0 {
        return lfr(params);
    }
    let mut virt_params = params.clone();
    virt_params.nodes += extra;
    let virt = lfr(&virt_params);
    let n = params.nodes;
    let fold = |v: u32| -> u32 {
        if (v as usize) < n {
            v
        } else {
            ((v as usize - n) % overlap_nodes) as u32
        }
    };
    let mut builder = GraphBuilder::new(n);
    for (u, v) in virt.graph.edges() {
        let (fu, fv) = (fold(u.raw()), fold(v.raw()));
        if fu != fv {
            builder.add_edge(fu, fv);
        }
    }
    let communities = virt
        .ground_truth
        .communities()
        .iter()
        .map(|c| Community::from_raw(c.members().iter().map(|v| fold(v.raw()))))
        .collect();
    LfrBenchmark {
        graph: builder.build(),
        ground_truth: Cover::new(n, communities),
    }
}

/// Measures the realized mixing: the fraction of edge endpoints that cross
/// a community boundary (should track the requested `µ`).
pub fn realized_mixing(bench: &LfrBenchmark) -> f64 {
    let idx = bench.ground_truth.membership_index();
    let mut cross = 0usize;
    let mut total = 0usize;
    for (u, v) in bench.graph.edges() {
        total += 1;
        let cu = &idx[u.index()];
        let cv = &idx[v.index()];
        if cu.iter().all(|c| !cv.contains(c)) {
            cross += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        cross as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize, mu: f64, seed: u64) -> LfrParams {
        LfrParams::small(n, mu, seed)
    }

    #[test]
    fn basic_generation_properties() {
        let b = lfr(&params(500, 0.2, 1));
        assert_eq!(b.graph.node_count(), 500);
        assert!(b.graph.validate().is_ok());
        // Every node in exactly one ground-truth community.
        let idx = b.ground_truth.membership_index();
        assert!(idx.iter().all(|m| m.len() == 1));
        // Community sizes within bounds (up to the redistribution slack).
        let (min, max, _) = b.ground_truth.size_stats().unwrap();
        assert!(min >= 2);
        assert!(max <= 50 + b.ground_truth.len());
    }

    #[test]
    fn average_degree_close_to_target() {
        let b = lfr(&params(1000, 0.3, 2));
        let avg = b.graph.average_degree();
        assert!(
            (avg - 20.0).abs() < 6.0,
            "avg degree {avg} too far from target 20"
        );
    }

    #[test]
    fn realized_mixing_tracks_mu() {
        for &mu in &[0.1, 0.3, 0.5] {
            let b = lfr(&params(1000, mu, 3));
            let got = realized_mixing(&b);
            assert!(
                (got - mu).abs() < 0.12,
                "requested µ = {mu}, realized {got}"
            );
        }
    }

    #[test]
    fn mu_zero_keeps_all_edges_internal() {
        let b = lfr(&params(400, 0.0, 4));
        let got = realized_mixing(&b);
        assert!(got < 0.02, "µ=0 should give ~no cross edges, got {got}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = lfr(&params(300, 0.25, 42));
        let b = lfr(&params(300, 0.25, 42));
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.ground_truth, b.ground_truth);
    }

    #[test]
    fn different_seeds_differ() {
        let a = lfr(&params(300, 0.25, 1));
        let b = lfr(&params(300, 0.25, 2));
        assert_ne!(a.graph, b.graph);
    }

    #[test]
    fn timing_preset_hits_degree_regime() {
        let p = LfrParams::timing(2000, 300, 350, 5);
        let b = lfr(&p);
        let avg = b.graph.average_degree();
        assert!(avg > 35.0, "timing preset avg degree {avg} too low");
        assert!(b.graph.max_degree() <= 150 + 1);
    }

    #[test]
    #[should_panic(expected = "mixing")]
    fn invalid_mixing_panics() {
        lfr(&params(100, 1.5, 0));
    }

    #[test]
    fn overlapping_variant_plants_overlap() {
        let on = 40;
        let om = 2;
        let b = lfr_overlapping(&params(400, 0.2, 6), on, om);
        assert_eq!(b.graph.node_count(), 400);
        assert!(b.graph.validate().is_ok());
        let overlapping = b.ground_truth.overlap_node_count();
        // Hosts whose two virtual nodes fell into the same community lose
        // their overlap; most should keep it.
        assert!(
            overlapping > on / 2,
            "only {overlapping} of {on} hosts overlap"
        );
        // Only the first `on` nodes may overlap.
        for (v, ms) in b.ground_truth.membership_index().iter().enumerate() {
            if v >= on {
                assert!(ms.len() <= 1, "node {v} unexpectedly overlaps");
            }
            assert!(ms.len() <= om, "node {v} has {} memberships", ms.len());
        }
    }

    #[test]
    fn overlapping_with_om_one_is_plain_lfr() {
        let a = lfr_overlapping(&params(300, 0.3, 7), 30, 1);
        let b = lfr(&params(300, 0.3, 7));
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.ground_truth, b.ground_truth);
    }

    #[test]
    fn overlapping_nodes_have_boosted_degree() {
        let b = lfr_overlapping(&params(400, 0.2, 8), 40, 3);
        let plain = lfr(&params(400, 0.2, 8));
        let avg_host: f64 = (0..40)
            .map(|v| b.graph.degree(oca_graph::NodeId(v)) as f64)
            .sum::<f64>()
            / 40.0;
        // Hosts absorb ~om nodes' worth of edges.
        assert!(
            avg_host > 1.5 * plain.graph.average_degree(),
            "hosts avg {avg_host} vs plain avg {}",
            plain.graph.average_degree()
        );
    }
}
