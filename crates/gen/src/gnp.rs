//! Erdős–Rényi `G(n, p)` random graphs.
//!
//! Uses geometric skipping (Batagelj–Brandes) so generation is `O(n + m)`
//! rather than `O(n²)`, which matters for the sparse regimes used throughout
//! the paper's experiments.

use oca_graph::{CsrGraph, GraphBuilder};
use rand::Rng;

/// Samples `G(n, p)`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if n < 2 || p == 0.0 {
        return b.build();
    }
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n = n as i64;
    while v < n {
        let r: f64 = rng.random();
        w += 1 + ((1.0 - r).ln() / log_q).floor() as i64;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            b.add_edge(w as u32, v as u32);
        }
    }
    b.build()
}

/// Adds each pair from `nodes` as an edge with probability `p`
/// (Bernoulli clique), streaming into an existing builder. Used by the
/// daisy generator for petal and core wiring.
pub fn sprinkle_clique<R: Rng + ?Sized>(b: &mut GraphBuilder, nodes: &[u32], p: f64, rng: &mut R) {
    sprinkle_clique_with(nodes, p, rng, |u, v| b.add_edge(u, v));
}

/// Closure-sink form of [`sprinkle_clique`]: identical RNG consumption
/// (it is the same loop), edges go to `emit` instead of a builder, so
/// streamed and in-RAM composite generators stay bit-identical.
pub fn sprinkle_clique_with<R: Rng + ?Sized>(
    nodes: &[u32],
    p: f64,
    rng: &mut R,
    mut emit: impl FnMut(u32, u32),
) {
    if p <= 0.0 || nodes.len() < 2 {
        return;
    }
    if p >= 1.0 {
        for (i, &u) in nodes.iter().enumerate() {
            for &v in &nodes[i + 1..] {
                emit(u, v);
            }
        }
        return;
    }
    // Geometric skipping over the flattened upper-triangular pair index.
    let k = nodes.len();
    let total = k * (k - 1) / 2;
    let log_q = (1.0 - p).ln();
    let mut idx: i64 = -1;
    loop {
        let r: f64 = rng.random();
        idx += 1 + ((1.0 - r).ln() / log_q).floor() as i64;
        if idx as usize >= total {
            break;
        }
        let (i, j) = unflatten(idx as usize, k);
        emit(nodes[i], nodes[j]);
    }
}

/// Maps a flat index in `0..k(k-1)/2` to an upper-triangular pair `(i, j)`,
/// `i < j`, rows ordered `(0,1), (0,2), …, (0,k−1), (1,2), …`.
fn unflatten(mut idx: usize, k: usize) -> (usize, usize) {
    let mut i = 0usize;
    let mut row = k - 1;
    while idx >= row {
        idx -= row;
        i += 1;
        row -= 1;
    }
    (i, i + 1 + idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn p_zero_and_p_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnp(10, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 0);
        let g = gnp(6, 1.0, &mut rng);
        assert_eq!(g.edge_count(), 15);
    }

    #[test]
    fn edge_count_near_expectation() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt() + 20.0,
            "got {got}, expected ≈{expected}"
        );
        assert!(g.validate().is_ok());
    }

    #[test]
    fn tiny_graphs() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(gnp(0, 0.5, &mut rng).node_count(), 0);
        assert_eq!(gnp(1, 0.5, &mut rng).edge_count(), 0);
    }

    #[test]
    fn unflatten_enumerates_pairs() {
        let k = 5;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..k * (k - 1) / 2 {
            let (i, j) = unflatten(idx, k);
            assert!(i < j && j < k);
            assert!(seen.insert((i, j)));
        }
        assert_eq!(seen.len(), 10);
        assert_eq!(unflatten(0, 5), (0, 1));
        assert_eq!(unflatten(3, 5), (0, 4));
        assert_eq!(unflatten(4, 5), (1, 2));
        assert_eq!(unflatten(9, 5), (3, 4));
    }

    #[test]
    fn sprinkle_clique_p_one_is_complete() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut b = oca_graph::GraphBuilder::new(10);
        sprinkle_clique(&mut b, &[2, 4, 6, 8], 1.0, &mut rng);
        let g = b.build();
        assert_eq!(g.edge_count(), 6);
    }

    #[test]
    fn sprinkle_clique_density_near_p() {
        let mut rng = StdRng::seed_from_u64(5);
        let nodes: Vec<u32> = (0..60).collect();
        let mut b = oca_graph::GraphBuilder::new(60);
        sprinkle_clique(&mut b, &nodes, 0.3, &mut rng);
        let g = b.build();
        let expected = 0.3 * (60.0 * 59.0 / 2.0);
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "got {got}, expected ≈{expected}"
        );
    }
}
