//! Planted-partition graphs: the simplest ground-truth generator.
//!
//! `k` equal blocks; within-block pairs wired with probability `p_in`,
//! cross-block pairs with `p_out`. Less realistic than LFR but exactly
//! analyzable, so it anchors correctness tests for every algorithm.

use crate::gnp::sprinkle_clique;
use oca_graph::{Community, Cover, CsrGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A planted-partition instance.
#[derive(Debug, Clone)]
pub struct PlantedPartition {
    /// The generated graph.
    pub graph: CsrGraph,
    /// The planted blocks.
    pub ground_truth: Cover,
}

/// Generates a planted partition with `blocks` blocks of `block_size` nodes.
pub fn planted_partition(
    blocks: usize,
    block_size: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> PlantedPartition {
    assert!(blocks >= 1 && block_size >= 1);
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let n = blocks * block_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let mut communities = Vec::with_capacity(blocks);
    let block_members: Vec<Vec<u32>> = (0..blocks)
        .map(|bi| {
            let lo = (bi * block_size) as u32;
            (lo..lo + block_size as u32).collect()
        })
        .collect();
    for members in &block_members {
        sprinkle_clique(&mut b, members, p_in, &mut rng);
        communities.push(Community::from_raw(members.iter().copied()));
    }
    if p_out > 0.0 {
        for i in 0..blocks {
            for j in (i + 1)..blocks {
                for &u in &block_members[i] {
                    for &v in &block_members[j] {
                        if rng.random::<f64>() < p_out {
                            b.add_edge(u, v);
                        }
                    }
                }
            }
        }
    }
    PlantedPartition {
        graph: b.build(),
        ground_truth: Cover::new(n, communities),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let pp = planted_partition(3, 10, 1.0, 0.0, 1);
        assert_eq!(pp.graph.node_count(), 30);
        assert_eq!(pp.graph.edge_count(), 3 * 45);
        let comps = oca_graph::Components::compute(&pp.graph);
        assert_eq!(comps.count(), 3);
    }

    #[test]
    fn ground_truth_is_partition() {
        let pp = planted_partition(4, 8, 0.8, 0.05, 2);
        let idx = pp.ground_truth.membership_index();
        assert!(idx.iter().all(|m| m.len() == 1));
        assert_eq!(pp.ground_truth.len(), 4);
    }

    #[test]
    fn internal_density_exceeds_external() {
        let pp = planted_partition(3, 20, 0.5, 0.02, 3);
        for c in pp.ground_truth.communities() {
            assert!(c.density(&pp.graph) > 0.3);
        }
    }

    #[test]
    fn single_block_is_gnp() {
        let pp = planted_partition(1, 15, 0.4, 0.0, 4);
        assert_eq!(pp.ground_truth.len(), 1);
        assert!(pp.graph.edge_count() > 0);
    }
}
