//! Configuration-model edge wiring.
//!
//! Given a degree sequence, pair up half-edge "stubs" uniformly at random,
//! then repair self-loops and duplicate edges by re-shuffling the offending
//! stubs a bounded number of times (dropping irreparable leftovers). This is
//! the wiring engine for both phases of the LFR generator.

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// Pairs stubs of `degrees` into simple undirected edges.
///
/// `forbidden(u, v)` rejects an edge beyond the simple-graph rules (used by
/// LFR to keep *external* edges out of communities). Stub pairs that cannot
/// be placed after `max_rounds` global re-shuffles are dropped, so the
/// realized degree sequence may fall slightly short — the standard
/// configuration-model compromise.
pub fn wire<R: Rng + ?Sized, F: Fn(u32, u32) -> bool>(
    degrees: &[usize],
    rng: &mut R,
    max_rounds: usize,
    forbidden: F,
) -> Vec<(u32, u32)> {
    let mut stubs: Vec<u32> = Vec::with_capacity(degrees.iter().sum());
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as u32, d));
    }
    // An odd stub count cannot be fully paired; drop one stub.
    if stubs.len() % 2 == 1 {
        stubs.pop();
    }
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(stubs.len() / 2);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(stubs.len() / 2);
    let mut pending = stubs;
    for _round in 0..max_rounds {
        if pending.len() < 2 {
            break;
        }
        pending.shuffle(rng);
        let mut leftover = Vec::new();
        for pair in pending.chunks(2) {
            let (mut u, mut v) = (pair[0], pair[1]);
            if u > v {
                std::mem::swap(&mut u, &mut v);
            }
            if u == v || seen.contains(&(u, v)) || forbidden(u, v) {
                leftover.push(pair[0]);
                leftover.push(pair[1]);
            } else {
                seen.insert((u, v));
                edges.push((u, v));
            }
        }
        if leftover.len() == pending.len() {
            // No progress; a further shuffle of the same multiset can still
            // succeed, but only rarely — one extra attempt then give up.
            pending = leftover;
            pending.shuffle(rng);
            continue;
        }
        pending = leftover;
    }
    edges
}

/// Configuration model with only the simple-graph constraints.
pub fn wire_simple<R: Rng + ?Sized>(
    degrees: &[usize],
    rng: &mut R,
    max_rounds: usize,
) -> Vec<(u32, u32)> {
    wire(degrees, rng, max_rounds, |_, _| false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn realized_degrees(n: usize, edges: &[(u32, u32)]) -> Vec<usize> {
        let mut d = vec![0usize; n];
        for &(u, v) in edges {
            d[u as usize] += 1;
            d[v as usize] += 1;
        }
        d
    }

    #[test]
    fn wires_regular_sequence_exactly() {
        // 3-regular on 8 nodes: 12 edges, realizable.
        let degrees = vec![3usize; 8];
        let mut rng = StdRng::seed_from_u64(7);
        let edges = wire_simple(&degrees, &mut rng, 20);
        let realized = realized_degrees(8, &edges);
        let deficit: usize = degrees
            .iter()
            .zip(&realized)
            .map(|(want, got)| want - got)
            .sum();
        assert!(
            deficit <= 2,
            "should realize nearly all stubs, deficit {deficit}"
        );
    }

    #[test]
    fn output_is_simple() {
        let degrees = vec![4usize; 10];
        let mut rng = StdRng::seed_from_u64(8);
        let edges = wire_simple(&degrees, &mut rng, 20);
        let mut seen = HashSet::new();
        for &(u, v) in &edges {
            assert_ne!(u, v, "self loop");
            assert!(u < v, "not normalized");
            assert!(seen.insert((u, v)), "duplicate edge");
        }
    }

    #[test]
    fn odd_stub_count_drops_one() {
        let degrees = vec![1usize, 1, 1]; // odd total
        let mut rng = StdRng::seed_from_u64(9);
        let edges = wire_simple(&degrees, &mut rng, 20);
        assert_eq!(edges.len(), 1);
    }

    #[test]
    fn forbidden_predicate_is_respected() {
        // Forbid everything touching node 0: it must end up isolated.
        let degrees = vec![2usize; 6];
        let mut rng = StdRng::seed_from_u64(10);
        let edges = wire(&degrees, &mut rng, 20, |u, v| u == 0 || v == 0);
        assert!(edges.iter().all(|&(u, v)| u != 0 && v != 0));
    }

    #[test]
    fn empty_and_zero_degrees() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(wire_simple(&[], &mut rng, 5).is_empty());
        assert!(wire_simple(&[0, 0, 0], &mut rng, 5).is_empty());
    }

    #[test]
    fn star_heavy_sequence() {
        // One hub of degree 5, five leaves of degree 1. Leaf–leaf pairings
        // are legal, so we only require a simple graph respecting the
        // degree caps, with most stubs realized.
        let degrees = vec![5usize, 1, 1, 1, 1, 1];
        let mut rng = StdRng::seed_from_u64(12);
        let edges = wire_simple(&degrees, &mut rng, 50);
        let realized = realized_degrees(6, &edges);
        for (v, (&want, &got)) in degrees.iter().zip(&realized).enumerate() {
            assert!(got <= want, "node {v} over-wired: {got} > {want}");
        }
        assert!(edges.len() >= 3, "too few realized edges: {}", edges.len());
    }
}
