//! Barabási–Albert preferential attachment.
//!
//! Produces scale-free graphs with a power-law degree tail — one of the two
//! substitutes (with R-MAT) for the paper's Wikipedia link graph, whose
//! degree distribution is heavy-tailed in the same way.

use oca_graph::{CsrGraph, GraphBuilder};
use rand::Rng;

/// Generates a Barabási–Albert graph: starts from a small clique and
/// attaches each new node to `m` existing nodes chosen proportionally to
/// their degree (via the standard repeated-endpoint trick).
///
/// # Panics
/// Panics if `m == 0`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> CsrGraph {
    assert!(m >= 1, "attachment count m must be at least 1");
    let seed_size = (m + 1).min(n);
    let mut b = GraphBuilder::new(n).with_edge_capacity(n.saturating_mul(m));
    // `targets` holds one entry per half-edge endpoint, so sampling a
    // uniform element is degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    for u in 0..seed_size as u32 {
        for v in (u + 1)..seed_size as u32 {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut chosen = Vec::with_capacity(m);
    for v in seed_size..n {
        chosen.clear();
        // Sample m distinct degree-proportional targets.
        let mut guard = 0usize;
        while chosen.len() < m && guard < 50 * m + 100 {
            guard += 1;
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(v as u32, t);
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn node_and_edge_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 500;
        let m = 3;
        let g = barabasi_albert(n, m, &mut rng);
        assert_eq!(g.node_count(), n);
        // Seed clique K4 has 6 edges; each later node adds m.
        let expected = 6 + (n - 4) * m;
        assert_eq!(g.edge_count(), expected);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn graph_is_connected() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = barabasi_albert(300, 2, &mut rng);
        assert!(oca_graph::is_connected(&g));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(2000, 3, &mut rng);
        let max = g.max_degree() as f64;
        let avg = g.average_degree();
        assert!(
            max > 8.0 * avg,
            "scale-free hub expected: max {max}, avg {avg}"
        );
    }

    #[test]
    fn tiny_inputs() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = barabasi_albert(1, 2, &mut rng);
        assert_eq!(g.node_count(), 1);
        let g = barabasi_albert(3, 5, &mut rng);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3, "falls back to triangle seed");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_m_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        barabasi_albert(10, 0, &mut rng);
    }
}
