//! Configuration of a full OCA run.

use crate::checkpoint::CheckpointConfig;
use crate::halting::HaltingConfig;
use crate::search::SearchConfig;
use crate::seed::SeedStrategy;
use oca_graph::DetectError;
use oca_spectral::PowerConfig;

/// Where the interaction strength `c` comes from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CStrategy {
    /// The paper's choice: `c = −1/λ_min` via the power method.
    Spectral(PowerConfig),
    /// A fixed value in `(0, 1)`; used by the ablation benches.
    Fixed(f64),
}

impl Default for CStrategy {
    fn default() -> Self {
        CStrategy::Spectral(PowerConfig::default())
    }
}

/// Full configuration of an OCA run.
#[derive(Debug, Clone, PartialEq)]
pub struct OcaConfig {
    /// Interaction-strength source.
    pub c: CStrategy,
    /// Initial-set construction per seed.
    pub seed_strategy: SeedStrategy,
    /// Greedy-ascent tunables.
    pub search: SearchConfig,
    /// Halting criteria for the seed loop.
    pub halting: HaltingConfig,
    /// Merge communities with similarity ≥ threshold (Section IV
    /// postprocessing); `None` disables merging.
    pub merge_threshold: Option<f64>,
    /// Force every node into a community afterwards (Section IV's orphan
    /// rule). Off by default — the paper keeps "just the most relevant
    /// nodes" unless an application needs a full cover.
    pub assign_orphans: bool,
    /// Discard local maxima smaller than this (noise communities).
    pub min_community_size: usize,
    /// Master RNG seed. Runs are fully deterministic: for a fixed seed
    /// (and fixed [`OcaConfig::batch`]) the cover is identical at any
    /// [`OcaConfig::threads`] count.
    pub rng_seed: u64,
    /// Worker threads. Never affects the output, only wall-clock time.
    pub threads: usize,
    /// Tickets (seeded ascents) per scheduling round. All seeds of a round
    /// are drawn against the same coverage snapshot, so `batch` is part of
    /// the deterministic schedule: changing it changes the cover, changing
    /// `threads` does not. Larger rounds synchronize less often but may
    /// discard up to `batch − 1` ascents past the halting cutoff.
    pub batch: usize,
    /// Run the ascents on a degree-ordered relabeled copy of the graph
    /// (hub adjacency rows packed together for cache locality; see
    /// `oca_graph::Relabeling`). The cover is mapped back and reported in
    /// original ids. Like `batch`, this is part of the schedule: it
    /// changes which seeds are drawn (seed picks index the relabeled id
    /// space), so covers differ from an unrelabeled run of the same seed,
    /// but quality is equivalent and determinism across thread counts is
    /// unaffected.
    pub relabel: bool,
    /// Crash-safe progress: periodically persist the driver's round-start
    /// state to a `.ockpt` file and (per the policy) resume from it. Not
    /// part of the deterministic schedule — a checkpointed run, a plain
    /// run, and a crash/resume chain all produce the identical cover.
    pub checkpoint: Option<CheckpointConfig>,
}

impl Default for OcaConfig {
    fn default() -> Self {
        OcaConfig {
            c: CStrategy::default(),
            seed_strategy: SeedStrategy::default(),
            search: SearchConfig::default(),
            halting: HaltingConfig::default(),
            merge_threshold: Some(0.5),
            assign_orphans: false,
            min_community_size: 3,
            rng_seed: 0x0CA,
            threads: 1,
            batch: 64,
            relabel: false,
            checkpoint: None,
        }
    }
}

impl OcaConfig {
    /// Validates parameter ranges, reporting violations as typed errors
    /// (call before a long run).
    pub fn validate(&self) -> Result<(), DetectError> {
        let invalid = |message: String| DetectError::InvalidConfig {
            algorithm: "OCA",
            message,
        };
        if let CStrategy::Fixed(c) = self.c {
            if !(c > 0.0 && c < 1.0) {
                return Err(invalid(format!("fixed c must lie in (0, 1), got {c}")));
            }
        }
        if let Some(t) = self.merge_threshold {
            if !(0.0..=1.0).contains(&t) {
                return Err(invalid(format!(
                    "merge threshold must lie in [0, 1], got {t}"
                )));
            }
        }
        if self.threads < 1 {
            return Err(invalid("need at least one thread".to_string()));
        }
        if self.batch < 1 {
            return Err(invalid("need at least one ticket per round".to_string()));
        }
        if self.halting.max_seeds < 1 {
            return Err(invalid("need at least one seed".to_string()));
        }
        if self.halting.stagnation_streak < 1 {
            return Err(invalid(
                "stagnation streak must be at least one rejected seed".to_string(),
            ));
        }
        if !(self.halting.seeds_per_covered >= 0.0 && self.halting.seeds_per_covered.is_finite()) {
            return Err(invalid(format!(
                "seeds-per-covered budget must be finite and non-negative, got {}",
                self.halting.seeds_per_covered
            )));
        }
        if !(self.search.budget_factor >= 0.0 && self.search.budget_factor.is_finite()) {
            return Err(invalid(format!(
                "ascent budget factor must be finite and non-negative, got {}",
                self.search.budget_factor
            )));
        }
        if self.search.max_moves < 1 {
            return Err(invalid("need at least one move per ascent".to_string()));
        }
        if let Some(ckpt) = &self.checkpoint {
            if ckpt.every_rounds < 1 {
                return Err(invalid(
                    "need at least one round between checkpoints".to_string(),
                ));
            }
            if ckpt.path.as_os_str().is_empty() {
                return Err(invalid("checkpoint path must not be empty".to_string()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        OcaConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_bad_fixed_c() {
        let cfg = OcaConfig {
            c: CStrategy::Fixed(1.5),
            ..Default::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("fixed c"));
    }

    #[test]
    fn rejects_zero_threads() {
        let cfg = OcaConfig {
            threads: 0,
            ..Default::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("thread"));
    }

    #[test]
    fn rejects_zero_stagnation_streak() {
        let cfg = OcaConfig {
            halting: HaltingConfig {
                stagnation_streak: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("streak"));
    }

    #[test]
    fn rejects_negative_efficiency_budget() {
        let cfg = OcaConfig {
            halting: HaltingConfig {
                seeds_per_covered: -0.5,
                ..Default::default()
            },
            ..Default::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("seeds-per-covered"));
    }

    #[test]
    fn rejects_non_finite_budget_factor() {
        use crate::search::SearchConfig;
        let cfg = OcaConfig {
            search: SearchConfig {
                budget_factor: f64::NAN,
                ..Default::default()
            },
            ..Default::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("budget factor"));
        let cfg = OcaConfig {
            search: SearchConfig {
                budget_factor: -1.0,
                ..Default::default()
            },
            ..Default::default()
        };
        cfg.validate().unwrap_err();
    }

    #[test]
    fn rejects_zero_batch() {
        let cfg = OcaConfig {
            batch: 0,
            ..Default::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("round"));
    }
}
