//! [`CommunityDetector`] implementation for OCA.
//!
//! The workspace-wide detection API lives in [`oca_graph::detect`]; this
//! module provides the thin config newtype that plugs OCA into it. The
//! `oca-api` crate registers it under the name `"oca"`.

use crate::config::OcaConfig;
use crate::runner::Oca;
use oca_graph::{CommunityDetector, CsrGraph, DetectContext, DetectError, Detection};

/// OCA behind the common [`CommunityDetector`] interface.
///
/// The context seed overrides [`OcaConfig::rng_seed`], so drivers control
/// determinism uniformly across algorithms. The driver's ticket schedule
/// makes the seed the *whole* contract: for a fixed seed the detection is
/// identical at any [`OcaConfig::threads`] count, so parallel runs are as
/// reproducible as sequential ones.
///
/// ```
/// use oca::{OcaConfig, OcaDetector};
/// use oca_graph::{from_edges, CommunityDetector, DetectContext};
///
/// let g = from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
/// let detector = OcaDetector::new(OcaConfig::default()).unwrap();
/// let detection = detector.detect(&g, &mut DetectContext::new(7)).unwrap();
/// assert!(!detection.cover.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct OcaDetector {
    config: OcaConfig,
}

impl OcaDetector {
    /// Wraps a validated configuration.
    pub fn new(config: OcaConfig) -> Result<Self, DetectError> {
        config.validate()?;
        Ok(OcaDetector { config })
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &OcaConfig {
        &self.config
    }
}

impl CommunityDetector for OcaDetector {
    fn name(&self) -> &'static str {
        "OCA"
    }

    fn detect(&self, graph: &CsrGraph, ctx: &mut DetectContext) -> Result<Detection, DetectError> {
        let mut config = self.config.clone();
        config.rng_seed = ctx.seed();
        let checkpointed = config.checkpoint.is_some();
        let result = Oca::try_new(config)?.run_ctx(graph, ctx)?;
        let mut stats = vec![
            ("c", format!("{:.6}", result.c)),
            ("lambda_min", format!("{:.6}", result.lambda_min)),
            ("raw_communities", result.raw_community_count.to_string()),
            (
                "halt_reason",
                result.halt_reason.map_or("none", |r| r.label()).to_string(),
            ),
            ("ascent_ns", result.phases.ascent_ns.to_string()),
            ("dedup_ns", result.phases.dedup_ns.to_string()),
            ("merge_ns", result.phases.merge_ns.to_string()),
            ("orphan_ns", result.phases.orphan_ns.to_string()),
            (
                "ascents_converged",
                result.ascent_stops.converged.to_string(),
            ),
            (
                "ascents_move_capped",
                result.ascent_stops.move_cap.to_string(),
            ),
            (
                "ascents_budget_stopped",
                result.ascent_stops.move_budget.to_string(),
            ),
            (
                "ascents_plateau_stopped",
                result.ascent_stops.plateau.to_string(),
            ),
        ];
        // The `ckpt_*` namespace only appears on checkpointed runs, so
        // plain detections keep their usual stat set.
        if checkpointed {
            stats.extend(result.checkpoint.stat_entries());
        }
        Ok(Detection {
            cover: result.cover,
            elapsed: result.elapsed,
            complete: true,
            iterations: result.seeds_tried,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CStrategy;
    use oca_graph::{from_edges, CancelToken};

    fn two_triangles() -> CsrGraph {
        from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let err = OcaDetector::new(OcaConfig {
            c: CStrategy::Fixed(2.0),
            ..Default::default()
        })
        .unwrap_err();
        assert!(matches!(err, DetectError::InvalidConfig { .. }));
    }

    #[test]
    fn context_seed_drives_the_run() {
        let g = two_triangles();
        let detector = OcaDetector::default();
        let a = detector.detect(&g, &mut DetectContext::new(3)).unwrap();
        let b = detector.detect(&g, &mut DetectContext::new(3)).unwrap();
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn thread_count_does_not_change_the_detection() {
        let g = two_triangles();
        let reference = OcaDetector::default()
            .detect(&g, &mut DetectContext::new(9))
            .unwrap();
        for threads in [2, 4] {
            let detector = OcaDetector::new(OcaConfig {
                threads,
                ..Default::default()
            })
            .unwrap();
            let d = detector.detect(&g, &mut DetectContext::new(9)).unwrap();
            assert_eq!(d.cover, reference.cover, "threads = {threads}");
            assert_eq!(d.iterations, reference.iterations, "threads = {threads}");
        }
    }

    #[test]
    fn reports_spectral_stats() {
        let g = two_triangles();
        let d = OcaDetector::default()
            .detect(&g, &mut DetectContext::new(1))
            .unwrap();
        assert!(d.complete);
        assert!(d.stats.iter().any(|(k, _)| *k == "c"));
        assert!(d.stats.iter().any(|(k, _)| *k == "lambda_min"));
        // The per-phase breakdown rides along so harnesses can attribute
        // wall-clock without OCA-specific plumbing.
        for phase in ["ascent_ns", "dedup_ns", "merge_ns", "orphan_ns"] {
            assert!(
                d.stats
                    .iter()
                    .any(|(k, v)| *k == phase && v.parse::<u64>().is_ok()),
                "missing phase stat {phase}"
            );
        }
    }

    /// Cap/budget hits surface in the detection stats, so harnesses can
    /// see when a run's ascents were cut short.
    #[test]
    fn reports_ascent_stop_telemetry() {
        let g = two_triangles();
        let d = OcaDetector::default()
            .detect(&g, &mut DetectContext::new(1))
            .unwrap();
        let stat = |key: &str| -> usize {
            d.stats
                .iter()
                .find(|(k, _)| *k == key)
                .unwrap_or_else(|| panic!("missing stat {key}"))
                .1
                .parse()
                .unwrap()
        };
        assert_eq!(stat("ascents_converged"), d.iterations);
        assert_eq!(stat("ascents_move_capped"), 0);
        assert_eq!(stat("ascents_budget_stopped"), 0);
        assert_eq!(stat("ascents_plateau_stopped"), 0);
        // A one-move cap shows up in the tally.
        let detector = OcaDetector::new(OcaConfig {
            search: crate::search::SearchConfig {
                max_moves: 1,
                ..Default::default()
            },
            ..Default::default()
        })
        .unwrap();
        let d = detector.detect(&g, &mut DetectContext::new(1)).unwrap();
        let capped: usize = d
            .stats
            .iter()
            .find(|(k, _)| *k == "ascents_move_capped")
            .unwrap()
            .1
            .parse()
            .unwrap();
        assert!(capped > 0);
    }

    #[test]
    fn pre_cancelled_context_returns_partial_error() {
        let g = two_triangles();
        let token = CancelToken::new();
        token.cancel();
        let mut ctx = DetectContext::new(1).with_cancel(token);
        let err = OcaDetector::default().detect(&g, &mut ctx).unwrap_err();
        match err {
            DetectError::Cancelled { partial } => assert!(!partial.complete),
            other => panic!("expected Cancelled, got {other}"),
        }
    }

    #[test]
    fn cancel_from_progress_callback_stops_the_run() {
        let g = two_triangles();
        let token = CancelToken::new();
        let trigger = token.clone();
        let mut ctx = DetectContext::new(1)
            .with_cancel(token)
            .with_progress(move |_| trigger.cancel());
        let err = OcaDetector::default().detect(&g, &mut ctx).unwrap_err();
        assert!(matches!(err, DetectError::Cancelled { .. }));
    }
}
