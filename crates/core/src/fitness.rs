//! The OCA fitness function: the directed Laplacian of `ϕ` on `Γ↑`.
//!
//! Section II maps a subset `S` to the sum of its nodes' virtual vectors,
//! with squared length `ϕ(S) = s + 2·c·Ein(S)` (`s = |S|`, `Ein` = internal
//! edges, `c` = interaction strength). Section III differentiates `ϕ` along
//! the search-space orientation with the *directed Laplacian*
//!
//! `L(S) = ϕ(S) − Σ_{i∈S} ϕ(S∖{i}) / √(s(s−1))`
//!
//! (each predecessor `S∖{i}` has in-degree `s−1`, `S` itself has in-degree
//! `s`). Substituting `ϕ` gives the closed form implemented here:
//!
//! `L(S) = s − √(s(s−1)) + 2·c·Ein(S) · (1 − (s−2)/√(s(s−1)))`
//!
//! Communities are the local maxima of `L` (Section IV).

/// Squared length of the sum vector: `ϕ(S) = s + 2·c·Ein(S)`.
#[inline]
pub fn phi(s: usize, ein: usize, c: f64) -> f64 {
    s as f64 + 2.0 * c * ein as f64
}

/// The directed-Laplacian fitness `L(S)` in closed form.
///
/// Conventions for degenerate sizes: the empty set scores 0 and a singleton
/// scores `ϕ({v}) = 1` (a singleton has no predecessors in `Γ↑`, so the
/// Laplacian reduces to `ϕ`).
#[inline]
pub fn fitness(s: usize, ein: usize, c: f64) -> f64 {
    match s {
        0 => 0.0,
        1 => 1.0,
        _ => {
            let sf = s as f64;
            let root = (sf * (sf - 1.0)).sqrt();
            sf - root + 2.0 * c * ein as f64 * (1.0 - (sf - 2.0) / root)
        }
    }
}

/// The directed Laplacian evaluated from Definition 3, without the closed
/// form: needs the internal degree of every member (`deg_S(i)`), since
/// `Ein(S∖{i}) = Ein(S) − deg_S(i)`. Used to cross-check [`fitness`].
pub fn fitness_from_definition(internal_degrees: &[usize], ein: usize, c: f64) -> f64 {
    let s = internal_degrees.len();
    if s == 0 {
        return 0.0;
    }
    if s == 1 {
        return phi(1, 0, c);
    }
    let denom = ((s * (s - 1)) as f64).sqrt();
    let predecessors: f64 = internal_degrees
        .iter()
        .map(|&d| phi(s - 1, ein - d, c))
        .sum();
    phi(s, ein, c) - predecessors / denom
}

/// Fitness gain of adding a node with `deg_in` neighbors inside `S`.
#[inline]
pub fn gain_add(s: usize, ein: usize, deg_in: usize, c: f64) -> f64 {
    fitness(s + 1, ein + deg_in, c) - fitness(s, ein, c)
}

/// Memoized `√(s(s−1))` values, the only transcendental in the hot path.
///
/// Every gain evaluation of the greedy ascent needs `fitness` at two
/// adjacent sizes, and each closed-form evaluation pays one `sqrt`. The
/// square roots depend only on `s`, so [`crate::state::CommunityState`]
/// keeps one of these tables and grows it to the largest community size it
/// has seen — steady-state ascents never call `sqrt` again. Table lookups
/// return the exact same `f64` the direct call would (the table *stores*
/// `sqrt` results, it does not approximate them), so memoized fitness is
/// bit-identical to [`fitness`].
#[derive(Debug, Clone, Default)]
pub struct SqrtTable {
    /// `roots[s] = √(s(s−1))`; index 0 and 1 hold 0.0.
    roots: Vec<f64>,
}

impl SqrtTable {
    /// An empty table; grows on [`SqrtTable::ensure`].
    pub fn new() -> Self {
        SqrtTable::default()
    }

    /// Number of sizes covered (lookups are valid for `s < len()`).
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// True when no size is covered yet.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Extends the table to cover sizes `0..=s`.
    pub fn ensure(&mut self, s: usize) {
        if s < self.roots.len() {
            return;
        }
        self.roots.reserve(s + 1 - self.roots.len());
        for k in self.roots.len()..=s {
            let kf = k as f64;
            self.roots.push((kf * (kf - 1.0)).sqrt());
        }
    }

    /// `√(s(s−1))` from the table. Callers must have covered `s` via
    /// [`SqrtTable::ensure`]; debug builds assert it.
    #[inline]
    pub fn root(&self, s: usize) -> f64 {
        debug_assert!(s < self.roots.len(), "SqrtTable not grown to {s}");
        self.roots[s]
    }

    /// [`fitness`] with the square root served from the table. Valid for
    /// `s < len()`; bit-identical to the direct computation.
    #[inline]
    pub fn fitness(&self, s: usize, ein: usize, c: f64) -> f64 {
        match s {
            0 => 0.0,
            1 => 1.0,
            _ => {
                let sf = s as f64;
                let root = self.root(s);
                sf - root + 2.0 * c * ein as f64 * (1.0 - (sf - 2.0) / root)
            }
        }
    }

    /// [`gain_add`] from the table. Valid for `s + 1 < len()`.
    #[inline]
    pub fn gain_add(&self, s: usize, ein: usize, deg_in: usize, c: f64) -> f64 {
        self.fitness(s + 1, ein + deg_in, c) - self.fitness(s, ein, c)
    }

    /// [`gain_remove`] from the table. Valid for `s < len()`.
    #[inline]
    pub fn gain_remove(&self, s: usize, ein: usize, deg_in: usize, c: f64) -> f64 {
        debug_assert!(s >= 1 && ein >= deg_in);
        self.fitness(s - 1, ein - deg_in, c) - self.fitness(s, ein, c)
    }
}

/// Fitness gain of removing a member with `deg_in` neighbors inside `S`
/// (not counting itself).
#[inline]
pub fn gain_remove(s: usize, ein: usize, deg_in: usize, c: f64) -> f64 {
    debug_assert!(s >= 1 && ein >= deg_in);
    fitness(s - 1, ein - deg_in, c) - fitness(s, ein, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 0.8;

    #[test]
    fn degenerate_sizes() {
        assert_eq!(fitness(0, 0, C), 0.0);
        assert_eq!(fitness(1, 0, C), 1.0);
    }

    #[test]
    fn closed_form_matches_definition() {
        // Triangle: degrees [2, 2, 2], ein = 3.
        let by_def = fitness_from_definition(&[2, 2, 2], 3, C);
        let closed = fitness(3, 3, C);
        assert!((by_def - closed).abs() < 1e-12, "{by_def} vs {closed}");

        // Path of 3: degrees [1, 2, 1], ein = 2.
        let by_def = fitness_from_definition(&[1, 2, 1], 2, C);
        let closed = fitness(3, 2, C);
        assert!((by_def - closed).abs() < 1e-12);

        // Independent pair.
        let by_def = fitness_from_definition(&[0, 0], 0, C);
        assert!((by_def - fitness(2, 0, C)).abs() < 1e-12);
    }

    #[test]
    fn more_internal_edges_scores_higher() {
        assert!(fitness(5, 10, C) > fitness(5, 4, C));
        assert!(fitness(10, 45, C) > fitness(10, 9, C));
    }

    #[test]
    fn ein_coefficient_is_always_positive() {
        // 1 − (s−2)/√(s(s−1)) > 0 for all s ≥ 2.
        for s in 2..10_000usize {
            let sf = s as f64;
            let coeff = 1.0 - (sf - 2.0) / (sf * (sf - 1.0)).sqrt();
            assert!(coeff > 0.0, "coefficient non-positive at s = {s}");
        }
    }

    #[test]
    fn clique_beats_sparse_growth() {
        // Example 2 of the paper: an independent set of size k has
        // ϕ = k while a clique has ϕ = Θ(k²); the Laplacian inherits the
        // separation.
        let k = 20;
        let clique = fitness(k, k * (k - 1) / 2, C);
        let independent = fitness(k, 0, C);
        assert!(clique > 10.0 * independent);
    }

    #[test]
    fn gains_are_consistent_with_fitness_differences() {
        let (s, ein) = (6, 9);
        for d in 0..=s {
            let g = gain_add(s, ein, d, C);
            assert!((g - (fitness(s + 1, ein + d, C) - fitness(s, ein, C))).abs() < 1e-12);
        }
        for d in 0..=3 {
            let g = gain_remove(s, ein, d, C);
            assert!((g - (fitness(s - 1, ein - d, C) - fitness(s, ein, C))).abs() < 1e-12);
        }
    }

    #[test]
    fn adding_isolated_node_to_dense_set_is_harmful() {
        // A 6-clique: adding a node with no internal edges must reduce L.
        let s = 6;
        let ein = 15;
        assert!(gain_add(s, ein, 0, C) < 0.0);
        // And adding a fully connected node must help.
        assert!(gain_add(s, ein, s, C) > 0.0);
    }

    #[test]
    fn removing_weak_member_from_dense_set_helps() {
        // 6 nodes, 11 edges: a 5-clique (10 edges) plus a pendant with one
        // edge. Removing the pendant (deg_in 1) should raise fitness.
        assert!(gain_remove(6, 11, 1, C) > 0.0);
        // Removing a clique member (deg_in 4 in the 5-clique + 0 to pendant)
        // should lower it.
        assert!(gain_remove(6, 11, 4, C) < 0.0);
    }

    #[test]
    fn sqrt_table_is_bit_identical_to_direct_evaluation() {
        let mut table = SqrtTable::new();
        table.ensure(64);
        assert_eq!(table.len(), 65);
        for s in 0..64usize {
            let ein = s * (s.saturating_sub(1)) / 2;
            // Exact equality on purpose: the table must not perturb the
            // ascent's tie-breaking by even one ulp.
            assert_eq!(table.fitness(s, ein, C), fitness(s, ein, C), "s = {s}");
            if s >= 1 {
                assert_eq!(table.gain_add(s, ein, s, C), gain_add(s, ein, s, C));
                assert_eq!(table.gain_remove(s, ein, 0, C), gain_remove(s, ein, 0, C));
            }
        }
        // Growing twice is idempotent.
        table.ensure(10);
        assert_eq!(table.len(), 65);
        assert_eq!(table.root(0), 0.0);
        assert_eq!(table.root(1), 0.0);
    }

    #[test]
    fn large_s_behaves_like_density() {
        // L ≈ 1/2 + 3·c·Ein/s for large s: check the asymptote.
        let s = 100_000;
        let ein = 1_000_000;
        let l = fitness(s, ein, C);
        let approx = 0.5 + 3.0 * C * ein as f64 / s as f64;
        assert!((l - approx).abs() / approx < 0.01, "{l} vs {approx}");
    }
}
