//! Deterministic checkpoint/resume for the multi-seed driver.
//!
//! The ticket-ordered schedule makes the driver's entire state a pure
//! function of (config, graph, cutoff ticket): per-ticket RNGs are derived
//! statelessly from the master seed, and the ordered reduction applies
//! outcomes in ticket order. A *round boundary* — the point where one
//! batch of tickets has been fully reduced and the next round's coverage
//! snapshot has not yet been taken — is therefore a complete cut: the
//! accepted communities, the dedup fingerprints, the uncovered list (in
//! its exact swap-remove order, because seed picks index it), the coverage
//! bitmap, and the halting counters together determine every subsequent
//! ticket bit-for-bit, at any thread count.
//!
//! This module serializes exactly that cut into the `.ockpt` container
//! ([`oca_graph::ckpt`]) and reconstructs it on resume. Two binding
//! checksums refuse foreign files: one over the schedule-affecting
//! configuration (everything except `threads`, which never affects the
//! output, and `rng_seed`, which is *carried in the payload* and adopted
//! on resume so a driver restarted under a different nominal seed — e.g.
//! serve's per-round recompute seeds — still continues the original
//! schedule), and one over the graph's shape (node count, edge count,
//! degree sequence).
//!
//! Mid-round state is deliberately *not* checkpointable: tickets past the
//! round's cutoff may already be reduced out of order on other workers,
//! and the coverage snapshot lent to the workers is round-global. The
//! runner instead rewinds to the round start when asked to flush on
//! cancellation, which costs at most one round of redone work after
//! resume.

use crate::config::OcaConfig;
use crate::halting::AscentStopStats;
use oca_graph::ckpt::{read_ckpt_path, write_ckpt_path, CkptEnvelope, CkptError};
use oca_graph::{atomic_write_path, Community, CsrGraph, NodeId};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How an existing checkpoint file at the configured path is treated when
/// a run starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumePolicy {
    /// Ignore any existing file and start from ticket zero (the file is
    /// overwritten at the first boundary write).
    Fresh,
    /// Resume from the file; any damage or binding mismatch is a typed
    /// error ([`oca_graph::DetectError::Checkpoint`]). A *missing* file is
    /// a fresh start — the first run of a chain needs no special casing.
    Strict,
    /// Resume from the file if it is valid; delete it and start fresh if
    /// it is damaged or mismatched. For unattended restart loops (serve's
    /// background recompute) where a stale file must never wedge the
    /// service.
    Salvage,
}

/// Checkpointing configuration carried inside [`OcaConfig`].
///
/// Excluded from the config binding checksum (the checksum normalizes
/// `checkpoint` to `None`), so a resumed run may checkpoint to a different
/// path or cadence than the run that wrote the file.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// The `.ockpt` file to write (and resume from).
    pub path: PathBuf,
    /// Write every N round boundaries (1 = every round).
    pub every_rounds: u64,
    /// What to do with an existing file at `path` on start.
    pub resume: ResumePolicy,
    /// Fault injection for crash testing; unarmed in production.
    pub faults: CheckpointFaults,
}

impl CheckpointConfig {
    /// Checkpoint to `path` every round, resuming strictly — the default
    /// shape for CLI `detect --checkpoint`.
    pub fn at(path: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            path: path.into(),
            every_rounds: 1,
            resume: ResumePolicy::Strict,
            faults: CheckpointFaults::none(),
        }
    }
}

/// Which checkpoint fail points to arm, mirroring the serving layer's
/// `FaultSpec`: every field is an every-Nth trigger, `0` = never.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointFaultSpec {
    /// Every Nth checkpoint write attempt is torn: half the bytes are
    /// written to the temp file, then the write fails. The atomic path
    /// must leave the previous complete checkpoint in place.
    pub torn_write_every: u64,
    /// After the Nth *successful* checkpoint write, the driver aborts at
    /// the next round boundary as if killed — exercising exactly the
    /// crash window the resume path must cover.
    pub kill_after_writes: u64,
}

/// Shared fault counters; one allocation per armed plan.
#[derive(Debug)]
pub struct ArmedCheckpointFaults {
    spec: CheckpointFaultSpec,
    write_attempts: AtomicU64,
    torn_writes: AtomicU64,
    kills: AtomicU64,
}

/// A snapshot of how often each checkpoint fail point fired, so chaos
/// tests can assert they were not vacuous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointFaultCounts {
    /// Checkpoint write attempts observed.
    pub write_attempts: u64,
    /// Writes torn by injection.
    pub torn_writes: u64,
    /// Simulated kills taken at round boundaries.
    pub kills: u64,
}

/// Fault-injection handle carried in [`CheckpointConfig`]. Unarmed (the
/// production state) it is a single `Option` branch per site.
#[derive(Debug, Clone, Default)]
pub struct CheckpointFaults {
    armed: Option<Arc<ArmedCheckpointFaults>>,
}

impl PartialEq for CheckpointFaults {
    fn eq(&self, other: &Self) -> bool {
        match (&self.armed, &other.armed) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl CheckpointFaults {
    /// The unarmed plan: no fail point ever fires.
    pub fn none() -> Self {
        CheckpointFaults { armed: None }
    }

    /// Arms the fail points in `spec`.
    pub fn new(spec: CheckpointFaultSpec) -> Self {
        CheckpointFaults {
            armed: Some(Arc::new(ArmedCheckpointFaults {
                spec,
                write_attempts: AtomicU64::new(0),
                torn_writes: AtomicU64::new(0),
                kills: AtomicU64::new(0),
            })),
        }
    }

    /// True when any fail point is armed.
    pub fn is_armed(&self) -> bool {
        self.armed.is_some()
    }

    /// How often each fail point fired so far.
    pub fn counts(&self) -> CheckpointFaultCounts {
        match &self.armed {
            None => CheckpointFaultCounts::default(),
            Some(a) => CheckpointFaultCounts {
                write_attempts: a.write_attempts.load(Ordering::Relaxed),
                torn_writes: a.torn_writes.load(Ordering::Relaxed),
                kills: a.kills.load(Ordering::Relaxed),
            },
        }
    }

    /// Counts a write attempt; true if this one should be torn.
    pub(crate) fn check_torn_write(&self) -> bool {
        let Some(a) = &self.armed else { return false };
        let n = a.write_attempts.fetch_add(1, Ordering::Relaxed) + 1;
        let every = a.spec.torn_write_every;
        if every > 0 && n % every == 0 {
            a.torn_writes.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// True if the driver should simulate a kill now, given that
    /// `successful_writes` checkpoints have landed. Fires at most once.
    pub(crate) fn check_kill(&self, successful_writes: u64) -> bool {
        let Some(a) = &self.armed else { return false };
        let after = a.spec.kill_after_writes;
        if after > 0
            && successful_writes >= after
            && a.kills
                .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            return true;
        }
        false
    }
}

/// Per-run checkpoint telemetry, surfaced on `OcaResult` and as
/// `Detection` stats (and from there into `BENCH_hotpath.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointStats {
    /// Round boundaries at which a checkpoint was successfully written.
    pub rounds_checkpointed: u64,
    /// Size in bytes of the last successful write.
    pub last_bytes: u64,
    /// Duration of the last successful write, in nanoseconds.
    pub last_write_ns: u64,
    /// Total time spent writing checkpoints, in nanoseconds.
    pub total_write_ns: u64,
    /// Write attempts that failed (I/O errors, injected tears); the run
    /// continues past them, keeping the previous checkpoint.
    pub write_failures: u64,
    /// The ticket this run resumed from, if it resumed at all.
    pub resumed_from_ticket: Option<u64>,
}

impl CheckpointStats {
    /// Renders the telemetry as `Detection`-style stat pairs (the
    /// `ckpt_*` namespace). `ckpt_resumed_from` appears only on runs that
    /// actually resumed.
    pub fn stat_entries(&self) -> Vec<(&'static str, String)> {
        let mut out = vec![
            ("ckpt_rounds", self.rounds_checkpointed.to_string()),
            ("ckpt_last_bytes", self.last_bytes.to_string()),
            ("ckpt_last_write_ns", self.last_write_ns.to_string()),
            ("ckpt_total_write_ns", self.total_write_ns.to_string()),
            ("ckpt_write_failures", self.write_failures.to_string()),
        ];
        if let Some(ticket) = self.resumed_from_ticket {
            out.push(("ckpt_resumed_from", ticket.to_string()));
        }
        out
    }
}

/// The driver's complete round-boundary state, as serialized.
///
/// Field order is the payload layout (all integers little-endian).
#[derive(Debug, Clone, PartialEq)]
pub struct DriverCheckpoint {
    /// The master RNG seed of the original run; adopted on resume so the
    /// remaining tickets continue the original schedule.
    pub rng_seed: u64,
    /// The resolved interaction strength (spectral resolution is itself
    /// deterministic, but re-resolving costs a power-method run).
    pub c: f64,
    /// The λ_min estimate behind `c` (telemetry; 0 when `c` was fixed).
    pub lambda_min: f64,
    /// Tickets fully reduced — the next round starts here.
    pub seeds_tried: u64,
    /// Covered-node count (must equal the bitmap's popcount).
    pub covered: u64,
    /// Stagnation-window counter at the boundary.
    pub stagnant: u64,
    /// Duplicate-streak counter at the boundary.
    pub rejected_streak: u64,
    /// Ascent stop tallies at the boundary.
    pub stops: AscentStopStats,
    /// Node count of the graph the driver ran on (the relabeled copy when
    /// `relabel` is set); redundant with the graph binding, kept for
    /// structural validation.
    pub node_count: u64,
    /// Accepted communities, in acceptance (ticket) order.
    pub accepted: Vec<Community>,
    /// The accepted communities' dedup fingerprints, parallel to
    /// `accepted` — stored rather than recomputed so the `seen` set is
    /// reconstructed bit-for-bit.
    pub fingerprints: Vec<u128>,
    /// The uncovered list in its exact order. Order is load-bearing: seed
    /// picks index this list, and its order is the deterministic product
    /// of the swap-removes applied so far.
    pub uncovered: Vec<u32>,
    /// The coverage bitmap words (must be the exact complement of
    /// `uncovered`).
    pub bitmap_words: Vec<u64>,
}

/// FNV-1a over `bytes` (the same function sealing `.ocg` and `.ockpt`
/// files, re-derived here because the graph crate keeps its hasher
/// private).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The config binding checksum: a hash of every schedule-affecting field.
///
/// `checkpoint` (where/how to persist), `threads` (never affects output),
/// and `rng_seed` (carried in the payload and adopted on resume) are
/// normalized out. Everything else — halting, search, batch, relabel,
/// seed strategy, `c` strategy, postprocessing — changes which tickets
/// produce what, so a mismatch must refuse the resume.
pub fn config_checksum(config: &OcaConfig) -> u64 {
    let mut normalized = config.clone();
    normalized.checkpoint = None;
    normalized.threads = 1;
    normalized.rng_seed = 0;
    fnv1a(format!("{normalized:?}").as_bytes())
}

/// The graph binding checksum: node count, edge count, and the degree
/// sequence. O(n), computed once per run; deliberately not the full
/// `.ocg` payload checksum, which would re-hash every edge of a 100M-edge
/// graph just to open a checkpoint.
pub fn graph_checksum(graph: &CsrGraph) -> u64 {
    let mut bytes = Vec::with_capacity(16 + 4 * graph.node_count());
    bytes.extend_from_slice(&(graph.node_count() as u64).to_le_bytes());
    bytes.extend_from_slice(&(graph.edge_count() as u64).to_le_bytes());
    for v in graph.nodes() {
        bytes.extend_from_slice(&(graph.neighbors(v).len() as u32).to_le_bytes());
    }
    fnv1a(&bytes)
}

impl DriverCheckpoint {
    /// Serializes the state into the `.ockpt` payload layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            13 * 8
                + self.accepted.iter().map(|c| 4 + 4 * c.len()).sum::<usize>()
                + 16 * self.fingerprints.len()
                + 4 * self.uncovered.len()
                + 8 * self.bitmap_words.len(),
        );
        out.extend_from_slice(&self.rng_seed.to_le_bytes());
        out.extend_from_slice(&self.c.to_bits().to_le_bytes());
        out.extend_from_slice(&self.lambda_min.to_bits().to_le_bytes());
        out.extend_from_slice(&self.seeds_tried.to_le_bytes());
        out.extend_from_slice(&self.covered.to_le_bytes());
        out.extend_from_slice(&self.stagnant.to_le_bytes());
        out.extend_from_slice(&self.rejected_streak.to_le_bytes());
        out.extend_from_slice(&(self.stops.converged as u64).to_le_bytes());
        out.extend_from_slice(&(self.stops.move_cap as u64).to_le_bytes());
        out.extend_from_slice(&(self.stops.move_budget as u64).to_le_bytes());
        out.extend_from_slice(&(self.stops.plateau as u64).to_le_bytes());
        out.extend_from_slice(&self.node_count.to_le_bytes());
        out.extend_from_slice(&(self.accepted.len() as u64).to_le_bytes());
        for community in &self.accepted {
            out.extend_from_slice(&(community.len() as u32).to_le_bytes());
            for &v in community.members() {
                out.extend_from_slice(&(v.index() as u32).to_le_bytes());
            }
        }
        for fp in &self.fingerprints {
            out.extend_from_slice(&fp.to_le_bytes());
        }
        out.extend_from_slice(&(self.uncovered.len() as u64).to_le_bytes());
        for &v in &self.uncovered {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.bitmap_words.len() as u64).to_le_bytes());
        for &w in &self.bitmap_words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Decodes and structurally validates a payload. The container layer
    /// has already checksummed the bytes; failures here mean the payload
    /// is internally inconsistent, and are [`CkptError::Malformed`] —
    /// resume refuses rather than loading garbage.
    pub fn decode(payload: &[u8]) -> Result<DriverCheckpoint, CkptError> {
        let mut r = Reader {
            bytes: payload,
            at: 0,
        };
        let rng_seed = r.u64()?;
        let c = f64::from_bits(r.u64()?);
        let lambda_min = f64::from_bits(r.u64()?);
        let seeds_tried = r.u64()?;
        let covered = r.u64()?;
        let stagnant = r.u64()?;
        let rejected_streak = r.u64()?;
        let stops = AscentStopStats {
            converged: r.usize()?,
            move_cap: r.usize()?,
            move_budget: r.usize()?,
            plateau: r.usize()?,
        };
        let node_count = r.u64()?;
        let n_communities = r.u64()?;
        let mut accepted = Vec::new();
        for _ in 0..n_communities {
            let len = r.u32()? as usize;
            let mut members = Vec::with_capacity(len);
            for _ in 0..len {
                let v = r.u32()?;
                if u64::from(v) >= node_count {
                    return Err(CkptError::Malformed(format!(
                        "community member {v} out of bounds for {node_count} nodes"
                    )));
                }
                members.push(NodeId::new(v));
            }
            accepted.push(Community::new(members));
        }
        let mut fingerprints = Vec::with_capacity(accepted.len());
        for _ in 0..n_communities {
            fingerprints.push(r.u128()?);
        }
        let n_uncovered = r.u64()?;
        if n_uncovered > node_count {
            return Err(CkptError::Malformed(format!(
                "{n_uncovered} uncovered nodes on a {node_count}-node graph"
            )));
        }
        let mut uncovered = Vec::with_capacity(n_uncovered as usize);
        for _ in 0..n_uncovered {
            let v = r.u32()?;
            if u64::from(v) >= node_count {
                return Err(CkptError::Malformed(format!(
                    "uncovered node {v} out of bounds for {node_count} nodes"
                )));
            }
            uncovered.push(v);
        }
        let n_words = r.u64()?;
        let mut bitmap_words = Vec::with_capacity(n_words as usize);
        for _ in 0..n_words {
            bitmap_words.push(r.u64()?);
        }
        if r.at != payload.len() {
            return Err(CkptError::Malformed(format!(
                "{} trailing payload bytes",
                payload.len() - r.at
            )));
        }
        let ckpt = DriverCheckpoint {
            rng_seed,
            c,
            lambda_min,
            seeds_tried,
            covered,
            stagnant,
            rejected_streak,
            stops,
            node_count,
            accepted,
            fingerprints,
            uncovered,
            bitmap_words,
        };
        ckpt.validate()?;
        Ok(ckpt)
    }

    /// Cross-checks the redundant encodings against each other: the
    /// bitmap must be the exact complement of the uncovered list, its
    /// popcount must equal the covered counter, and the uncovered list
    /// must be duplicate-free.
    fn validate(&self) -> Result<(), CkptError> {
        if !self.c.is_finite() {
            return Err(CkptError::Malformed(format!(
                "non-finite interaction strength {}",
                self.c
            )));
        }
        let n = self.node_count as usize;
        let expected_words = n.div_ceil(64);
        if self.bitmap_words.len() != expected_words {
            return Err(CkptError::Malformed(format!(
                "{} bitmap words for {n} nodes (expected {expected_words})",
                self.bitmap_words.len()
            )));
        }
        let popcount: u64 = self
            .bitmap_words
            .iter()
            .map(|w| w.count_ones() as u64)
            .sum();
        if popcount != self.covered {
            return Err(CkptError::Malformed(format!(
                "bitmap popcount {popcount} disagrees with covered counter {}",
                self.covered
            )));
        }
        if self.covered + self.uncovered.len() as u64 != self.node_count {
            return Err(CkptError::Malformed(format!(
                "{} covered + {} uncovered != {} nodes",
                self.covered,
                self.uncovered.len(),
                self.node_count
            )));
        }
        // Complement + duplicate-freeness in one pass: every uncovered
        // node must have a *set-so-far-unseen* clear bit. Work on a copy
        // so validation stays read-only.
        let mut words = self.bitmap_words.clone();
        for &v in &self.uncovered {
            let (word, bit) = (v as usize / 64, v as usize % 64);
            if words[word] >> bit & 1 == 1 {
                return Err(CkptError::Malformed(format!(
                    "node {v} is both covered and uncovered"
                )));
            }
            words[word] |= 1 << bit;
        }
        // All n bits are now set iff bitmap == complement(uncovered).
        let full: u64 = words.iter().map(|w| w.count_ones() as u64).sum();
        if full != self.node_count {
            return Err(CkptError::Malformed(
                "bitmap is not the complement of the uncovered list".to_string(),
            ));
        }
        if self.fingerprints.len() != self.accepted.len() {
            return Err(CkptError::Malformed(format!(
                "{} fingerprints for {} communities",
                self.fingerprints.len(),
                self.accepted.len()
            )));
        }
        if self.seeds_tried < self.accepted.len() as u64 {
            return Err(CkptError::Malformed(format!(
                "{} accepted communities from only {} tickets",
                self.accepted.len(),
                self.seeds_tried
            )));
        }
        Ok(())
    }

    /// Atomically writes the state to `path` under the two binding
    /// checksums, returning the bytes written. Fault injection (torn
    /// writes) is applied when armed in `faults`.
    pub fn save(
        &self,
        path: &Path,
        config_checksum: u64,
        graph_checksum: u64,
        faults: &CheckpointFaults,
    ) -> std::io::Result<u64> {
        let envelope = CkptEnvelope {
            config_checksum,
            graph_checksum,
            payload: self.encode(),
        };
        if faults.check_torn_write() {
            // Write half the file, then fail: the atomic path must delete
            // the temp file and leave any previous checkpoint untouched.
            let bytes = oca_graph::encode_ckpt(&envelope);
            let half = &bytes[..bytes.len() / 2];
            let result = atomic_write_path(path, |w| {
                std::io::Write::write_all(w, half)?;
                Err(std::io::Error::other("injected torn checkpoint write"))
            });
            return Err(result.expect_err("torn write cannot succeed"));
        }
        write_ckpt_path(path, &envelope)
    }

    /// Reads, verifies and decodes the checkpoint at `path`, refusing
    /// files whose binding checksums disagree with the current run.
    pub fn load(
        path: &Path,
        config_checksum: u64,
        graph_checksum: u64,
    ) -> Result<DriverCheckpoint, CkptError> {
        let envelope = read_ckpt_path(path)?;
        if envelope.config_checksum != config_checksum {
            return Err(CkptError::Mismatch {
                what: "config",
                expected: envelope.config_checksum,
                found: config_checksum,
            });
        }
        if envelope.graph_checksum != graph_checksum {
            return Err(CkptError::Mismatch {
                what: "graph",
                expected: envelope.graph_checksum,
                found: graph_checksum,
            });
        }
        DriverCheckpoint::decode(&envelope.payload)
    }
}

/// A human/ops view of a checkpoint file, decoded without binding to any
/// particular run (the chaos bench uses it to watch a child's progress;
/// operators can use it to see how far a dead run got).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointSummary {
    /// Tickets fully reduced at the recorded boundary.
    pub seeds_tried: u64,
    /// Covered nodes at the boundary.
    pub covered: u64,
    /// Node count of the graph the run was on.
    pub node_count: u64,
    /// Accepted communities so far.
    pub communities: u64,
    /// The config binding checksum recorded in the file.
    pub config_checksum: u64,
    /// The graph binding checksum recorded in the file.
    pub graph_checksum: u64,
    /// Payload size in bytes.
    pub payload_bytes: u64,
}

/// Reads and summarizes the checkpoint at `path` (full verification, no
/// binding check).
pub fn checkpoint_summary(path: &Path) -> Result<CheckpointSummary, CkptError> {
    let envelope = read_ckpt_path(path)?;
    let ckpt = DriverCheckpoint::decode(&envelope.payload)?;
    Ok(CheckpointSummary {
        seeds_tried: ckpt.seeds_tried,
        covered: ckpt.covered,
        node_count: ckpt.node_count,
        communities: ckpt.accepted.len() as u64,
        config_checksum: envelope.config_checksum,
        graph_checksum: envelope.graph_checksum,
        payload_bytes: envelope.payload.len() as u64,
    })
}

/// Little-endian payload reader; short reads are [`CkptError::Malformed`]
/// (the container checksum has already passed, so a short payload is a
/// writer bug, not disk damage).
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CkptError> {
        if self.bytes.len() - self.at < n {
            return Err(CkptError::Malformed(format!(
                "payload ends {} bytes short",
                n - (self.bytes.len() - self.at)
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u128(&mut self) -> Result<u128, CkptError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    fn usize(&mut self) -> Result<usize, CkptError> {
        Ok(self.u64()? as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    fn sample(n: u64) -> DriverCheckpoint {
        // Nodes 0 and 2 covered, the rest uncovered (reverse order to
        // prove order is preserved verbatim).
        let mut uncovered: Vec<u32> = (0..n as u32).filter(|&v| v != 0 && v != 2).collect();
        uncovered.reverse();
        let words = (n as usize).div_ceil(64);
        let mut bitmap_words = vec![0u64; words];
        bitmap_words[0] = 0b101;
        DriverCheckpoint {
            rng_seed: 0xABCD,
            c: 0.42,
            lambda_min: -2.38,
            seeds_tried: 128,
            covered: 2,
            stagnant: 7,
            rejected_streak: 3,
            stops: AscentStopStats {
                converged: 100,
                move_cap: 10,
                move_budget: 15,
                plateau: 3,
            },
            node_count: n,
            accepted: vec![
                Community::from_raw([0, 2]),
                Community::from_raw([2, 0]), // same set; dedup is the fps' job
            ],
            fingerprints: vec![0x1111_2222_3333_4444_5555_6666_7777_8888, 42],
            uncovered,
            bitmap_words,
        }
    }

    #[test]
    fn payload_round_trips_bit_identically() {
        let ckpt = sample(70);
        let decoded = DriverCheckpoint::decode(&ckpt.encode()).unwrap();
        assert_eq!(decoded, ckpt);
        // Uncovered order survived verbatim.
        assert_eq!(decoded.uncovered, ckpt.uncovered);
    }

    #[test]
    fn save_load_round_trips_through_the_container() {
        let dir = std::env::temp_dir().join(format!("oca_drvckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ockpt");
        let ckpt = sample(70);
        let bytes = ckpt
            .save(&path, 111, 222, &CheckpointFaults::none())
            .unwrap();
        assert!(bytes > 0);
        assert_eq!(DriverCheckpoint::load(&path, 111, 222).unwrap(), ckpt);

        // Binding mismatches are typed and name the side.
        let err = DriverCheckpoint::load(&path, 999, 222).unwrap_err();
        assert!(
            matches!(err, CkptError::Mismatch { what: "config", .. }),
            "{err:?}"
        );
        let err = DriverCheckpoint::load(&path, 111, 999).unwrap_err();
        assert!(
            matches!(err, CkptError::Mismatch { what: "graph", .. }),
            "{err:?}"
        );
        assert!(!err.is_corruption());

        let summary = checkpoint_summary(&path).unwrap();
        assert_eq!(summary.seeds_tried, 128);
        assert_eq!(summary.communities, 2);
        assert_eq!(summary.node_count, 70);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn structural_inconsistencies_are_malformed() {
        // Bitmap/counter disagreement.
        let mut bad = sample(70);
        bad.covered = 3;
        assert!(matches!(
            DriverCheckpoint::decode(&bad.encode()).unwrap_err(),
            CkptError::Malformed(_)
        ));
        // A node both covered and uncovered.
        let mut bad = sample(70);
        bad.uncovered.push(0);
        bad.uncovered.remove(0);
        assert!(DriverCheckpoint::decode(&bad.encode()).is_err());
        // Duplicate uncovered entry (displacing another keeps the count).
        let mut bad = sample(70);
        bad.uncovered[0] = bad.uncovered[1];
        assert!(DriverCheckpoint::decode(&bad.encode()).is_err());
        // Fingerprint count disagreeing with the community count.
        let mut bad = sample(70);
        bad.fingerprints.pop();
        // (encode writes fps count == accepted count, so shrink accepted
        // instead to produce the mismatch on the wire)
        bad.accepted.pop();
        bad.seeds_tried = 1; // fewer accepts than tickets stays plausible
        let mut payload = bad.encode();
        // Claim 2 communities but provide 1: truncated payload.
        payload[12 * 8..13 * 8].copy_from_slice(&2u64.to_le_bytes());
        assert!(DriverCheckpoint::decode(&payload).is_err());
        // More accepts than tickets is impossible.
        let mut bad = sample(70);
        bad.seeds_tried = 1;
        assert!(DriverCheckpoint::decode(&bad.encode()).is_err());
        // Out-of-bounds member.
        let mut bad = sample(70);
        bad.accepted[0] = Community::from_raw([0, 99]);
        assert!(DriverCheckpoint::decode(&bad.encode()).is_err());
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut payload = sample(70).encode();
        payload.push(0);
        assert!(matches!(
            DriverCheckpoint::decode(&payload).unwrap_err(),
            CkptError::Malformed(_)
        ));
    }

    #[test]
    fn config_checksum_ignores_threads_seed_and_checkpointing() {
        let base = OcaConfig::default();
        let mut other = base.clone();
        other.threads = 8;
        other.rng_seed = 999;
        other.checkpoint = Some(CheckpointConfig::at("/tmp/x.ockpt"));
        assert_eq!(config_checksum(&base), config_checksum(&other));

        // Schedule-affecting fields do change it.
        let mut batch = base.clone();
        batch.batch = 32;
        assert_ne!(config_checksum(&base), config_checksum(&batch));
        let mut halting = base.clone();
        halting.halting.max_seeds += 1;
        assert_ne!(config_checksum(&base), config_checksum(&halting));
        let mut relabel = base.clone();
        relabel.relabel = true;
        assert_ne!(config_checksum(&base), config_checksum(&relabel));
    }

    #[test]
    fn graph_checksum_sees_shape_changes() {
        let a = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let b = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(graph_checksum(&a), graph_checksum(&b));
        // Same counts, different degree sequence.
        let c = from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_ne!(graph_checksum(&a), graph_checksum(&c));
        let d = from_edges(5, [(0, 1), (1, 2), (2, 3)]);
        assert_ne!(graph_checksum(&a), graph_checksum(&d));
    }

    #[test]
    fn torn_write_fault_preserves_the_previous_checkpoint() {
        let dir = std::env::temp_dir().join(format!("oca_torn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ockpt");
        let first = sample(70);
        first.save(&path, 1, 2, &CheckpointFaults::none()).unwrap();
        // Every write torn: the save fails, the old file survives intact.
        let faults = CheckpointFaults::new(CheckpointFaultSpec {
            torn_write_every: 1,
            kill_after_writes: 0,
        });
        let mut second = first.clone();
        second.seeds_tried = 256;
        second.stagnant += 128;
        let err = second.save(&path, 1, 2, &faults).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        assert_eq!(DriverCheckpoint::load(&path, 1, 2).unwrap(), first);
        let counts = faults.counts();
        assert_eq!(counts.write_attempts, 1);
        assert_eq!(counts.torn_writes, 1);
        // No temp debris.
        let debris: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(debris.is_empty(), "{debris:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_fault_fires_once_after_the_threshold() {
        let faults = CheckpointFaults::new(CheckpointFaultSpec {
            torn_write_every: 0,
            kill_after_writes: 2,
        });
        assert!(!faults.check_kill(1));
        assert!(faults.check_kill(2));
        assert!(!faults.check_kill(3), "the kill fires at most once");
        assert_eq!(faults.counts().kills, 1);
        // Unarmed plans never fire anything.
        let none = CheckpointFaults::none();
        assert!(!none.check_kill(100));
        assert!(!none.check_torn_write());
        assert!(!none.is_armed());
        assert_eq!(none.counts(), CheckpointFaultCounts::default());
    }
}
