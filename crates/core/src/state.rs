//! Incremental community state for the greedy search.
//!
//! Maintains the candidate set `S`, its internal edge count `Ein(S)`, and
//! the internal degree `deg_S(v)` of every touched node, so that evaluating
//! or applying a move costs `O(deg v)` instead of `O(Σ_{u∈S} deg u)`. This
//! is the difference between OCA's flat runtime curve (Fig. 6) and a
//! quadratic blow-up; the ablation bench quantifies it.

use crate::fitness::{fitness, gain_add, gain_remove};
use oca_graph::{Community, CsrGraph, NodeId};

/// Mutable state of one community search over a fixed graph.
///
/// Buffers are `O(n)` but reusable across seeds via [`CommunityState::reset`],
/// which clears only the touched entries.
#[derive(Debug)]
pub struct CommunityState<'g> {
    graph: &'g CsrGraph,
    c: f64,
    in_set: Vec<bool>,
    /// Internal degree of every node (valid only for touched nodes).
    deg_in: Vec<u32>,
    /// Nodes whose `deg_in` entry may be non-zero (for cheap reset).
    touched: Vec<NodeId>,
    touched_flag: Vec<bool>,
    members: Vec<NodeId>,
    ein: usize,
    /// Lazy bucket queue over boundary internal degrees: `buckets[d]` holds
    /// candidate boundary nodes that had `deg_S = d` when pushed. Entries go
    /// stale when a node joins `S` or its degree changes; they are discarded
    /// on pop. Gives O(1) amortized best-addition lookups.
    buckets: Vec<Vec<NodeId>>,
    max_bucket: usize,
    /// Mirror min-queue over *member* internal degrees for best-removal.
    min_buckets: Vec<Vec<NodeId>>,
    min_bucket: usize,
    /// Indices of `buckets` that may hold entries — pushed when a bucket
    /// goes from empty to non-empty, so [`CommunityState::reset`] clears
    /// only touched buckets instead of scanning up to the largest internal
    /// degree the state has ever seen (O(max_degree) on hub graphs).
    dirty_buckets: Vec<u32>,
    /// Same for `min_buckets`.
    dirty_min_buckets: Vec<u32>,
    /// How many bucket vecs the last [`CommunityState::reset`] visited;
    /// the regression test asserts it stays proportional to work done.
    #[cfg(test)]
    last_reset_bucket_visits: usize,
}

impl<'g> CommunityState<'g> {
    /// Creates an empty state for `graph` with interaction strength `c`.
    pub fn new(graph: &'g CsrGraph, c: f64) -> Self {
        let n = graph.node_count();
        CommunityState {
            graph,
            c,
            in_set: vec![false; n],
            deg_in: vec![0; n],
            touched: Vec::new(),
            touched_flag: vec![false; n],
            members: Vec::new(),
            ein: 0,
            buckets: Vec::new(),
            max_bucket: 0,
            min_buckets: Vec::new(),
            min_bucket: 0,
            dirty_buckets: Vec::new(),
            dirty_min_buckets: Vec::new(),
            #[cfg(test)]
            last_reset_bucket_visits: 0,
        }
    }

    #[inline]
    fn push_bucket(&mut self, v: NodeId, d: u32) {
        let d = d as usize;
        if d >= self.buckets.len() {
            self.buckets.resize_with(d + 1, Vec::new);
        }
        if self.buckets[d].is_empty() {
            self.dirty_buckets.push(d as u32);
        }
        self.buckets[d].push(v);
        self.max_bucket = self.max_bucket.max(d);
    }

    #[inline]
    fn push_member_bucket(&mut self, v: NodeId, d: u32) {
        let d = d as usize;
        if d >= self.min_buckets.len() {
            self.min_buckets.resize_with(d + 1, Vec::new);
        }
        if self.min_buckets[d].is_empty() {
            self.dirty_min_buckets.push(d as u32);
        }
        self.min_buckets[d].push(v);
        self.min_bucket = self.min_bucket.min(d);
    }

    /// The interaction strength in use.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Current community size `s`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Current internal edge count `Ein(S)`.
    pub fn internal_edges(&self) -> usize {
        self.ein
    }

    /// Membership test.
    pub fn contains(&self, v: NodeId) -> bool {
        self.in_set[v.index()]
    }

    /// Internal degree of `v` with respect to the current set.
    pub fn internal_degree(&self, v: NodeId) -> usize {
        self.deg_in[v.index()] as usize
    }

    /// The current members (unsorted).
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The current fitness `L(S)`.
    pub fn fitness(&self) -> f64 {
        fitness(self.members.len(), self.ein, self.c)
    }

    /// Fitness gain if `v` were added. `v` must not be a member.
    pub fn gain_add(&self, v: NodeId) -> f64 {
        debug_assert!(!self.contains(v));
        gain_add(
            self.members.len(),
            self.ein,
            self.internal_degree(v),
            self.c,
        )
    }

    /// Fitness gain if `v` were removed. `v` must be a member.
    pub fn gain_remove(&self, v: NodeId) -> f64 {
        debug_assert!(self.contains(v));
        gain_remove(
            self.members.len(),
            self.ein,
            self.internal_degree(v),
            self.c,
        )
    }

    fn touch(&mut self, v: NodeId) {
        if !self.touched_flag[v.index()] {
            self.touched_flag[v.index()] = true;
            self.touched.push(v);
        }
    }

    /// Adds `v` to the set. `O(deg v)`.
    ///
    /// # Panics
    /// Debug-panics if `v` is already a member.
    pub fn add(&mut self, v: NodeId) {
        debug_assert!(!self.contains(v));
        self.ein += self.deg_in[v.index()] as usize;
        self.in_set[v.index()] = true;
        self.touch(v);
        self.members.push(v);
        self.push_member_bucket(v, self.deg_in[v.index()]);
        for i in 0..self.graph.neighbors(v).len() {
            let u = self.graph.neighbors(v)[i];
            self.deg_in[u.index()] += 1;
            self.touch(u);
            if self.in_set[u.index()] {
                self.push_member_bucket(u, self.deg_in[u.index()]);
            } else {
                self.push_bucket(u, self.deg_in[u.index()]);
            }
        }
    }

    /// Removes `v` from the set. `O(deg v + s)` (member list swap-remove
    /// after a linear scan).
    ///
    /// # Panics
    /// Debug-panics if `v` is not a member.
    pub fn remove(&mut self, v: NodeId) {
        debug_assert!(self.contains(v));
        self.ein -= self.deg_in[v.index()] as usize;
        self.in_set[v.index()] = false;
        for i in 0..self.graph.neighbors(v).len() {
            let u = self.graph.neighbors(v)[i];
            self.deg_in[u.index()] -= 1;
            if self.in_set[u.index()] {
                self.push_member_bucket(u, self.deg_in[u.index()]);
            } else if self.deg_in[u.index()] > 0 {
                self.push_bucket(u, self.deg_in[u.index()]);
            }
        }
        if self.deg_in[v.index()] > 0 {
            self.push_bucket(v, self.deg_in[v.index()]);
        }
        let pos = self
            .members
            .iter()
            .position(|&m| m == v)
            .expect("member list consistent with in_set");
        self.members.swap_remove(pos);
    }

    /// Iterates the boundary: non-members adjacent to at least one member.
    ///
    /// Derived from the touched list, so the cost is proportional to the
    /// neighborhood of the current and former members, not to `n`.
    pub fn boundary(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.touched
            .iter()
            .copied()
            .filter(|&v| !self.in_set[v.index()] && self.deg_in[v.index()] > 0)
    }

    /// The best addition candidate: the boundary node with the largest
    /// internal degree.
    ///
    /// Correct because `L(s+1, ein+d)` is strictly increasing in `d` (the
    /// `Ein` coefficient `1 − (s−2)/√(s(s−1))` is positive for all `s`), so
    /// the node maximizing `deg_S(v)` also maximizes the fitness gain. The
    /// lazy bucket queue makes this O(1) amortized — the key to OCA's flat
    /// timing curves (Figs. 5–6). Runs stay deterministic (LIFO ties).
    pub fn best_addition(&mut self) -> Option<NodeId> {
        loop {
            let b = self.max_bucket;
            while let Some(&v) = self.buckets.get(b).and_then(|bk| bk.last()) {
                if !self.in_set[v.index()] && self.deg_in[v.index()] as usize == b {
                    return Some(v);
                }
                self.buckets[b].pop();
            }
            if b == 0 {
                return None;
            }
            self.max_bucket = b - 1;
        }
    }

    /// The best removal candidate: the member with the smallest internal
    /// degree (the gain of removing is decreasing in `deg_S(v)`; see
    /// [`CommunityState::best_addition`] for the monotonicity argument).
    /// Returns `None` for sets of size ≤ 1.
    pub fn best_removal(&mut self) -> Option<NodeId> {
        if self.members.len() <= 1 {
            return None;
        }
        loop {
            let b = self.min_bucket;
            while let Some(&v) = self.min_buckets.get(b).and_then(|bk| bk.last()) {
                if self.in_set[v.index()] && self.deg_in[v.index()] as usize == b {
                    return Some(v);
                }
                self.min_buckets[b].pop();
            }
            if b + 1 >= self.min_buckets.len() {
                // All buckets drained of valid entries; can only happen if
                // every member entry is stale, which the push discipline
                // prevents for non-empty member lists.
                return None;
            }
            self.min_bucket = b + 1;
        }
    }

    /// Snapshots the current set as a [`Community`].
    pub fn to_community(&self) -> Community {
        Community::new(self.members.clone())
    }

    /// Clears the set, zeroing only the touched entries and the dirty
    /// buckets, so the state can be reused for the next seed at a cost
    /// proportional to the work done — not O(n), and not O(max_degree)
    /// even after an earlier ascent through a high-degree hub has grown
    /// the bucket table.
    pub fn reset(&mut self) {
        for &v in &self.touched {
            self.deg_in[v.index()] = 0;
            self.in_set[v.index()] = false;
            self.touched_flag[v.index()] = false;
        }
        self.touched.clear();
        self.members.clear();
        self.ein = 0;
        #[cfg(test)]
        {
            self.last_reset_bucket_visits = self.dirty_buckets.len() + self.dirty_min_buckets.len();
        }
        for d in self.dirty_buckets.drain(..) {
            self.buckets[d as usize].clear();
        }
        self.max_bucket = 0;
        for d in self.dirty_min_buckets.drain(..) {
            self.min_buckets[d as usize].clear();
        }
        self.min_bucket = 0;
    }

    /// Recomputes `Ein` from scratch; for tests and debug assertions.
    pub fn recompute_internal_edges(&self) -> usize {
        let mut twice = 0usize;
        for &v in &self.members {
            twice += self
                .graph
                .neighbors(v)
                .iter()
                .filter(|u| self.in_set[u.index()])
                .count();
        }
        twice / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    fn karate_ish() -> oca_graph::CsrGraph {
        // Two triangles joined by one bridge: 0-1-2 and 3-4-5, bridge 2-3.
        from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn add_tracks_internal_edges() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        st.add(NodeId(0));
        assert_eq!(st.internal_edges(), 0);
        st.add(NodeId(1));
        assert_eq!(st.internal_edges(), 1);
        st.add(NodeId(2));
        assert_eq!(st.internal_edges(), 3);
        assert_eq!(st.recompute_internal_edges(), 3);
        assert_eq!(st.len(), 3);
    }

    #[test]
    fn remove_reverses_add() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        for v in [0, 1, 2, 3] {
            st.add(NodeId(v));
        }
        let f_before = st.fitness();
        st.add(NodeId(4));
        st.remove(NodeId(4));
        assert!((st.fitness() - f_before).abs() < 1e-12);
        assert_eq!(st.internal_edges(), st.recompute_internal_edges());
        assert!(!st.contains(NodeId(4)));
    }

    #[test]
    fn boundary_is_exactly_adjacent_non_members() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        st.add(NodeId(0));
        st.add(NodeId(1));
        let mut b: Vec<u32> = st.boundary().map(|v| v.raw()).collect();
        b.sort_unstable();
        assert_eq!(b, vec![2]);
        st.add(NodeId(2));
        let mut b: Vec<u32> = st.boundary().map(|v| v.raw()).collect();
        b.sort_unstable();
        assert_eq!(b, vec![3]);
    }

    #[test]
    fn gains_match_apply() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        st.add(NodeId(3));
        st.add(NodeId(4));
        let before = st.fitness();
        let predicted = st.gain_add(NodeId(5));
        st.add(NodeId(5));
        assert!((st.fitness() - before - predicted).abs() < 1e-12);

        let before = st.fitness();
        let predicted = st.gain_remove(NodeId(3));
        st.remove(NodeId(3));
        assert!((st.fitness() - before - predicted).abs() < 1e-12);
    }

    #[test]
    fn reset_allows_reuse() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        for v in [0, 1, 2] {
            st.add(NodeId(v));
        }
        st.reset();
        assert!(st.is_empty());
        assert_eq!(st.internal_edges(), 0);
        assert_eq!(st.boundary().count(), 0);
        st.add(NodeId(4));
        assert_eq!(st.internal_degree(NodeId(3)), 1);
        assert_eq!(st.internal_edges(), 0);
    }

    #[test]
    fn best_addition_tracks_max_internal_degree() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        st.add(NodeId(0));
        st.add(NodeId(1));
        // Node 2 closes the triangle: deg_in 2, strictly best.
        assert_eq!(st.best_addition(), Some(NodeId(2)));
        st.add(NodeId(2));
        // Boundary is only node 3 (deg_in 1).
        assert_eq!(st.best_addition(), Some(NodeId(3)));
    }

    #[test]
    fn best_removal_tracks_min_internal_degree() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        for v in [0, 1, 2, 3] {
            st.add(NodeId(v));
        }
        // Node 3 has deg_in 1 (edge to 2), everyone else ≥ 2.
        assert_eq!(st.best_removal(), Some(NodeId(3)));
        st.remove(NodeId(3));
        // Triangle members all have deg_in 2: any is valid.
        let v = st.best_removal().unwrap();
        assert_eq!(st.internal_degree(v), 2);
    }

    #[test]
    fn best_candidates_survive_reset_and_reuse() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        for v in [0, 1, 2] {
            st.add(NodeId(v));
        }
        st.reset();
        assert_eq!(st.best_addition(), None);
        assert_eq!(st.best_removal(), None);
        st.add(NodeId(4));
        let b = st.best_addition().unwrap();
        assert!(b == NodeId(3) || b == NodeId(5), "neighbors of 4");
    }

    #[test]
    fn best_addition_handles_degree_decreases() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        st.add(NodeId(0));
        st.add(NodeId(1));
        st.add(NodeId(2));
        // 3's deg_in is 1; removing 2 drops it to 0 → no candidates left
        // adjacent to {0,1} except 2 itself.
        st.remove(NodeId(2));
        assert_eq!(st.best_addition(), Some(NodeId(2)));
    }

    /// Regression: `reset` used to clear *every* bucket vec, so after one
    /// ascent through a high-degree hub every later ascent paid
    /// O(max_degree) on reset no matter how small its community was.
    #[test]
    fn reset_visits_only_dirty_buckets() {
        // A 10k-leaf star: adding all leaves pushes the hub into buckets
        // 1..=10_000, growing the bucket table to hub degree.
        let leaves = 10_000u32;
        let g = from_edges(leaves as usize + 1, (1..=leaves).map(|leaf| (0, leaf)));
        let mut st = CommunityState::new(&g, 0.8);
        for leaf in 1..=leaves {
            st.add(NodeId(leaf));
        }
        st.reset();
        assert!(
            st.buckets.len() > leaves as usize / 2,
            "the expensive ascent should have grown the bucket table"
        );
        // A tiny follow-up ascent: one leaf, touching only the hub.
        st.add(NodeId(1));
        st.remove(NodeId(1));
        st.reset();
        assert!(
            st.last_reset_bucket_visits <= 8,
            "tiny ascent reset visited {} buckets (table size {})",
            st.last_reset_bucket_visits,
            st.buckets.len()
        );
        // Correctness after the cheap reset: the state is genuinely clean.
        assert!(st.is_empty());
        assert_eq!(st.best_addition(), None);
        st.add(NodeId(0));
        assert_eq!(st.internal_degree(NodeId(1)), 1);
    }

    #[test]
    fn to_community_is_sorted() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        st.add(NodeId(5));
        st.add(NodeId(3));
        let c = st.to_community();
        assert_eq!(c.members(), &[NodeId(3), NodeId(5)]);
    }
}
