//! Incremental community state for the greedy search.
//!
//! Maintains the candidate set `S`, its internal edge count `Ein(S)`, and
//! the internal degree `deg_S(v)` of every touched node, so that evaluating
//! or applying a move costs `O(deg v)` instead of `O(Σ_{u∈S} deg u)`. This
//! is the difference between OCA's flat runtime curve (Fig. 6) and a
//! quadratic blow-up; the ablation bench quantifies it.
//!
//! The layout is built for zero steady-state allocation and cache locality
//! (DESIGN.md "Memory layout"): one packed 16-byte record per node holds
//! the membership/touched flags, the internal degree, the member-list slot
//! and the intrusive links of the bucket queues, so every hot-path access
//! to a node is a single cache line; the best-addition and best-removal
//! queues are intrusive doubly-linked bucket lists over those records
//! (true O(1) insert/delete/degree-move, no stale entries, no per-ascent
//! heap allocation); and the `√(s(s−1))` of every gain evaluation comes
//! from a memoized [`SqrtTable`].

use crate::fitness::SqrtTable;
use crate::seed::splitmix64;
use oca_graph::{Community, CsrGraph, NodeId};

/// Sentinel for "no node" in the intrusive links and head arrays.
const NIL: u32 = u32::MAX;

/// Domain-separation constants for the two 64-bit halves of the set
/// fingerprint (arbitrary odd constants; see [`CommunityState::fingerprint`]).
const FP_XOR_SALT: u64 = 0xA076_1D64_78BD_642F;
const FP_SUM_SALT: u64 = 0xE703_7ED1_A0B4_28DB;

/// The per-node mix feeding the XOR half of the fingerprint.
#[inline(always)]
fn fp_mix_xor(v: u32) -> u64 {
    splitmix64(v as u64 ^ FP_XOR_SALT)
}

/// The per-node mix feeding the additive half of the fingerprint.
#[inline(always)]
fn fp_mix_sum(v: u32) -> u64 {
    splitmix64(v as u64 ^ FP_SUM_SALT)
}

/// `word` bit for "v ∈ S".
const IN_SET: u32 = 1 << 31;
/// `word` bit for "v is on the touched list".
const TOUCHED: u32 = 1 << 30;
/// `word` bits holding `deg_S(v)`. 30 bits suffice for any realistic
/// graph (a 2^30-neighbor row alone costs 8 GiB of symmetric adjacency);
/// [`CommunityState::new`] asserts the bound once so the per-move
/// arithmetic can never carry into the flag bits.
const DEG_MASK: u32 = TOUCHED - 1;

/// `aux` bit for "v is tabu" (recently removed; not addable).
const AUX_TABU: u32 = 1 << 31;
/// `aux` bits holding the repeat-add penalty of the penalized move rule.
const AUX_PENALTY_MASK: u32 = AUX_TABU - 1;

/// Packed per-node record: flags + internal degree in one word, the
/// intrusive queue links, and the member-list slot. 16 bytes, so the whole
/// hot-path state of a node is one aligned quarter-cache-line.
#[derive(Debug, Clone, Copy)]
struct NodeRec {
    /// Bit 31 = in set, bit 30 = touched, bits 0..30 = `deg_S(v)`.
    word: u32,
    /// Previous node in this node's bucket list, or [`NIL`].
    prev: u32,
    /// Next node in this node's bucket list, or [`NIL`].
    next: u32,
    /// Index in `members` while in the set (unused otherwise).
    slot: u32,
}

impl NodeRec {
    const EMPTY: NodeRec = NodeRec {
        word: 0,
        prev: NIL,
        next: NIL,
        slot: 0,
    };
}

/// Unlinks a node whose links `(prev, next)` the caller has already read
/// from bucket `d`. Does not touch the node's own record: callers rewrite
/// it wholesale right after (relink or retirement), so clearing the links
/// here would be a wasted store.
#[inline(always)]
fn unlink_known(recs: &mut [NodeRec], heads: &mut [u32], prev: u32, next: u32, d: usize) {
    if prev == NIL {
        heads[d] = next;
    } else {
        recs[prev as usize].next = next;
    }
    if next != NIL {
        recs[next as usize].prev = prev;
    }
}

/// Links `v` at the head of bucket `d`, returning the previous head so the
/// caller can fold it into the single write of `v`'s record (`next`).
#[inline(always)]
fn link_at_head(
    recs: &mut [NodeRec],
    heads: &mut [u32],
    dirty: &mut Vec<u32>,
    v: u32,
    d: usize,
) -> u32 {
    let head = heads[d];
    if head == NIL {
        dirty.push(d as u32);
    } else {
        recs[head as usize].prev = v;
    }
    heads[d] = v;
    head
}

/// Mutable state of one community search over a fixed graph.
///
/// Buffers are `O(n + max_degree)` but reusable across seeds via
/// [`CommunityState::reset`], which clears only the touched entries.
#[derive(Debug)]
pub struct CommunityState<'g> {
    graph: &'g CsrGraph,
    c: f64,
    /// One packed record per node (flags, degree, links, slot).
    recs: Vec<NodeRec>,
    /// Nodes whose record may differ from [`NodeRec::EMPTY`] (for cheap
    /// reset).
    touched: Vec<NodeId>,
    members: Vec<NodeId>,
    ein: usize,
    /// XOR half of the order-independent 128-bit set fingerprint,
    /// maintained O(1) per membership change.
    fp_xor: u64,
    /// Additive (wrapping-sum) half of the fingerprint.
    fp_sum: u64,
    /// Intrusive bucket heads for the boundary (best-addition) queue:
    /// `add_heads[d]` starts the list of non-members with `deg_S = d ≥ 1`.
    add_heads: Vec<u32>,
    /// Largest possibly-non-empty bucket of `add_heads`; tightened
    /// incrementally by [`CommunityState::best_addition`], never by a
    /// full-range scan.
    add_max: usize,
    /// Intrusive bucket heads for the member (best-removal) queue.
    rem_heads: Vec<u32>,
    /// Smallest possibly-non-empty bucket of `rem_heads` (mirror of
    /// `add_max`).
    rem_min: usize,
    /// Buckets of `add_heads` that may be non-[`NIL`] — pushed on the
    /// empty→non-empty transition, so [`CommunityState::reset`] clears
    /// only touched buckets instead of scanning up to the largest internal
    /// degree the state has ever seen (O(max_degree) on hub graphs).
    dirty_add: Vec<u32>,
    /// Same for `rem_heads`.
    dirty_rem: Vec<u32>,
    /// Bitmap of nodes excluded from the addition queue (covered hubs;
    /// see [`CommunityState::set_prune_snapshot`]). Empty = pruning off.
    /// The packed records still track exact internal degrees for pruned
    /// nodes — only their *candidacy* is suppressed — so `Ein` and every
    /// gain evaluation stay exact.
    prune: Vec<u64>,
    /// Per-node word of the penalized move rule: bit 31 = tabu (recently
    /// removed, not addable), bits 0..31 = repeat-add penalty subtracted
    /// from the node's addition-queue bucket key. Lazily allocated by
    /// [`CommunityState::set_penalized`]; empty = greedy mode, zero cost.
    /// Invariant: `aux[v] != 0` implies `v` is on the touched list, so
    /// [`CommunityState::reset`] restores all-zeros in O(touched).
    aux: Vec<u32>,
    /// Memoized `√(s(s−1))`; grown when the member list grows, so gain
    /// evaluations never call `sqrt` at steady state.
    sqrt: SqrtTable,
    /// Bucket-head inspections performed by the best-candidate queries
    /// since construction; the drift regression test asserts this stays
    /// proportional to work done, not to the bucket range.
    probes: u64,
    /// How many bucket heads the last [`CommunityState::reset`] visited;
    /// the regression test asserts it stays proportional to work done.
    #[cfg(test)]
    last_reset_bucket_visits: usize,
}

impl<'g> CommunityState<'g> {
    /// Creates an empty state for `graph` with interaction strength `c`.
    ///
    /// # Panics
    /// Panics if the graph's maximum degree does not fit the 30-bit packed
    /// degree field (a single node with ≥ 2^30 neighbors; the builder's
    /// edge cap admits such a hub in principle, so the boundary is checked
    /// here once rather than per move).
    pub fn new(graph: &'g CsrGraph, c: f64) -> Self {
        let n = graph.node_count();
        // Internal degrees never exceed the graph's maximum degree, so the
        // head arrays are allocated once, here, at their final size — and
        // the packed records can never overflow their degree bits.
        let max_degree = graph.max_degree();
        assert!(
            max_degree < DEG_MASK as usize,
            "maximum degree {max_degree} exceeds the packed 30-bit deg_S field"
        );
        let buckets = max_degree + 1;
        let mut sqrt = SqrtTable::new();
        sqrt.ensure(1);
        CommunityState {
            graph,
            c,
            recs: vec![NodeRec::EMPTY; n],
            touched: Vec::new(),
            members: Vec::new(),
            ein: 0,
            fp_xor: 0,
            fp_sum: 0,
            add_heads: vec![NIL; buckets],
            add_max: 0,
            rem_heads: vec![NIL; buckets],
            rem_min: usize::MAX,
            dirty_add: Vec::new(),
            dirty_rem: Vec::new(),
            prune: Vec::new(),
            aux: Vec::new(),
            sqrt,
            probes: 0,
            #[cfg(test)]
            last_reset_bucket_visits: 0,
        }
    }

    /// The interaction strength in use.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Current community size `s`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Current internal edge count `Ein(S)`.
    pub fn internal_edges(&self) -> usize {
        self.ein
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.recs[v.index()].word & IN_SET != 0
    }

    /// Internal degree of `v` with respect to the current set.
    #[inline]
    pub fn internal_degree(&self, v: NodeId) -> usize {
        (self.recs[v.index()].word & DEG_MASK) as usize
    }

    /// The current members (unsorted).
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The current fitness `L(S)`.
    pub fn fitness(&self) -> f64 {
        self.sqrt.fitness(self.members.len(), self.ein, self.c)
    }

    /// An order-independent 128-bit fingerprint of the current member
    /// *set*: two independently salted SplitMix64 mixes per node, folded
    /// with XOR (low half) and wrapping addition (high half). Both folds
    /// commute and invert, so the value is maintained in O(1) per
    /// [`CommunityState::add`]/[`CommunityState::remove`] and depends only
    /// on membership — two ascents converging to the same set report the
    /// same fingerprint no matter the move order. The driver's dedup set
    /// keys on this instead of cloning and hashing the member vector
    /// (collision odds for distinct sets ≈ 2⁻¹²⁸ per pair; DESIGN.md §4a).
    pub fn fingerprint(&self) -> u128 {
        ((self.fp_sum as u128) << 64) | self.fp_xor as u128
    }

    /// Fitness gain if `v` were added. `v` must not be a member.
    pub fn gain_add(&self, v: NodeId) -> f64 {
        debug_assert!(!self.contains(v));
        self.sqrt.gain_add(
            self.members.len(),
            self.ein,
            self.internal_degree(v),
            self.c,
        )
    }

    /// Fitness gain if `v` were removed. `v` must be a member.
    pub fn gain_remove(&self, v: NodeId) -> f64 {
        debug_assert!(self.contains(v));
        self.sqrt.gain_remove(
            self.members.len(),
            self.ein,
            self.internal_degree(v),
            self.c,
        )
    }

    /// Total bucket-head inspections by [`CommunityState::best_addition`]
    /// and [`CommunityState::best_removal`] since construction.
    ///
    /// With the intrusive queues this is O(moves + degree changes) over a
    /// run: the bounds only walk buckets they then permanently tighten
    /// past, so there is no repeated scanning of empty ranges — the drift
    /// regression test counts these.
    pub fn bucket_probes(&self) -> u64 {
        self.probes
    }

    /// True if `v` is suppressed from the addition queue by the prune
    /// snapshot. O(1) bit test; `false` whenever pruning is off.
    #[inline(always)]
    fn pruned_bit(&self, v: u32) -> bool {
        match self.prune.get((v >> 6) as usize) {
            Some(word) => (word >> (v & 63)) & 1 != 0,
            None => false,
        }
    }

    /// True if `v` may not be linked in the addition queue (pruned or
    /// tabu). Pruned/tabu nodes keep exact degree accounting; they are
    /// only invisible to [`CommunityState::best_addition`].
    #[inline(always)]
    fn add_blocked(&self, v: u32) -> bool {
        self.pruned_bit(v) || (!self.aux.is_empty() && self.aux[v as usize] & AUX_TABU != 0)
    }

    /// Addition-queue bucket key for a non-member at internal degree
    /// `d ≥ 1`: the true degree under the greedy rule, `max(1, d − penalty)`
    /// under the penalized rule. Saturating at 1 keeps a penalized node a
    /// candidate (its true gain is still evaluated exactly; only its
    /// *priority* drops), and `d` stays exact in the packed word.
    #[inline(always)]
    fn add_bucket(&self, v: u32, d: usize) -> usize {
        if self.aux.is_empty() {
            d
        } else {
            let p = (self.aux[v as usize] & AUX_PENALTY_MASK) as usize;
            d.saturating_sub(p).max(1)
        }
    }

    /// Installs (or, with an empty slice, clears) the covered-hub bitmap:
    /// nodes whose bit is set are skipped when enumerating add candidates.
    /// The driver passes `round-start coverage ∧ hub-degree mask`, so every
    /// ticket of a round — on any thread — sees the same snapshot and
    /// covers stay bit-identical across thread counts (DESIGN.md §2a).
    /// Takes effect from the next [`CommunityState::reset`]; must not be
    /// called mid-ascent (already-linked candidates would keep their
    /// queue entries).
    pub fn set_prune_snapshot(&mut self, words: &[u64]) {
        self.prune.clear();
        self.prune.extend_from_slice(words);
    }

    /// Switches the penalized move rule on or off, (de)allocating the aux
    /// word array. Like [`CommunityState::set_prune_snapshot`], takes
    /// effect from the next [`CommunityState::reset`].
    pub fn set_penalized(&mut self, on: bool) {
        if on && self.aux.is_empty() {
            self.aux = vec![0; self.recs.len()];
        } else if !on {
            self.aux = Vec::new();
        }
    }

    /// Removes `v` and marks it tabu: it will not re-enter the addition
    /// queue until [`CommunityState::expire_tabu`]. Penalized rule only.
    ///
    /// # Panics
    /// Debug-panics if the penalized rule is off or `v` is not a member.
    pub fn remove_with_tabu(&mut self, v: NodeId) {
        debug_assert!(!self.aux.is_empty(), "tabu requires the penalized rule");
        self.aux[v.index()] |= AUX_TABU;
        self.remove(v);
    }

    /// Clears `v`'s tabu mark and, if `v` is an eligible boundary node,
    /// relinks it into the addition queue at its current (penalized)
    /// bucket. No-op when `v` is not tabu.
    pub fn expire_tabu(&mut self, v: NodeId) {
        if self.aux.is_empty() {
            return;
        }
        let i = v.index();
        let a = self.aux[i];
        if a & AUX_TABU == 0 {
            return;
        }
        self.aux[i] = a & !AUX_TABU;
        let rec = self.recs[i];
        let d = (rec.word & DEG_MASK) as usize;
        if rec.word & IN_SET != 0 || d == 0 || self.pruned_bit(v.raw()) {
            return;
        }
        let b = self.add_bucket(v.raw(), d);
        let head = link_at_head(
            &mut self.recs,
            &mut self.add_heads,
            &mut self.dirty_add,
            v.raw(),
            b,
        );
        self.recs[i] = NodeRec {
            word: rec.word,
            prev: NIL,
            next: head,
            slot: rec.slot,
        };
        if b > self.add_max {
            self.add_max = b;
        }
    }

    /// Adds `v` to the set. `O(deg v)`, allocation-free at steady state.
    ///
    /// Each neighbor costs one read and one write of its packed record
    /// plus the O(1) intrusive relink between adjacent buckets.
    ///
    /// # Panics
    /// Debug-panics if `v` is already a member.
    pub fn add(&mut self, v: NodeId) {
        debug_assert!(!self.contains(v));
        let i = v.index();
        let rec = self.recs[i];
        let d = (rec.word & DEG_MASK) as usize;
        self.ein += d;
        self.fp_xor ^= fp_mix_xor(v.raw());
        self.fp_sum = self.fp_sum.wrapping_add(fp_mix_sum(v.raw()));
        if d > 0 && !self.add_blocked(v.raw()) {
            // Boundary nodes with positive internal degree sit in the
            // addition queue (unless pruned/tabu); v leaves it as it
            // joins S.
            let b = self.add_bucket(v.raw(), d);
            unlink_known(&mut self.recs, &mut self.add_heads, rec.prev, rec.next, b);
        }
        if !self.aux.is_empty() {
            let a = self.aux[i];
            debug_assert!(a & AUX_TABU == 0, "tabu node added to the set");
            self.aux[i] = (a & AUX_TABU) | ((a & AUX_PENALTY_MASK) + 1).min(AUX_PENALTY_MASK);
        }
        if rec.word & TOUCHED == 0 {
            self.touched.push(v);
        }
        let slot = self.members.len() as u32;
        self.members.push(v);
        self.sqrt.ensure(self.members.len() + 1);
        let head = link_at_head(
            &mut self.recs,
            &mut self.rem_heads,
            &mut self.dirty_rem,
            v.raw(),
            d,
        );
        self.recs[i] = NodeRec {
            word: rec.word | IN_SET | TOUCHED,
            prev: NIL,
            next: head,
            slot,
        };
        if d < self.rem_min {
            self.rem_min = d;
        }
        // Copying the `&'g` graph reference out of `self` lets the
        // neighbor slice outlive the `&mut self` accesses below.
        let graph = self.graph;
        for &u in graph.neighbors(v) {
            let j = u.index();
            let urec = self.recs[j];
            let du = (urec.word & DEG_MASK) as usize;
            if urec.word & TOUCHED == 0 {
                self.touched.push(u);
            }
            if urec.word & IN_SET != 0 {
                // A member moving up one bucket cannot lower the minimum.
                unlink_known(
                    &mut self.recs,
                    &mut self.rem_heads,
                    urec.prev,
                    urec.next,
                    du,
                );
                let head = link_at_head(
                    &mut self.recs,
                    &mut self.rem_heads,
                    &mut self.dirty_rem,
                    u.raw(),
                    du + 1,
                );
                self.recs[j] = NodeRec {
                    word: (urec.word | TOUCHED) + 1,
                    prev: NIL,
                    next: head,
                    slot: urec.slot,
                };
            } else if self.add_blocked(u.raw()) {
                // Pruned/tabu boundary nodes stay out of the queue; only
                // their (exact) degree accounting advances.
                self.recs[j].word = (urec.word | TOUCHED) + 1;
            } else {
                let nb = self.add_bucket(u.raw(), du + 1);
                if du > 0 && self.add_bucket(u.raw(), du) == nb {
                    // A penalized key saturated at 1: the links are
                    // already right, only the degree moves.
                    self.recs[j].word = (urec.word | TOUCHED) + 1;
                } else {
                    if du > 0 {
                        let ob = self.add_bucket(u.raw(), du);
                        unlink_known(
                            &mut self.recs,
                            &mut self.add_heads,
                            urec.prev,
                            urec.next,
                            ob,
                        );
                    }
                    let head = link_at_head(
                        &mut self.recs,
                        &mut self.add_heads,
                        &mut self.dirty_add,
                        u.raw(),
                        nb,
                    );
                    self.recs[j] = NodeRec {
                        word: (urec.word | TOUCHED) + 1,
                        prev: NIL,
                        next: head,
                        slot: urec.slot,
                    };
                    if nb > self.add_max {
                        self.add_max = nb;
                    }
                }
            }
        }
    }

    /// Removes `v` from the set. `O(deg v)` — the member list is
    /// slot-indexed, so the swap-remove needs no linear scan.
    ///
    /// # Panics
    /// Debug-panics if `v` is not a member.
    pub fn remove(&mut self, v: NodeId) {
        debug_assert!(self.contains(v));
        let i = v.index();
        let rec = self.recs[i];
        let d = (rec.word & DEG_MASK) as usize;
        self.ein -= d;
        self.fp_xor ^= fp_mix_xor(v.raw());
        self.fp_sum = self.fp_sum.wrapping_sub(fp_mix_sum(v.raw()));
        unlink_known(&mut self.recs, &mut self.rem_heads, rec.prev, rec.next, d);
        let slot = rec.slot as usize;
        self.members.swap_remove(slot);
        if let Some(&moved) = self.members.get(slot) {
            self.recs[moved.index()].slot = slot as u32;
        }
        let graph = self.graph;
        for &u in graph.neighbors(v) {
            let j = u.index();
            let urec = self.recs[j];
            let du = (urec.word & DEG_MASK) as usize;
            debug_assert!(du >= 1, "neighbor of a member must have deg_S >= 1");
            if urec.word & IN_SET != 0 {
                unlink_known(
                    &mut self.recs,
                    &mut self.rem_heads,
                    urec.prev,
                    urec.next,
                    du,
                );
                let head = link_at_head(
                    &mut self.recs,
                    &mut self.rem_heads,
                    &mut self.dirty_rem,
                    u.raw(),
                    du - 1,
                );
                self.recs[j] = NodeRec {
                    word: urec.word - 1,
                    prev: NIL,
                    next: head,
                    slot: urec.slot,
                };
                if du - 1 < self.rem_min {
                    self.rem_min = du - 1;
                }
            } else if self.add_blocked(u.raw()) {
                self.recs[j].word = urec.word - 1;
            } else {
                // A boundary node moving down one bucket cannot raise the
                // maximum; at degree 0 it leaves the queue entirely.
                let ob = self.add_bucket(u.raw(), du);
                let nb = if du > 1 {
                    self.add_bucket(u.raw(), du - 1)
                } else {
                    0
                };
                if du > 1 && nb == ob {
                    self.recs[j].word = urec.word - 1;
                } else {
                    unlink_known(
                        &mut self.recs,
                        &mut self.add_heads,
                        urec.prev,
                        urec.next,
                        ob,
                    );
                    let head = if du > 1 {
                        link_at_head(
                            &mut self.recs,
                            &mut self.add_heads,
                            &mut self.dirty_add,
                            u.raw(),
                            nb,
                        )
                    } else {
                        NIL
                    };
                    self.recs[j] = NodeRec {
                        word: urec.word - 1,
                        prev: NIL,
                        next: head,
                        slot: urec.slot,
                    };
                }
            }
        }
        // v rejoins the boundary with its internal degree unchanged
        // (unless pruned or just marked tabu by `remove_with_tabu`).
        if d > 0 && !self.add_blocked(v.raw()) {
            let b = self.add_bucket(v.raw(), d);
            let head = link_at_head(
                &mut self.recs,
                &mut self.add_heads,
                &mut self.dirty_add,
                v.raw(),
                b,
            );
            self.recs[i] = NodeRec {
                word: rec.word & !IN_SET,
                prev: NIL,
                next: head,
                slot: rec.slot,
            };
            if b > self.add_max {
                self.add_max = b;
            }
        } else {
            self.recs[i] = NodeRec {
                word: rec.word & !IN_SET,
                prev: NIL,
                next: NIL,
                slot: rec.slot,
            };
        }
    }

    /// Iterates the boundary: non-members adjacent to at least one member.
    ///
    /// Derived from the touched list, so the cost is proportional to the
    /// neighborhood of the current and former members, not to `n`.
    pub fn boundary(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.touched.iter().copied().filter(|&v| {
            let word = self.recs[v.index()].word;
            word & IN_SET == 0 && word & DEG_MASK > 0
        })
    }

    /// The best addition candidate: the boundary node with the largest
    /// internal degree.
    ///
    /// Correct because `L(s+1, ein+d)` is strictly increasing in `d` (the
    /// `Ein` coefficient `1 − (s−2)/√(s(s−1))` is positive for all `s`), so
    /// the node maximizing `deg_S(v)` also maximizes the fitness gain. The
    /// intrusive bucket queue holds exactly the eligible boundary (pruned
    /// and tabu nodes are suppressed), so this is a head lookup plus the
    /// amortized-O(1) tightening of `add_max` (each empty bucket walked is
    /// never walked again until an insert re-raises the bound). Runs stay
    /// deterministic (LIFO order within a bucket). Under the penalized
    /// rule the bucket key is `max(1, deg_S − penalty)`, so the head is
    /// the best candidate by *penalized* priority; callers evaluate its
    /// true gain via [`CommunityState::gain_add`].
    pub fn best_addition(&mut self) -> Option<NodeId> {
        let mut b = self.add_max;
        self.probes += 1;
        while b > 0 && self.add_heads[b] == NIL {
            b -= 1;
            self.probes += 1;
        }
        self.add_max = b;
        if b == 0 {
            None
        } else {
            Some(NodeId(self.add_heads[b]))
        }
    }

    /// The best removal candidate: the member with the smallest internal
    /// degree (the gain of removing is decreasing in `deg_S(v)`; see
    /// [`CommunityState::best_addition`] for the monotonicity argument).
    /// Returns `None` for sets of size ≤ 1.
    pub fn best_removal(&mut self) -> Option<NodeId> {
        if self.members.len() <= 1 {
            return None;
        }
        // A member is always linked in the removal queue, so the ascent
        // from `rem_min` terminates at a real candidate.
        let mut b = self.rem_min;
        self.probes += 1;
        while self.rem_heads[b] == NIL {
            b += 1;
            self.probes += 1;
        }
        self.rem_min = b;
        Some(NodeId(self.rem_heads[b]))
    }

    /// Snapshots the current set as a [`Community`].
    pub fn to_community(&self) -> Community {
        Community::new(self.members.clone())
    }

    /// Clears the set, zeroing only the touched records and the dirty
    /// bucket heads, so the state can be reused for the next seed at a
    /// cost proportional to the work done — not O(n), and not
    /// O(max_degree) even after an earlier ascent through a high-degree
    /// hub has raised the active bucket range.
    pub fn reset(&mut self) {
        if self.aux.is_empty() {
            for &v in &self.touched {
                self.recs[v.index()] = NodeRec::EMPTY;
            }
        } else {
            // Penalties/tabus are per-ascent; nonzero aux words only ever
            // belong to touched nodes, so this stays O(touched).
            for &v in &self.touched {
                self.recs[v.index()] = NodeRec::EMPTY;
                self.aux[v.index()] = 0;
            }
        }
        self.touched.clear();
        self.members.clear();
        self.ein = 0;
        self.fp_xor = 0;
        self.fp_sum = 0;
        #[cfg(test)]
        {
            self.last_reset_bucket_visits = self.dirty_add.len() + self.dirty_rem.len();
        }
        for d in self.dirty_add.drain(..) {
            self.add_heads[d as usize] = NIL;
        }
        self.add_max = 0;
        for d in self.dirty_rem.drain(..) {
            self.rem_heads[d as usize] = NIL;
        }
        self.rem_min = usize::MAX;
    }

    /// Recomputes `Ein` from scratch; for tests and debug assertions.
    pub fn recompute_internal_edges(&self) -> usize {
        let mut twice = 0usize;
        for &v in &self.members {
            twice += self
                .graph
                .neighbors(v)
                .iter()
                .filter(|u| self.contains(**u))
                .count();
        }
        twice / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::from_edges;

    fn karate_ish() -> oca_graph::CsrGraph {
        // Two triangles joined by one bridge: 0-1-2 and 3-4-5, bridge 2-3.
        from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn node_record_is_sixteen_bytes() {
        assert_eq!(std::mem::size_of::<NodeRec>(), 16);
    }

    #[test]
    fn add_tracks_internal_edges() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        st.add(NodeId(0));
        assert_eq!(st.internal_edges(), 0);
        st.add(NodeId(1));
        assert_eq!(st.internal_edges(), 1);
        st.add(NodeId(2));
        assert_eq!(st.internal_edges(), 3);
        assert_eq!(st.recompute_internal_edges(), 3);
        assert_eq!(st.len(), 3);
    }

    #[test]
    fn remove_reverses_add() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        for v in [0, 1, 2, 3] {
            st.add(NodeId(v));
        }
        let f_before = st.fitness();
        st.add(NodeId(4));
        st.remove(NodeId(4));
        assert!((st.fitness() - f_before).abs() < 1e-12);
        assert_eq!(st.internal_edges(), st.recompute_internal_edges());
        assert!(!st.contains(NodeId(4)));
    }

    #[test]
    fn boundary_is_exactly_adjacent_non_members() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        st.add(NodeId(0));
        st.add(NodeId(1));
        let mut b: Vec<u32> = st.boundary().map(|v| v.raw()).collect();
        b.sort_unstable();
        assert_eq!(b, vec![2]);
        st.add(NodeId(2));
        let mut b: Vec<u32> = st.boundary().map(|v| v.raw()).collect();
        b.sort_unstable();
        assert_eq!(b, vec![3]);
    }

    #[test]
    fn gains_match_apply() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        st.add(NodeId(3));
        st.add(NodeId(4));
        let before = st.fitness();
        let predicted = st.gain_add(NodeId(5));
        st.add(NodeId(5));
        assert!((st.fitness() - before - predicted).abs() < 1e-12);

        let before = st.fitness();
        let predicted = st.gain_remove(NodeId(3));
        st.remove(NodeId(3));
        assert!((st.fitness() - before - predicted).abs() < 1e-12);
    }

    #[test]
    fn reset_allows_reuse() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        for v in [0, 1, 2] {
            st.add(NodeId(v));
        }
        st.reset();
        assert!(st.is_empty());
        assert_eq!(st.internal_edges(), 0);
        assert_eq!(st.boundary().count(), 0);
        st.add(NodeId(4));
        assert_eq!(st.internal_degree(NodeId(3)), 1);
        assert_eq!(st.internal_edges(), 0);
    }

    #[test]
    fn best_addition_tracks_max_internal_degree() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        st.add(NodeId(0));
        st.add(NodeId(1));
        // Node 2 closes the triangle: deg_in 2, strictly best.
        assert_eq!(st.best_addition(), Some(NodeId(2)));
        st.add(NodeId(2));
        // Boundary is only node 3 (deg_in 1).
        assert_eq!(st.best_addition(), Some(NodeId(3)));
    }

    #[test]
    fn best_removal_tracks_min_internal_degree() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        for v in [0, 1, 2, 3] {
            st.add(NodeId(v));
        }
        // Node 3 has deg_in 1 (edge to 2), everyone else ≥ 2.
        assert_eq!(st.best_removal(), Some(NodeId(3)));
        st.remove(NodeId(3));
        // Triangle members all have deg_in 2: any is valid.
        let v = st.best_removal().unwrap();
        assert_eq!(st.internal_degree(v), 2);
    }

    #[test]
    fn best_candidates_survive_reset_and_reuse() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        for v in [0, 1, 2] {
            st.add(NodeId(v));
        }
        st.reset();
        assert_eq!(st.best_addition(), None);
        assert_eq!(st.best_removal(), None);
        st.add(NodeId(4));
        let b = st.best_addition().unwrap();
        assert!(b == NodeId(3) || b == NodeId(5), "neighbors of 4");
    }

    #[test]
    fn best_addition_handles_degree_decreases() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        st.add(NodeId(0));
        st.add(NodeId(1));
        st.add(NodeId(2));
        // 3's deg_in is 1; removing 2 drops it to 0 → no candidates left
        // adjacent to {0,1} except 2 itself.
        st.remove(NodeId(2));
        assert_eq!(st.best_addition(), Some(NodeId(2)));
    }

    /// Regression: `reset` used to clear *every* bucket vec, so after one
    /// ascent through a high-degree hub every later ascent paid
    /// O(max_degree) on reset no matter how small its community was.
    #[test]
    fn reset_visits_only_dirty_buckets() {
        // A 10k-leaf star: adding all leaves walks the hub through buckets
        // 1..=10_000 of the addition queue.
        let leaves = 10_000u32;
        let g = from_edges(leaves as usize + 1, (1..=leaves).map(|leaf| (0, leaf)));
        let mut st = CommunityState::new(&g, 0.8);
        for leaf in 1..=leaves {
            st.add(NodeId(leaf));
        }
        st.reset();
        assert!(
            st.add_heads.len() > leaves as usize / 2,
            "the head arrays span the hub degree"
        );
        // A tiny follow-up ascent: one leaf, touching only the hub.
        st.add(NodeId(1));
        st.remove(NodeId(1));
        st.reset();
        assert!(
            st.last_reset_bucket_visits <= 8,
            "tiny ascent reset visited {} buckets (table size {})",
            st.last_reset_bucket_visits,
            st.add_heads.len()
        );
        // Correctness after the cheap reset: the state is genuinely clean.
        assert!(st.is_empty());
        assert_eq!(st.best_addition(), None);
        st.add(NodeId(0));
        assert_eq!(st.internal_degree(NodeId(1)), 1);
    }

    /// Regression for the bound-drift bug: `max_bucket`/`min_bucket` used
    /// to tighten only on reset, so late in a long ascent every
    /// best-candidate query re-scanned the same emptied bucket range. The
    /// intrusive queues tighten incrementally: total probes stay
    /// proportional to moves + degree churn, not moves × bucket range.
    #[test]
    fn best_candidate_probes_stay_proportional_to_work() {
        // Hub-and-spokes: the hub reaches internal degree `leaves` while
        // leaves sit at degree 1, leaving buckets 2..leaves empty.
        let leaves = 2_000u32;
        let g = from_edges(leaves as usize + 1, (1..=leaves).map(|leaf| (0, leaf)));
        let mut st = CommunityState::new(&g, 0.8);
        st.add(NodeId(0));
        for leaf in 1..=leaves {
            st.add(NodeId(leaf));
        }
        let before = st.bucket_probes();
        // Many queries at a fixed state: with a stale upper bound each
        // best_addition would walk the whole empty 2..leaves range; the
        // tightened bound makes every extra query O(1).
        for _ in 0..leaves {
            let _ = st.best_addition();
            let _ = st.best_removal();
        }
        let probes = st.bucket_probes() - before;
        assert!(
            probes <= 2 * leaves as u64 + leaves as u64 / 4,
            "repeated queries probed {probes} heads for {leaves} queries — bounds drifted"
        );
    }

    /// The fingerprint depends only on the final member *set*: different
    /// move orders (and intervening add/remove churn) converge to the same
    /// value, distinct sets get distinct values, and the empty set is 0.
    #[test]
    fn fingerprint_is_order_independent_and_set_determined() {
        let g = karate_ish();
        let mut a = CommunityState::new(&g, 0.8);
        let mut b = CommunityState::new(&g, 0.8);
        for v in [0, 1, 2] {
            a.add(NodeId(v));
        }
        for v in [2, 0, 5, 1] {
            b.add(NodeId(v));
        }
        b.remove(NodeId(5));
        assert_eq!(a.fingerprint(), b.fingerprint(), "same set, same print");
        assert_ne!(a.fingerprint(), 0, "non-empty sets are non-zero");
        b.remove(NodeId(2));
        b.add(NodeId(3));
        assert_ne!(a.fingerprint(), b.fingerprint(), "{{0,1,3}} != {{0,1,2}}");
        a.reset();
        assert_eq!(a.fingerprint(), 0, "reset restores the empty print");
        a.add(NodeId(4));
        a.remove(NodeId(4));
        assert_eq!(a.fingerprint(), 0, "add/remove round-trips to empty");
    }

    #[test]
    fn to_community_is_sorted() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        st.add(NodeId(5));
        st.add(NodeId(3));
        let c = st.to_community();
        assert_eq!(c.members(), &[NodeId(3), NodeId(5)]);
    }

    /// Sets the prune bit for `v` in a mask sized for `g`.
    fn prune_mask(n: usize, nodes: &[u32]) -> Vec<u64> {
        let mut mask = vec![0u64; n.div_ceil(64)];
        for &v in nodes {
            mask[v as usize / 64] |= 1 << (v % 64);
        }
        mask
    }

    #[test]
    fn pruned_nodes_are_never_candidates_but_keep_exact_degrees() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        st.set_prune_snapshot(&prune_mask(6, &[2]));
        st.reset();
        st.add(NodeId(0));
        st.add(NodeId(1));
        // 2 closes the triangle but is pruned; no other boundary node.
        assert_eq!(st.best_addition(), None);
        assert_eq!(st.internal_degree(NodeId(2)), 2, "degree stays exact");
        assert_eq!(st.internal_edges(), st.recompute_internal_edges());
        // Members can still be pruned *as re-add candidates*: force 2 in,
        // remove it, and it may not rejoin the queue.
        st.add(NodeId(2));
        assert_eq!(st.internal_edges(), 3);
        st.remove(NodeId(2));
        assert_eq!(st.best_addition(), None);
        assert_eq!(st.internal_edges(), st.recompute_internal_edges());
        // Clearing the snapshot restores candidacy from the next reset.
        st.set_prune_snapshot(&[]);
        st.reset();
        st.add(NodeId(0));
        st.add(NodeId(1));
        assert_eq!(st.best_addition(), Some(NodeId(2)));
    }

    #[test]
    fn repeat_add_penalty_lowers_queue_priority_not_gains() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        st.set_penalized(true);
        st.reset();
        st.add(NodeId(0));
        st.add(NodeId(1));
        st.add(NodeId(2));
        // Churn 2: each add bumps its penalty (1 from the build-up, +1 per
        // re-add). After two re-adds its penalty is 3.
        for _ in 0..2 {
            st.remove(NodeId(2));
            st.add(NodeId(2));
        }
        st.remove(NodeId(2));
        // True degrees: 2 has deg_S 2, 3 has deg_S... 3 is adjacent to 2
        // only — not to {0,1} — so with 2 out the boundary is just 2, at
        // penalized key max(1, 2−3) = 1. Still a candidate, gain exact.
        assert_eq!(st.best_addition(), Some(NodeId(2)));
        let g_add = st.gain_add(NodeId(2));
        let before = st.fitness();
        st.add(NodeId(2));
        assert!((st.fitness() - before - g_add).abs() < 1e-12);
        // And the penalized key demotes 2 below a fresh degree-2 node:
        // rebuild with both 2 and 4 adjacent at degree 2... simpler graph
        // check: after reset penalties are gone.
        st.reset();
        st.add(NodeId(0));
        st.add(NodeId(1));
        assert_eq!(st.best_addition(), Some(NodeId(2)), "penalties reset");
    }

    #[test]
    fn penalized_key_orders_candidates_below_fresh_ones() {
        // A 4-path 0-1-2-3 plus node 4 adjacent to both 1 and 2: from
        // {1,2}, candidates 0 and 3 have deg_S 1, node 4 has deg_S 2.
        let g = from_edges(5, [(0, 1), (1, 2), (2, 3), (1, 4), (2, 4)]);
        let mut st = CommunityState::new(&g, 0.8);
        st.set_penalized(true);
        st.reset();
        st.add(NodeId(1));
        st.add(NodeId(2));
        assert_eq!(st.best_addition(), Some(NodeId(4)));
        // Penalize 4 down to key max(1, 2−2) = 1; it now ties the
        // degree-1 candidates instead of dominating them, and the LIFO
        // head of bucket 1 wins.
        st.add(NodeId(4));
        st.remove(NodeId(4));
        st.add(NodeId(4));
        st.remove(NodeId(4));
        let best = st.best_addition().unwrap();
        assert_eq!(st.add_bucket(4, 2), 1, "key saturates at 1");
        assert!(best == NodeId(0) || best == NodeId(3) || best == NodeId(4));
    }

    #[test]
    fn tabu_suppresses_and_expire_restores_candidacy() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        st.set_penalized(true);
        st.reset();
        for v in [0, 1, 2] {
            st.add(NodeId(v));
        }
        st.remove_with_tabu(NodeId(2));
        // 2 is the only boundary node of {0,1} but is tabu; 3 lost its
        // only internal neighbor.
        assert_eq!(st.best_addition(), None);
        st.expire_tabu(NodeId(2));
        assert_eq!(st.best_addition(), Some(NodeId(2)));
        // Expiring a non-tabu node is a no-op (no double links).
        st.expire_tabu(NodeId(2));
        st.add(NodeId(2));
        assert_eq!(st.internal_edges(), st.recompute_internal_edges());
        assert_eq!(st.len(), 3);
    }

    #[test]
    fn tabu_state_does_not_leak_across_reset() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        st.set_penalized(true);
        st.reset();
        for v in [0, 1, 2] {
            st.add(NodeId(v));
        }
        st.remove_with_tabu(NodeId(2));
        st.reset();
        st.add(NodeId(0));
        st.add(NodeId(1));
        assert_eq!(st.best_addition(), Some(NodeId(2)), "tabu cleared");
        // Dropping back to greedy mode keeps the state consistent too.
        st.set_penalized(false);
        st.reset();
        st.add(NodeId(0));
        st.add(NodeId(1));
        assert_eq!(st.best_addition(), Some(NodeId(2)));
    }

    #[test]
    fn member_slots_follow_swap_removals() {
        let g = karate_ish();
        let mut st = CommunityState::new(&g, 0.8);
        for v in [0, 1, 2, 3, 4, 5] {
            st.add(NodeId(v));
        }
        // Remove from the middle repeatedly; slots must stay consistent
        // (a broken slot map would corrupt the member list or panic).
        st.remove(NodeId(1));
        st.remove(NodeId(4));
        st.remove(NodeId(0));
        let mut left: Vec<u32> = st.members().iter().map(|v| v.raw()).collect();
        left.sort_unstable();
        assert_eq!(left, vec![2, 3, 5]);
        assert_eq!(st.internal_edges(), st.recompute_internal_edges());
    }
}
