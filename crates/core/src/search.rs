//! Local maximization of the directed-Laplacian fitness (Section IV).
//!
//! From an initial set, repeatedly apply the single add-or-remove move with
//! the greatest fitness increment. Under the paper's greedy rule
//! ([`MoveRule::Greedy`]) only strictly improving moves are applied, so
//! fitness increases every move and termination is guaranteed. The
//! penalized rule ([`MoveRule::Penalized`]) may also accept the best
//! non-improving move to escape a plateau, bounded by a patience window
//! and protected from cycling by a recency tabu plus repeat-add penalties;
//! it returns the best set seen, never the last one.
//!
//! Either rule can additionally run under a per-ascent move budget scaled
//! to the seed neighborhood ([`SearchConfig::budget_factor`]), which is
//! what keeps a single hub ascent from dominating a whole run on
//! scale-free graphs (DESIGN.md §2a).

use crate::state::CommunityState;
use oca_graph::{CancelToken, Community, NodeId};

/// Floor of the scaled per-ascent move budget: even a singleton seed may
/// spend this many moves, so tiny seeds can still grow a real community.
pub const MIN_MOVE_BUDGET: usize = 32;

/// Which move-selection rule the ascent uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MoveRule {
    /// The paper's rule: apply the best move only while it strictly
    /// improves fitness; stop at the first local maximum.
    #[default]
    Greedy,
    /// Tabu-style rule: apply the best move even when it does not improve,
    /// with a recency tabu on just-removed nodes and a per-node repeat-add
    /// penalty folded into the candidate bucket key (both diversify the
    /// search away from re-adding the same hub nodes). The ascent tracks
    /// the best fitness seen and returns *that* set once the plateau
    /// patience ([`SearchConfig::plateau_moves`]) runs out.
    Penalized,
}

/// Why an ascent stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AscentStop {
    /// No applicable move improves fitness (greedy), or no move is
    /// applicable at all (penalized): a true local maximum.
    Converged,
    /// The hard [`SearchConfig::max_moves`] cap was hit while an
    /// applicable move remained.
    MoveCap,
    /// The scaled per-ascent budget ([`SearchConfig::budget_factor`]) was
    /// spent while an applicable move remained.
    MoveBudget,
    /// The penalized rule went [`SearchConfig::plateau_moves`] moves
    /// without a new best fitness and returned the best-so-far set.
    Plateau,
}

impl AscentStop {
    /// Stable lowercase label (used in telemetry and the serve protocol).
    pub fn label(self) -> &'static str {
        match self {
            AscentStop::Converged => "converged",
            AscentStop::MoveCap => "move-cap",
            AscentStop::MoveBudget => "move-budget",
            AscentStop::Plateau => "plateau",
        }
    }
}

/// Tunables of one ascent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Hard cap on moves (safety net; ascent normally stops on its own).
    pub max_moves: usize,
    /// Minimum gain for a move to count as an improvement. A small positive
    /// epsilon avoids chasing floating-point noise at the optimum.
    pub min_gain: f64,
    /// Per-ascent move budget as a multiple of the initial set's size
    /// (which is ~half the seed's closed neighborhood under the default
    /// [`crate::SeedStrategy`]): the ascent may spend
    /// `max(MIN_MOVE_BUDGET, ceil(budget_factor × (|initial| + 1)))`
    /// moves, never more than [`SearchConfig::max_moves`]. `0.0` disables
    /// the budget (the library default, preserving pre-budget behavior);
    /// the registry's tuned preset enables it. Scaling to the seed
    /// neighborhood means peripheral seeds stop crawling hub cores while
    /// dense seeds keep room to grow.
    pub budget_factor: f64,
    /// Penalized rule only: how many consecutive moves without a new best
    /// fitness the ascent tolerates before returning the best-so-far set.
    /// The greedy rule stops at the first non-improving move regardless.
    pub plateau_moves: usize,
    /// Penalized rule only: for how many subsequent moves a just-removed
    /// node may not be re-added (values < 1 behave as 1).
    pub tabu_tenure: usize,
    /// Move-selection rule.
    pub move_rule: MoveRule,
    /// Skip already-covered nodes of at least this degree when enumerating
    /// add candidates (`0` disables). The driver feeds the round-start
    /// coverage snapshot to [`CommunityState::set_prune_snapshot`], so hub
    /// ascents stop re-exploring mega-neighborhoods that earlier accepted
    /// communities already cover — and because every ticket of a round
    /// sees the same snapshot, covers stay bit-identical across thread
    /// counts.
    pub prune_hub_degree: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_moves: 100_000,
            min_gain: 1e-9,
            budget_factor: 0.0,
            plateau_moves: 64,
            tabu_tenure: 8,
            move_rule: MoveRule::Greedy,
            prune_hub_degree: 0,
        }
    }
}

impl SearchConfig {
    /// The effective per-ascent move cap for an initial set of
    /// `initial_len` nodes, and whether the scaled budget (rather than the
    /// hard [`SearchConfig::max_moves`] cap) is what bounds it.
    pub fn move_cap(&self, initial_len: usize) -> (usize, bool) {
        if self.budget_factor > 0.0 {
            let scaled = (self.budget_factor * (initial_len as f64 + 1.0)).ceil() as usize;
            let budget = scaled.max(MIN_MOVE_BUDGET);
            if budget < self.max_moves {
                return (budget, true);
            }
        }
        (self.max_moves, false)
    }
}

/// Outcome of a local search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The community at the (best seen) local maximum.
    pub community: Community,
    /// Its fitness `L`.
    pub fitness: f64,
    /// Number of applied moves (not counting the unwind back to the best
    /// set under the penalized rule).
    pub moves: usize,
    /// Whether the ascent reached a true local maximum (vs. a budget).
    pub converged: bool,
    /// Why the ascent stopped.
    pub stop: AscentStop,
}

/// One candidate move, as `(gain, node, is_addition)`.
///
/// Exploits the monotonicity of the gain in the internal degree (see
/// [`CommunityState::best_addition`]): only two fitness evaluations are
/// needed per move, one for the densest boundary node and one for the
/// loosest member. Under the penalized rule the addition candidate is the
/// best by *penalized* bucket key, but its gain — and the comparison
/// against the removal — uses the true fitness increment.
fn best_move(state: &mut CommunityState<'_>) -> Option<(f64, NodeId, bool)> {
    let mut best: Option<(f64, NodeId, bool)> = None;
    if let Some(v) = state.best_addition() {
        best = Some((state.gain_add(v), v, true));
    }
    if let Some(v) = state.best_removal() {
        let g = state.gain_remove(v);
        if best.is_none_or(|(bg, _, _)| g > bg) {
            best = Some((g, v, false));
        }
    }
    best
}

/// Outcome of an in-place ascent: everything [`SearchOutcome`] carries
/// except the materialized community, which stays in the state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AscentOutcome {
    /// Fitness `L` at the (best seen) local maximum.
    pub fitness: f64,
    /// Number of applied moves (not counting the unwind back to the best
    /// set under the penalized rule).
    pub moves: usize,
    /// Whether the ascent reached a true local maximum (vs. a budget).
    pub converged: bool,
    /// Why the ascent stopped.
    pub stop: AscentStop,
}

/// Runs the ascent from `initial` on a (reset) state, leaving the final
/// set *in the state* without building a member vector. The driver uses
/// this so rejected ascents — duplicates, too-small sets — never pay for
/// cloning and sorting their members: it checks [`CommunityState::len`]
/// and [`CommunityState::fingerprint`] first and calls
/// [`CommunityState::to_community`] only for candidates that can still be
/// accepted.
pub fn ascend(
    state: &mut CommunityState<'_>,
    initial: &[NodeId],
    config: &SearchConfig,
) -> AscentOutcome {
    ascend_cancellable(state, initial, config, None).0
}

/// How many moves pass between cancellation polls inside an ascent. A
/// relaxed atomic load is cheap but not free; polling every 32 moves keeps
/// the overhead unmeasurable while bounding the cancellation latency of
/// even a hub-sized ascent to microseconds.
const CANCEL_POLL_MASK: usize = 31;

/// Like [`ascend`], but polls `cancel` every few moves and stops early
/// when it fires. Returns the outcome plus whether the ascent was
/// interrupted: an interrupted ascent reports `converged: false` and the
/// cap-style stop of its configuration (the ascent was externally bounded
/// while applicable moves may have remained), and the state holds the
/// partial set — under the penalized rule, the best set seen so far (the
/// unwind still runs), so the partial result is always the most useful one.
///
/// With `cancel: None` this is exactly [`ascend`]: the poll never fires
/// and the move sequence is bit-identical.
pub fn ascend_cancellable(
    state: &mut CommunityState<'_>,
    initial: &[NodeId],
    config: &SearchConfig,
    cancel: Option<&CancelToken>,
) -> (AscentOutcome, bool) {
    state.set_penalized(config.move_rule == MoveRule::Penalized);
    state.reset();
    for &v in initial {
        if !state.contains(v) {
            state.add(v);
        }
    }
    let (cap, budgeted) = config.move_cap(initial.len());
    let over_cap = if budgeted {
        AscentStop::MoveBudget
    } else {
        AscentStop::MoveCap
    };
    match config.move_rule {
        MoveRule::Greedy => ascend_greedy(state, config, cap, over_cap, cancel),
        MoveRule::Penalized => ascend_penalized(state, config, cap, over_cap, cancel),
    }
}

/// True when the ascent should stop for cancellation at move `moves`.
#[inline]
fn cancel_fires(cancel: Option<&CancelToken>, moves: usize) -> bool {
    match cancel {
        Some(token) => moves & CANCEL_POLL_MASK == 0 && token.is_cancelled(),
        None => false,
    }
}

/// The paper's strictly-improving ascent. Convergence is reported from the
/// actual stopping condition — no improving move exists — so an ascent
/// that naturally converges on exactly its last allowed move counts as
/// converged, and a cap stop always means an improving move was forgone.
fn ascend_greedy(
    state: &mut CommunityState<'_>,
    config: &SearchConfig,
    cap: usize,
    over_cap: AscentStop,
    cancel: Option<&CancelToken>,
) -> (AscentOutcome, bool) {
    let mut moves = 0usize;
    let mut interrupted = false;
    let stop = loop {
        match best_move(state) {
            Some((gain, v, is_add)) if gain > config.min_gain => {
                if moves >= cap {
                    break over_cap;
                }
                if cancel_fires(cancel, moves) {
                    interrupted = true;
                    break over_cap;
                }
                if is_add {
                    state.add(v);
                } else {
                    state.remove(v);
                }
                moves += 1;
            }
            _ => break AscentStop::Converged,
        }
    };
    (
        AscentOutcome {
            fitness: state.fitness(),
            moves,
            converged: stop == AscentStop::Converged,
            stop,
        },
        interrupted,
    )
}

/// The tabu/penalty ascent: accepts the best move even when non-improving
/// (within the plateau patience), tabus just-removed nodes for
/// [`SearchConfig::tabu_tenure`] moves, and unwinds to the best set seen
/// before returning. The unwind replays the move log in reverse, so the
/// state's incremental counters — including the dedup fingerprint — end
/// up exactly those of the best set.
fn ascend_penalized(
    state: &mut CommunityState<'_>,
    config: &SearchConfig,
    cap: usize,
    over_cap: AscentStop,
    cancel: Option<&CancelToken>,
) -> (AscentOutcome, bool) {
    let tenure = config.tabu_tenure.max(1);
    let mut moves = 0usize;
    let mut best_fitness = state.fitness();
    let mut since_best = 0usize;
    let mut interrupted = false;
    // Moves applied since the best set was current, for the unwind.
    let mut undo: Vec<(NodeId, bool)> = Vec::new();
    // Tabu entries in expiry order (tenure is constant, so push order is
    // expiry order); front expires first.
    let mut tabu: std::collections::VecDeque<(usize, NodeId)> = std::collections::VecDeque::new();
    let stop = loop {
        if cancel_fires(cancel, moves) {
            interrupted = true;
            break over_cap;
        }
        while let Some(&(expiry, v)) = tabu.front() {
            if expiry > moves {
                break;
            }
            tabu.pop_front();
            state.expire_tabu(v);
        }
        let mut mv = best_move(state);
        if mv.is_none() && !tabu.is_empty() {
            // Every remaining candidate is tabu-blocked: fast-forward the
            // clock (flush all tenures) rather than reporting a spurious
            // local maximum.
            for (_, v) in tabu.drain(..) {
                state.expire_tabu(v);
            }
            mv = best_move(state);
        }
        let Some((gain, v, is_add)) = mv else {
            break AscentStop::Converged;
        };
        if gain <= config.min_gain && since_best >= config.plateau_moves {
            break AscentStop::Plateau;
        }
        if moves >= cap {
            break over_cap;
        }
        if is_add {
            state.add(v);
        } else {
            state.remove_with_tabu(v);
            tabu.push_back((moves + tenure, v));
        }
        moves += 1;
        let f = state.fitness();
        if f > best_fitness + config.min_gain {
            best_fitness = f;
            since_best = 0;
            undo.clear();
        } else {
            since_best += 1;
            undo.push((v, is_add));
        }
    };
    if !undo.is_empty() {
        for (_, v) in tabu.drain(..) {
            state.expire_tabu(v);
        }
        for &(v, was_add) in undo.iter().rev() {
            if was_add {
                state.remove(v);
            } else {
                state.add(v);
            }
        }
        debug_assert!(
            state.fitness() == best_fitness,
            "unwind must restore the best set exactly"
        );
    }
    (
        AscentOutcome {
            fitness: state.fitness(),
            moves,
            converged: stop == AscentStop::Converged,
            stop,
        },
        interrupted,
    )
}

/// Runs the ascent from `initial` on a (reset) state. The state is left
/// holding the final set, so callers can inspect it before reusing.
pub fn local_search(
    state: &mut CommunityState<'_>,
    initial: &[NodeId],
    config: &SearchConfig,
) -> SearchOutcome {
    let outcome = ascend(state, initial, config);
    SearchOutcome {
        community: state.to_community(),
        fitness: outcome.fitness,
        moves: outcome.moves,
        converged: outcome.converged,
        stop: outcome.stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::{from_edges, CsrGraph};

    /// Two 4-cliques joined by a single bridge edge.
    fn two_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((3, 4));
        from_edges(8, edges)
    }

    #[test]
    fn recovers_clique_from_one_member() {
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        let out = local_search(&mut st, &[NodeId(0)], &SearchConfig::default());
        assert!(out.converged);
        assert_eq!(out.stop, AscentStop::Converged);
        let raw: Vec<u32> = out.community.members().iter().map(|v| v.raw()).collect();
        assert_eq!(raw, vec![0, 1, 2, 3], "should grow to the full clique");
    }

    #[test]
    fn recovers_clique_from_other_side_seed() {
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        let out = local_search(&mut st, &[NodeId(5)], &SearchConfig::default());
        let raw: Vec<u32> = out.community.members().iter().map(|v| v.raw()).collect();
        assert_eq!(raw, vec![4, 5, 6, 7]);
    }

    #[test]
    fn prunes_bad_initial_members() {
        // Start with one clique plus a node from the other: the intruder
        // should be removed (or absorbed into a full merge, but with a
        // single bridge edge the split is the optimum).
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        let out = local_search(
            &mut st,
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(6)],
            &SearchConfig::default(),
        );
        let raw: Vec<u32> = out.community.members().iter().map(|v| v.raw()).collect();
        assert_eq!(raw, vec![0, 1, 2, 3], "intruder 6 should be dropped");
    }

    #[test]
    fn fitness_never_decreases() {
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        st.reset();
        st.add(NodeId(0));
        let mut last = st.fitness();
        // Manually replay the ascent, checking monotonicity.
        loop {
            match super::best_move(&mut st) {
                Some((gain, v, is_add)) if gain > 1e-9 => {
                    if is_add {
                        st.add(v)
                    } else {
                        st.remove(v)
                    }
                    let f = st.fitness();
                    assert!(f > last, "fitness decreased: {f} < {last}");
                    last = f;
                }
                _ => break,
            }
        }
    }

    #[test]
    fn move_cap_is_respected() {
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        let cfg = SearchConfig {
            max_moves: 1,
            ..Default::default()
        };
        let out = local_search(&mut st, &[NodeId(0)], &cfg);
        assert_eq!(out.moves, 1);
        assert!(!out.converged);
        assert_eq!(out.stop, AscentStop::MoveCap);
    }

    /// Regression for the old `converged: moves < max_moves` formula: an
    /// ascent whose last improving move lands exactly on the cap *has*
    /// converged — the stopping condition (no further improving move) is
    /// what decides, not whether the cap was reached.
    #[test]
    fn converging_on_exactly_the_last_allowed_move_counts_as_converged() {
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        let free = local_search(&mut st, &[NodeId(0)], &SearchConfig::default());
        assert!(free.converged);
        let cfg = SearchConfig {
            max_moves: free.moves,
            ..Default::default()
        };
        let capped = local_search(&mut st, &[NodeId(0)], &cfg);
        assert_eq!(capped.moves, free.moves);
        assert!(
            capped.converged,
            "natural convergence on the last allowed move misreported as a cap stop"
        );
        assert_eq!(capped.stop, AscentStop::Converged);
        assert_eq!(capped.community, free.community);
    }

    #[test]
    fn scaled_budget_stops_long_ascents_and_reports_it() {
        // A 40-clique: a singleton seed needs 39 improving moves, but the
        // scaled budget (floor 32) allows only 32.
        let k = 40u32;
        let mut edges = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                edges.push((i, j));
            }
        }
        let g = from_edges(k as usize, edges);
        let mut st = CommunityState::new(&g, 0.9);
        let cfg = SearchConfig {
            budget_factor: 1.0,
            ..Default::default()
        };
        let out = local_search(&mut st, &[NodeId(0)], &cfg);
        assert_eq!(out.moves, MIN_MOVE_BUDGET);
        assert_eq!(out.stop, AscentStop::MoveBudget);
        assert!(!out.converged);
        assert_eq!(out.community.len(), MIN_MOVE_BUDGET + 1);
        // Without the budget the same seed converges to the full clique.
        let free = local_search(&mut st, &[NodeId(0)], &SearchConfig::default());
        assert_eq!(free.community.len(), k as usize);
    }

    #[test]
    fn budget_scales_with_the_initial_set() {
        let cfg = SearchConfig {
            budget_factor: 8.0,
            ..Default::default()
        };
        assert_eq!(cfg.move_cap(0), (MIN_MOVE_BUDGET, true), "floor applies");
        assert_eq!(cfg.move_cap(9), (80, true));
        let off = SearchConfig::default();
        assert_eq!(off.move_cap(9), (off.max_moves, false));
        // A huge scaled budget degrades to the hard cap.
        let wide = SearchConfig {
            budget_factor: 1e9,
            ..Default::default()
        };
        assert_eq!(wide.move_cap(9), (wide.max_moves, false));
    }

    #[test]
    fn penalized_rule_recovers_cliques_and_matches_greedy_quality() {
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        let cfg = SearchConfig {
            move_rule: MoveRule::Penalized,
            plateau_moves: 8,
            tabu_tenure: 4,
            ..Default::default()
        };
        let out = local_search(&mut st, &[NodeId(0)], &cfg);
        let raw: Vec<u32> = out.community.members().iter().map(|v| v.raw()).collect();
        assert_eq!(raw, vec![0, 1, 2, 3]);
        let greedy = local_search(&mut st, &[NodeId(0)], &SearchConfig::default());
        assert!(out.fitness >= greedy.fitness - 1e-12);
    }

    /// The penalized rule keeps exploring past the first plateau but must
    /// return the best set seen: its fitness can never be worse than
    /// stopping at the first plateau (patience 0), whose trajectory is a
    /// prefix of the patient one.
    #[test]
    fn best_so_far_is_never_worse_than_the_first_plateau() {
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        for seed in 0..8u32 {
            let base = SearchConfig {
                move_rule: MoveRule::Penalized,
                tabu_tenure: 3,
                ..Default::default()
            };
            let first_plateau = local_search(
                &mut st,
                &[NodeId(seed)],
                &SearchConfig {
                    plateau_moves: 0,
                    ..base
                },
            );
            let patient = local_search(
                &mut st,
                &[NodeId(seed)],
                &SearchConfig {
                    plateau_moves: 16,
                    ..base
                },
            );
            assert!(
                patient.fitness >= first_plateau.fitness - 1e-12,
                "seed {seed}: best-so-far {} worse than first plateau {}",
                patient.fitness,
                first_plateau.fitness
            );
        }
    }

    /// After the plateau patience runs out mid-exploration, the state must
    /// hold exactly the best set (fingerprint included), not the wandering
    /// endpoint — the driver's dedup relies on it.
    #[test]
    fn plateau_stop_restores_the_best_set_in_the_state() {
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        let cfg = SearchConfig {
            move_rule: MoveRule::Penalized,
            plateau_moves: 3,
            tabu_tenure: 2,
            ..Default::default()
        };
        let out = local_search(&mut st, &[NodeId(0)], &cfg);
        assert!((st.fitness() - out.fitness).abs() < 1e-12);
        assert_eq!(st.len(), out.community.len());
        assert_eq!(st.internal_edges(), st.recompute_internal_edges());
        // The reported fitness matches a from-scratch evaluation.
        let mut fresh = CommunityState::new(&g, 0.9);
        for &v in out.community.members() {
            fresh.add(v);
        }
        assert!((fresh.fitness() - out.fitness).abs() < 1e-12);
        assert_eq!(fresh.fingerprint(), st.fingerprint());
    }

    #[test]
    fn isolated_node_stays_singleton() {
        let g = from_edges(3, [(0, 1)]);
        let mut st = CommunityState::new(&g, 0.9);
        let out = local_search(&mut st, &[NodeId(2)], &SearchConfig::default());
        assert_eq!(out.community.len(), 1);
        assert_eq!(out.fitness, 1.0);
    }

    #[test]
    fn duplicate_initial_members_are_deduped() {
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        let out = local_search(
            &mut st,
            &[NodeId(0), NodeId(0), NodeId(1)],
            &SearchConfig::default(),
        );
        let raw: Vec<u32> = out.community.members().iter().map(|v| v.raw()).collect();
        assert_eq!(raw, vec![0, 1, 2, 3]);
    }

    /// A pre-cancelled token stops the ascent before any move, and the
    /// outcome reports an interruption rather than convergence.
    #[test]
    fn pre_cancelled_token_interrupts_before_any_move() {
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        let token = CancelToken::new();
        token.cancel();
        for rule in [MoveRule::Greedy, MoveRule::Penalized] {
            let cfg = SearchConfig {
                move_rule: rule,
                ..Default::default()
            };
            let (out, interrupted) = ascend_cancellable(&mut st, &[NodeId(0)], &cfg, Some(&token));
            assert!(interrupted, "{rule:?}: cancellation not observed");
            assert!(!out.converged);
            assert_eq!(out.moves, 0);
            assert_eq!(st.len(), 1, "{rule:?}: partial set should be the seed");
        }
    }

    /// Without a token (or with an unfired one) the cancellable entry point
    /// is bit-identical to the plain ascent.
    #[test]
    fn unfired_token_matches_plain_ascend() {
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        let cfg = SearchConfig::default();
        let plain = local_search(&mut st, &[NodeId(0)], &cfg);
        let token = CancelToken::new();
        let (out, interrupted) = ascend_cancellable(&mut st, &[NodeId(0)], &cfg, Some(&token));
        assert!(!interrupted);
        assert_eq!(out.moves, plain.moves);
        assert_eq!(out.fitness, plain.fitness);
        assert_eq!(st.to_community(), plain.community);
    }

    /// Reusing one state across rules may not leak penalties, tabus or
    /// members between ascents.
    #[test]
    fn rules_can_alternate_on_a_reused_state() {
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        let penalized = SearchConfig {
            move_rule: MoveRule::Penalized,
            plateau_moves: 4,
            ..Default::default()
        };
        let a = local_search(&mut st, &[NodeId(0)], &SearchConfig::default());
        let b = local_search(&mut st, &[NodeId(0)], &penalized);
        let c = local_search(&mut st, &[NodeId(0)], &SearchConfig::default());
        assert_eq!(a.community, c.community);
        assert_eq!(a.fitness, c.fitness);
        assert_eq!(b.community.len(), 4);
    }
}
