//! Greedy local maximization of the directed-Laplacian fitness (Section IV).
//!
//! From an initial set, repeatedly apply the single add-or-remove move with
//! the greatest fitness increment; stop when no move improves. Fitness
//! strictly increases with every move, so termination is guaranteed.

use crate::state::CommunityState;
use oca_graph::{Community, NodeId};

/// Tunables of one greedy ascent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Hard cap on moves (safety net; ascent normally stops on its own).
    pub max_moves: usize,
    /// Minimum gain for a move to count as an improvement. A small positive
    /// epsilon avoids chasing floating-point noise at the optimum.
    pub min_gain: f64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_moves: 100_000,
            min_gain: 1e-9,
        }
    }
}

/// Outcome of a greedy ascent.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The community at the local maximum.
    pub community: Community,
    /// Its fitness `L`.
    pub fitness: f64,
    /// Number of applied moves.
    pub moves: usize,
    /// Whether the ascent reached a true local maximum (vs. the move cap).
    pub converged: bool,
}

/// One candidate move, as `(gain, node, is_addition)`.
///
/// Exploits the monotonicity of the gain in the internal degree (see
/// [`CommunityState::best_addition`]): only two fitness evaluations are
/// needed per move, one for the densest boundary node and one for the
/// loosest member.
fn best_move(state: &mut CommunityState<'_>) -> Option<(f64, NodeId, bool)> {
    let mut best: Option<(f64, NodeId, bool)> = None;
    if let Some(v) = state.best_addition() {
        best = Some((state.gain_add(v), v, true));
    }
    if let Some(v) = state.best_removal() {
        let g = state.gain_remove(v);
        if best.is_none_or(|(bg, _, _)| g > bg) {
            best = Some((g, v, false));
        }
    }
    best
}

/// Outcome of an in-place ascent: everything [`SearchOutcome`] carries
/// except the materialized community, which stays in the state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AscentOutcome {
    /// Fitness `L` at the local maximum.
    pub fitness: f64,
    /// Number of applied moves.
    pub moves: usize,
    /// Whether the ascent reached a true local maximum (vs. the move cap).
    pub converged: bool,
}

/// Runs the greedy ascent from `initial` on a (reset) state, leaving the
/// final set *in the state* without building a member vector. The driver
/// uses this so rejected ascents — duplicates, too-small sets — never pay
/// for cloning and sorting their members: it checks
/// [`CommunityState::len`] and [`CommunityState::fingerprint`] first and
/// calls [`CommunityState::to_community`] only for candidates that can
/// still be accepted.
pub fn ascend(
    state: &mut CommunityState<'_>,
    initial: &[NodeId],
    config: &SearchConfig,
) -> AscentOutcome {
    state.reset();
    for &v in initial {
        if !state.contains(v) {
            state.add(v);
        }
    }
    let mut moves = 0usize;
    while moves < config.max_moves {
        match best_move(state) {
            Some((gain, v, is_add)) if gain > config.min_gain => {
                if is_add {
                    state.add(v);
                } else {
                    state.remove(v);
                }
                moves += 1;
            }
            _ => break,
        }
    }
    AscentOutcome {
        fitness: state.fitness(),
        moves,
        converged: moves < config.max_moves,
    }
}

/// Runs the greedy ascent from `initial` on a (reset) state. The state is
/// left holding the final set, so callers can inspect it before reusing.
pub fn local_search(
    state: &mut CommunityState<'_>,
    initial: &[NodeId],
    config: &SearchConfig,
) -> SearchOutcome {
    let outcome = ascend(state, initial, config);
    SearchOutcome {
        community: state.to_community(),
        fitness: outcome.fitness,
        moves: outcome.moves,
        converged: outcome.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oca_graph::{from_edges, CsrGraph};

    /// Two 4-cliques joined by a single bridge edge.
    fn two_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((3, 4));
        from_edges(8, edges)
    }

    #[test]
    fn recovers_clique_from_one_member() {
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        let out = local_search(&mut st, &[NodeId(0)], &SearchConfig::default());
        assert!(out.converged);
        let raw: Vec<u32> = out.community.members().iter().map(|v| v.raw()).collect();
        assert_eq!(raw, vec![0, 1, 2, 3], "should grow to the full clique");
    }

    #[test]
    fn recovers_clique_from_other_side_seed() {
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        let out = local_search(&mut st, &[NodeId(5)], &SearchConfig::default());
        let raw: Vec<u32> = out.community.members().iter().map(|v| v.raw()).collect();
        assert_eq!(raw, vec![4, 5, 6, 7]);
    }

    #[test]
    fn prunes_bad_initial_members() {
        // Start with one clique plus a node from the other: the intruder
        // should be removed (or absorbed into a full merge, but with a
        // single bridge edge the split is the optimum).
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        let out = local_search(
            &mut st,
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(6)],
            &SearchConfig::default(),
        );
        let raw: Vec<u32> = out.community.members().iter().map(|v| v.raw()).collect();
        assert_eq!(raw, vec![0, 1, 2, 3], "intruder 6 should be dropped");
    }

    #[test]
    fn fitness_never_decreases() {
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        st.reset();
        st.add(NodeId(0));
        let mut last = st.fitness();
        // Manually replay the ascent, checking monotonicity.
        loop {
            match super::best_move(&mut st) {
                Some((gain, v, is_add)) if gain > 1e-9 => {
                    if is_add {
                        st.add(v)
                    } else {
                        st.remove(v)
                    }
                    let f = st.fitness();
                    assert!(f > last, "fitness decreased: {f} < {last}");
                    last = f;
                }
                _ => break,
            }
        }
    }

    #[test]
    fn move_cap_is_respected() {
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        let cfg = SearchConfig {
            max_moves: 1,
            ..Default::default()
        };
        let out = local_search(&mut st, &[NodeId(0)], &cfg);
        assert_eq!(out.moves, 1);
        assert!(!out.converged);
    }

    #[test]
    fn isolated_node_stays_singleton() {
        let g = from_edges(3, [(0, 1)]);
        let mut st = CommunityState::new(&g, 0.9);
        let out = local_search(&mut st, &[NodeId(2)], &SearchConfig::default());
        assert_eq!(out.community.len(), 1);
        assert_eq!(out.fitness, 1.0);
    }

    #[test]
    fn duplicate_initial_members_are_deduped() {
        let g = two_cliques();
        let mut st = CommunityState::new(&g, 0.9);
        let out = local_search(
            &mut st,
            &[NodeId(0), NodeId(0), NodeId(1)],
            &SearchConfig::default(),
        );
        let raw: Vec<u32> = out.community.members().iter().map(|v| v.raw()).collect();
        assert_eq!(raw, vec![0, 1, 2, 3]);
    }
}
