//! The OCA driver: repeated seeded ascents, dedup, halting, postprocessing.
//!
//! This is Section IV end-to-end, built around a **deterministic
//! ticket-ordered schedule**: ascent number `i` (its *ticket*) draws its
//! seed node and its initial set from an RNG stream derived only from
//! `(rng_seed, i)`, tickets are processed in rounds of [`OcaConfig::batch`]
//! whose seeds all see the same coverage snapshot, and an ordered reduction
//! applies dedup / min-size filtering / coverage / halting in ticket order.
//! Halting is therefore a monotone *cutoff ticket*: results past it are
//! discarded identically no matter how threads interleaved, so for a fixed
//! seed the cover is bit-identical across `threads ∈ {1, 2, …}`.
//!
//! The only cross-thread state during a round is read-only (the snapshot,
//! the [`CoverageBitmap`]) plus one atomic ticket cursor workers lease
//! small ticket batches from — no mutex anywhere on the hot path.

use crate::config::{CStrategy, OcaConfig};
use crate::halting::{AscentStopStats, HaltReason, HaltingState};
use crate::postprocess::{assign_orphans, merge_similar};
use crate::search::{ascend, AscentStop};
use crate::seed::{initial_set, ticket_seed};
use crate::state::CommunityState;
use oca_graph::{
    Community, Cover, CsrGraph, DetectContext, DetectError, Detection, NodeId, Relabeling,
};
use oca_spectral::interaction_strength;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Per-phase wall-clock breakdown of one run, in nanoseconds. The bench
/// and the detector telemetry expose these so an off-ascent regression
/// (dedup, merging, orphan assignment — the paper's Section IV
/// postprocessing) can never hide inside the end-to-end total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// Greedy ascents: seed drawing plus local search. In parallel mode
    /// this is the wall time of the worker rounds, not summed CPU time.
    pub ascent_ns: u64,
    /// The ordered reduction: fingerprint dedup, coverage accounting and
    /// halting, per ticket.
    pub dedup_ns: u64,
    /// [`merge_similar`] over the accepted communities.
    pub merge_ns: u64,
    /// [`assign_orphans`], when enabled.
    pub orphan_ns: u64,
}

/// Result of an OCA run.
#[derive(Debug, Clone)]
pub struct OcaResult {
    /// The final (postprocessed) cover.
    pub cover: Cover,
    /// The interaction strength used.
    pub c: f64,
    /// The `λ_min` estimate behind it (0 when `c` was fixed).
    pub lambda_min: f64,
    /// Seeds processed before the halting cutoff (deterministic for a
    /// fixed seed, independent of the thread count).
    pub seeds_tried: usize,
    /// Communities accepted before merge postprocessing.
    pub raw_community_count: usize,
    /// Which halting criterion ended the run (`None` only for empty
    /// graphs, which never start).
    pub halt_reason: Option<HaltReason>,
    /// Why the recorded ascents stopped (converged vs. cap/budget/plateau),
    /// tallied in ticket order up to the halting cutoff — deterministic
    /// for a fixed seed like the cover itself.
    pub ascent_stops: AscentStopStats,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Where the wall-clock went, phase by phase.
    pub phases: PhaseNanos,
}

/// The OCA algorithm, configured and ready to run.
#[derive(Debug, Clone, Default)]
pub struct Oca {
    config: OcaConfig,
}

/// Node-coverage bitmap over `AtomicU64` words.
///
/// Inside the driver the ordered reduction is the only writer (seed picks
/// deliberately use the round snapshot, not this bitmap — see
/// `Round::pick_seed`), but updates go through `&self` atomics so the
/// bitmap can be read lock-free from any thread at any time (progress
/// callbacks, external monitors) and shared across the worker scope
/// without borrow gymnastics. `Relaxed` suffices: bits only ever turn on,
/// and cross-round visibility is given by the scope join.
#[derive(Debug)]
pub struct CoverageBitmap {
    words: Vec<AtomicU64>,
}

impl CoverageBitmap {
    /// An all-uncovered bitmap for `n` nodes.
    pub fn new(n: usize) -> Self {
        CoverageBitmap {
            words: (0..n.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// True if node `i` is covered. Lock-free.
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64].load(Ordering::Relaxed) & (1 << (i % 64)) != 0
    }

    /// Marks node `i` covered; returns true if it was newly covered.
    /// A real atomic RMW, so even concurrent setters could not lose bits.
    fn set(&self, i: usize) -> bool {
        let mask = 1 << (i % 64);
        self.words[i / 64].fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    /// Copies the current words into `dst` (lock-free snapshot). The
    /// driver takes one per round — at the round boundary, where the
    /// bitmap is identical on the sequential and parallel paths — to
    /// build the covered-hub prune mask every ticket of the round shares.
    pub fn copy_words_into(&self, dst: &mut [u64]) {
        debug_assert_eq!(dst.len(), self.words.len());
        for (d, w) in dst.iter_mut().zip(&self.words) {
            *d = w.load(Ordering::Relaxed);
        }
    }

    /// Number of 64-bit words backing the bitmap.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }
}

/// The uncovered-node list: O(1) unbiased seed picks (no rejection
/// sampling), updated by swap-removal on cover. Removals are buffered
/// during a round and applied at its end — the driver lends `nodes` out
/// as the round's pick snapshot without copying — and their order is the
/// deterministic reduction order, so the list content *and order* are
/// identical across thread counts.
#[derive(Debug)]
struct UncoveredList {
    nodes: Vec<NodeId>,
    /// Position of each node in `nodes`; `u32::MAX` once covered.
    pos: Vec<u32>,
}

impl UncoveredList {
    fn new(n: usize) -> Self {
        UncoveredList {
            nodes: (0..n as u32).map(NodeId).collect(),
            pos: (0..n as u32).collect(),
        }
    }

    fn remove(&mut self, v: NodeId) {
        let p = self.pos[v.index()];
        debug_assert_ne!(p, u32::MAX, "node removed twice");
        let last = *self.nodes.last().expect("non-empty when removing");
        self.nodes.swap_remove(p as usize);
        self.pos[last.index()] = p;
        self.pos[v.index()] = u32::MAX;
    }
}

/// What one ticket's ascent produced, in the cheapest form the ordered
/// reduction can decide on: the O(1) set fingerprint and size always, the
/// materialized member vector only when the ticket can still be accepted
/// (too-small sets and already-seen fingerprints skip the clone+sort of
/// [`CommunityState::to_community`] entirely — on hub graphs, where the
/// overwhelming majority of ascents re-converge to known communities,
/// this is most of the off-ascent wall-clock).
struct TicketOutcome {
    /// Order-independent 128-bit fingerprint of the final set.
    fp: u128,
    /// Member count of the final set.
    size: usize,
    /// The members, or `None` when the ticket was pre-filtered.
    community: Option<Community>,
    /// Why the ascent stopped, for the reduction's ordered stop tally.
    stop: AscentStop,
}

/// The ordered deterministic reduction: every accepted ascent flows
/// through [`Reduction::record`] in ascending ticket order, which is what
/// makes dedup, coverage accounting and the halting cutoff independent of
/// thread scheduling. The coverage bitmap lives *outside* (it is updated
/// through `&self` atomics), so workers can hold a shared reference to it
/// across rounds while the reduction advances between them.
struct Reduction {
    halting: HaltingState,
    uncovered: UncoveredList,
    /// Nodes newly covered this round; applied to `uncovered` at round
    /// end (in this deterministic order) while its `nodes` vec is lent
    /// out as the round's snapshot.
    newly_covered: Vec<NodeId>,
    /// Fingerprints of every accepted community: dedup is an O(1) probe
    /// with no member-vector clone (was `HashSet<Vec<NodeId>>`, which
    /// cloned and content-hashed the full vector once per ticket).
    seen: HashSet<u128>,
    accepted: Vec<Community>,
    min_size: usize,
    halted: bool,
    /// Stop-reason tally of every recorded ticket (budget telemetry).
    stops: AscentStopStats,
}

impl Reduction {
    fn new(config: &OcaConfig, n: usize) -> Self {
        let halting = HaltingState::new(config.halting, n);
        let halted = halting.should_halt();
        Reduction {
            halting,
            uncovered: UncoveredList::new(n),
            newly_covered: Vec::new(),
            seen: HashSet::new(),
            accepted: Vec::new(),
            min_size: config.min_community_size,
            halted,
            stops: AscentStopStats::default(),
        }
    }

    /// Records the next ticket's outcome (in ticket order) and emits the
    /// post-record progress tick. Returns true while the run should go on.
    fn record(
        &mut self,
        outcome: TicketOutcome,
        covered: &CoverageBitmap,
        ctx: &DetectContext,
        max_seeds: usize,
    ) -> bool {
        debug_assert!(!self.halted, "ticket recorded past the cutoff");
        self.stops.record(outcome.stop);
        // Too-small communities are dropped without entering the dedup
        // set; duplicates are rejected by the O(1) fingerprint probe.
        if outcome.size < self.min_size || !self.seen.insert(outcome.fp) {
            self.halting.record(0, false);
        } else {
            // The fingerprint was novel, so the worker cannot have
            // pre-filtered this ticket (`seen` only grows): the members
            // were materialized.
            let community = outcome
                .community
                .expect("novel fingerprint implies materialized members");
            let mut newly = 0usize;
            for &v in community.members() {
                if covered.set(v.index()) {
                    self.newly_covered.push(v);
                    newly += 1;
                }
            }
            self.accepted.push(community);
            self.halting.record(newly, true);
        }
        ctx.tick("ascent", self.halting.seeds_tried(), Some(max_seeds));
        self.halted = self.halting.should_halt();
        !self.halted
    }
}

/// Read-only per-round context shared with every worker.
struct Round<'a> {
    graph: &'a CsrGraph,
    config: &'a OcaConfig,
    /// The uncovered nodes as of the round start — the coverage snapshot
    /// every seed pick of the round is drawn against.
    snapshot: &'a [NodeId],
    /// Global ticket number of the round's first ticket.
    start: u64,
    /// Tickets in this round.
    len: usize,
}

impl Round<'_> {
    /// Runs the ascent for round-local ticket `t`: a pure function of
    /// `(rng_seed, start + t)` and the round snapshot.
    ///
    /// `seen` is a dedup-set snapshot no newer than the reduction's view
    /// of this ticket (the live set on the sequential path, the
    /// round-start set in parallel). Probing it never changes the
    /// *decision* — the reduction re-checks in ticket order — it only
    /// skips materializing member vectors for ascents that are already
    /// guaranteed to be rejected, so the output stays bit-identical at
    /// any thread count.
    fn run_ticket(
        &self,
        state: &mut CommunityState<'_>,
        t: usize,
        seen: &HashSet<u128>,
    ) -> TicketOutcome {
        let mut rng =
            StdRng::seed_from_u64(ticket_seed(self.config.rng_seed, self.start + t as u64));
        let seed = self.pick_seed(&mut rng);
        let initial = initial_set(self.config.seed_strategy, self.graph, seed, &mut rng);
        let outcome = ascend(state, &initial, &self.config.search);
        let fp = state.fingerprint();
        let size = state.len();
        let community = (size >= self.config.min_community_size && !seen.contains(&fp))
            .then(|| state.to_community());
        TicketOutcome {
            fp,
            size,
            community,
            stop: outcome.stop,
        }
    }

    /// O(1) unbiased pick from the uncovered snapshot; when everything is
    /// covered (possible while the coverage criterion is disabled) any
    /// node will do. Note the pick is against the *snapshot*, not the live
    /// bitmap: the sequential path reduces incrementally, so the bitmap
    /// may run ahead mid-round, and consulting it would reintroduce
    /// schedule-dependent output.
    fn pick_seed<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        if self.snapshot.is_empty() {
            return NodeId(rng.random_range(0..self.graph.node_count() as u32));
        }
        self.snapshot[rng.random_range(0..self.snapshot.len())]
    }
}

impl Oca {
    /// Creates a runner with the given configuration.
    ///
    /// # Panics
    /// Panics on an invalid configuration; use [`Oca::try_new`] for a
    /// typed error instead.
    pub fn new(config: OcaConfig) -> Self {
        match Oca::try_new(config) {
            Ok(oca) => oca,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`Oca::new`]: configuration problems are
    /// reported as [`DetectError::InvalidConfig`].
    pub fn try_new(config: OcaConfig) -> Result<Self, DetectError> {
        config.validate()?;
        Ok(Oca { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &OcaConfig {
        &self.config
    }

    /// Resolves the interaction strength for `graph`.
    fn resolve_c(&self, graph: &CsrGraph) -> (f64, f64) {
        match self.config.c {
            CStrategy::Fixed(c) => (c, 0.0),
            CStrategy::Spectral(ref pc) => {
                let s = interaction_strength(graph, pc);
                (s.c, s.lambda_min)
            }
        }
    }

    /// Runs OCA on `graph` and returns the overlapping cover.
    pub fn run(&self, graph: &CsrGraph) -> OcaResult {
        match self.run_ctx(graph, &DetectContext::new(self.config.rng_seed)) {
            Ok(result) => result,
            // The default context can never be cancelled, and the config
            // was validated at construction.
            Err(e) => unreachable!("uncancellable run failed: {e}"),
        }
    }

    /// Runs OCA under a [`DetectContext`]: the context's cancellation
    /// token is polled once per ascent and a progress tick (`"ascent"`) is
    /// emitted per ticket as the ordered reduction records it — ticks are
    /// monotone and the final tick reports the run's last ascent. On
    /// cancellation the accepted (raw, un-postprocessed) communities are
    /// returned inside [`DetectError::Cancelled`].
    ///
    /// Randomness still derives from [`OcaConfig::rng_seed`]; detector
    /// wrappers copy the context seed into the config first. For a fixed
    /// seed the result is identical at any [`OcaConfig::threads`] count.
    ///
    /// With [`OcaConfig::relabel`] set, the run happens on a
    /// degree-ordered copy of the graph and every cover leaving this
    /// function — the result's and a cancellation's partial — is mapped
    /// back to original ids.
    pub fn run_ctx(&self, graph: &CsrGraph, ctx: &DetectContext) -> Result<OcaResult, DetectError> {
        if !self.config.relabel {
            return self.run_ctx_inner(graph, ctx);
        }
        let relabeling = Relabeling::degree_descending(graph);
        let compact = graph.relabeled(&relabeling);
        match self.run_ctx_inner(&compact, ctx) {
            Ok(mut result) => {
                result.cover = relabeling.cover_to_original(&result.cover);
                Ok(result)
            }
            Err(DetectError::Cancelled { partial }) => Err(DetectError::cancelled(Detection {
                cover: relabeling.cover_to_original(&partial.cover),
                ..*partial
            })),
            Err(other) => Err(other),
        }
    }

    /// [`Oca::run_ctx`] on the graph as given (no relabeling pass).
    fn run_ctx_inner(
        &self,
        graph: &CsrGraph,
        ctx: &DetectContext,
    ) -> Result<OcaResult, DetectError> {
        let start = Instant::now();
        let n = graph.node_count();
        let cancelled = |cover: Cover, seeds: usize, c: f64, lambda_min: f64| {
            DetectError::cancelled(Detection {
                cover,
                elapsed: start.elapsed(),
                complete: false,
                iterations: seeds,
                stats: vec![
                    ("c", format!("{c:.6}")),
                    ("lambda_min", format!("{lambda_min:.6}")),
                ],
            })
        };
        if ctx.is_cancelled() {
            return Err(cancelled(Cover::empty(n), 0, 0.0, 0.0));
        }
        let (c, lambda_min) = self.resolve_c(graph);
        if n == 0 {
            return Ok(OcaResult {
                cover: Cover::empty(0),
                c,
                lambda_min,
                seeds_tried: 0,
                raw_community_count: 0,
                halt_reason: None,
                ascent_stops: AscentStopStats::default(),
                elapsed: start.elapsed(),
                phases: PhaseNanos::default(),
            });
        }

        let config = &self.config;
        let threads = config.threads;
        let covered = CoverageBitmap::new(n);
        let mut reduction = Reduction::new(config, n);
        let mut phases = PhaseNanos::default();
        // One reusable search state per worker; buffers persist across
        // rounds so reset cost stays proportional to work done.
        let mut states: Vec<CommunityState<'_>> = (0..threads.max(1))
            .map(|_| CommunityState::new(graph, c))
            .collect();
        // Covered-hub pruning: nodes of degree ≥ the threshold get a bit
        // in this fixed mask; each round intersects it with the round-start
        // coverage and hands the result to every worker state. Because the
        // bitmap only advances at round boundaries on the parallel path —
        // and the sequential path uses the same round-start snapshot — the
        // prune mask a ticket sees is a pure function of the schedule, so
        // covers stay bit-identical across thread counts.
        let hub_mask: Vec<u64> = if config.search.prune_hub_degree > 0 {
            let mut mask = vec![0u64; covered.word_count()];
            for v in 0..n {
                if graph.neighbors(NodeId(v as u32)).len() >= config.search.prune_hub_degree {
                    mask[v / 64] |= 1 << (v % 64);
                }
            }
            mask
        } else {
            Vec::new()
        };
        let mut prune_words = vec![0u64; hub_mask.len()];

        while !reduction.halted {
            if !hub_mask.is_empty() {
                covered.copy_words_into(&mut prune_words);
                for (w, m) in prune_words.iter_mut().zip(&hub_mask) {
                    *w &= m;
                }
                for state in &mut states {
                    state.set_prune_snapshot(&prune_words);
                }
            }
            let done = reduction.halting.seeds_tried();
            let len = config.batch.min(config.halting.max_seeds - done);
            debug_assert!(len > 0, "max_seeds exhausted without halting");
            // The uncovered list is *lent out* (no copy) as the round's
            // pick snapshot; the reduction buffers this round's removals
            // in `newly_covered` and applies them once the round is over,
            // so the sequential path can reduce incrementally (stopping
            // at the cutoff without wasted ascents) while every pick of
            // the round still sees the round-start coverage, exactly
            // like the parallel path.
            let snapshot = std::mem::take(&mut reduction.uncovered.nodes);
            let round = Round {
                graph,
                config,
                snapshot: &snapshot,
                start: done as u64,
                len,
            };

            if threads <= 1 || len == 1 {
                for t in 0..len {
                    if ctx.is_cancelled() {
                        break;
                    }
                    // Sequentially the reduction's live dedup set is
                    // current for this ticket, so it doubles as the
                    // pre-filter snapshot.
                    let t0 = Instant::now();
                    let outcome = round.run_ticket(&mut states[0], t, &reduction.seen);
                    let t1 = Instant::now();
                    let go_on = reduction.record(outcome, &covered, ctx, config.halting.max_seeds);
                    phases.ascent_ns += t1.duration_since(t0).as_nanos() as u64;
                    phases.dedup_ns += t1.elapsed().as_nanos() as u64;
                    if !go_on {
                        break;
                    }
                }
            } else {
                let t0 = Instant::now();
                let results = run_round_parallel(&round, &mut states, &reduction.seen, ctx);
                let t1 = Instant::now();
                phases.ascent_ns += t1.duration_since(t0).as_nanos() as u64;
                for slot in results {
                    // A hole means a worker bailed on cancellation; the
                    // contiguous prefix before it is still reduced so the
                    // partial result is well-formed.
                    let Some(outcome) = slot else { break };
                    if !reduction.record(outcome, &covered, ctx, config.halting.max_seeds)
                        || ctx.is_cancelled()
                    {
                        break;
                    }
                }
                phases.dedup_ns += t1.elapsed().as_nanos() as u64;
            }
            reduction.uncovered.nodes = snapshot;
            for v in std::mem::take(&mut reduction.newly_covered) {
                reduction.uncovered.remove(v);
            }
            if ctx.is_cancelled() {
                let seeds = reduction.halting.seeds_tried();
                let cover = Cover::new(n, reduction.accepted);
                return Err(cancelled(cover, seeds, c, lambda_min));
            }
        }

        let raw_count = reduction.accepted.len();
        let mut cover = Cover::new(n, reduction.accepted);
        if let Some(threshold) = config.merge_threshold {
            let t0 = Instant::now();
            cover = merge_similar(&cover, threshold);
            phases.merge_ns += t0.elapsed().as_nanos() as u64;
        }
        if config.assign_orphans {
            let t0 = Instant::now();
            cover = assign_orphans(graph, &cover, 16);
            phases.orphan_ns += t0.elapsed().as_nanos() as u64;
        }
        Ok(OcaResult {
            cover,
            c,
            lambda_min,
            seeds_tried: reduction.halting.seeds_tried(),
            raw_community_count: raw_count,
            halt_reason: reduction.halting.reason(),
            ascent_stops: reduction.stops,
            elapsed: start.elapsed(),
            phases,
        })
    }
}

/// Executes one round's tickets across scoped worker threads. Workers
/// lease ticket chunks from an atomic cursor (one `fetch_add` per chunk —
/// the entire cross-thread synchronization of the round) and return their
/// results, which are assembled into ticket-indexed slots for the ordered
/// reduction. `None` slots only occur after cancellation.
fn run_round_parallel(
    round: &Round<'_>,
    states: &mut [CommunityState<'_>],
    seen: &HashSet<u128>,
    ctx: &DetectContext,
) -> Vec<Option<TicketOutcome>> {
    let cursor = AtomicUsize::new(0);
    // Small leases keep workers balanced near the end of a round while
    // amortizing the cursor traffic.
    let lease = (round.len / (states.len() * 4)).clamp(1, 32);
    let buffers: Vec<Vec<(usize, TicketOutcome)>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = states
            .iter_mut()
            .map(|state| {
                let cursor = &cursor;
                scope.spawn(move |_| {
                    let mut out: Vec<(usize, TicketOutcome)> = Vec::new();
                    'lease: loop {
                        let lo = cursor.fetch_add(lease, Ordering::Relaxed);
                        if lo >= round.len {
                            break;
                        }
                        for t in lo..(lo + lease).min(round.len) {
                            if ctx.is_cancelled() {
                                break 'lease;
                            }
                            out.push((t, round.run_ticket(state, t, seen)));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
    .expect("worker thread panicked");

    let mut slots: Vec<Option<TicketOutcome>> = Vec::new();
    slots.resize_with(round.len, || None);
    for (t, outcome) in buffers.into_iter().flatten() {
        debug_assert!(slots[t].is_none(), "ticket executed twice");
        slots[t] = Some(outcome);
    }
    slots
}

/// Convenience: run OCA with default configuration.
pub fn run_default(graph: &CsrGraph) -> OcaResult {
    Oca::default().run(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OcaConfig;
    use oca_graph::from_edges;
    use std::sync::Mutex;

    /// Three 5-cliques connected in a ring by single bridges.
    fn three_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for b in [0u32, 5, 10] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((b + i, b + j));
                }
            }
        }
        edges.extend([(4, 5), (9, 10), (14, 0)]);
        from_edges(15, edges)
    }

    fn quick_config() -> OcaConfig {
        OcaConfig {
            halting: crate::halting::HaltingConfig {
                max_seeds: 200,
                target_coverage: 1.0,
                stagnation_limit: 30,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn finds_the_three_cliques() {
        let g = three_cliques();
        let result = Oca::new(quick_config()).run(&g);
        assert_eq!(result.cover.len(), 3, "expected 3 communities");
        let mut sizes: Vec<usize> = result.cover.communities().iter().map(|c| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![5, 5, 5]);
        assert!((result.cover.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(result.halt_reason, Some(HaltReason::Coverage));
    }

    #[test]
    fn sequential_runs_are_deterministic() {
        let g = three_cliques();
        let a = Oca::new(quick_config()).run(&g);
        let b = Oca::new(quick_config()).run(&g);
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.seeds_tried, b.seeds_tried);
    }

    /// The determinism contract of this module: for a fixed seed the
    /// cover, the seeds-tried cutoff and the halt reason are bit-identical
    /// at any thread count — including cutoffs that land mid-round.
    #[test]
    fn parallel_equals_sequential_at_any_thread_count() {
        let g = three_cliques();
        let reference = Oca::new(quick_config()).run(&g);
        assert_eq!(reference.cover.len(), 3);
        for threads in [2, 3, 4, 8] {
            let r = Oca::new(OcaConfig {
                threads,
                ..quick_config()
            })
            .run(&g);
            assert_eq!(r.cover, reference.cover, "threads = {threads}");
            assert_eq!(r.seeds_tried, reference.seeds_tried, "threads = {threads}");
            assert_eq!(r.halt_reason, reference.halt_reason, "threads = {threads}");
        }
    }

    #[test]
    fn round_size_is_part_of_the_schedule_but_threads_are_not() {
        let g = three_cliques();
        for batch in [1, 7, 64] {
            let reference = Oca::new(OcaConfig {
                batch,
                ..quick_config()
            })
            .run(&g);
            for threads in [2, 4] {
                let r = Oca::new(OcaConfig {
                    batch,
                    threads,
                    ..quick_config()
                })
                .run(&g);
                assert_eq!(r.cover, reference.cover, "batch = {batch}");
                assert_eq!(r.seeds_tried, reference.seeds_tried, "batch = {batch}");
            }
        }
    }

    /// Ticks fire after each recorded ascent with the post-record count:
    /// strictly increasing by one, ending exactly at `seeds_tried`.
    #[test]
    fn progress_ticks_are_monotone_and_report_the_last_ascent() {
        let g = three_cliques();
        for threads in [1, 4] {
            let ticks = std::sync::Arc::new(Mutex::new(Vec::new()));
            let sink = std::sync::Arc::clone(&ticks);
            let ctx =
                DetectContext::new(0x0CA).with_progress(move |p| sink.lock().unwrap().push(p.done));
            let result = Oca::new(OcaConfig {
                threads,
                ..quick_config()
            })
            .run_ctx(&g, &ctx)
            .unwrap();
            let ticks = ticks.lock().unwrap();
            let expected: Vec<usize> = (1..=result.seeds_tried).collect();
            assert_eq!(*ticks, expected, "threads = {threads}");
        }
    }

    /// Once the three cliques are found every further ascent re-converges
    /// to one of them; with coverage unreachable the duplicate streak is
    /// what stops the run (long before the stagnation window, which the
    /// config leaves effectively open).
    #[test]
    fn duplicate_streak_halts_hub_style_repetition() {
        let g = three_cliques();
        let r = Oca::new(OcaConfig {
            halting: crate::halting::HaltingConfig {
                max_seeds: 10_000,
                target_coverage: 2.0,
                stagnation_limit: usize::MAX - 1,
                stagnation_streak: 25,
                ..Default::default()
            },
            ..Default::default()
        })
        .run(&g);
        assert_eq!(r.halt_reason, Some(HaltReason::DuplicateStreak));
        assert_eq!(r.cover.len(), 3, "the streak fires only after the finds");
        assert!(r.seeds_tried < 10_000, "the budget must not be exhausted");
    }

    /// The determinism contract extends to every hub-search feature: with
    /// scaled budgets, covered-hub pruning and the penalized move rule all
    /// enabled, the cover, cutoff, halt reason *and* the stop-reason tally
    /// are bit-identical at any thread count.
    #[test]
    fn hub_search_features_preserve_thread_determinism() {
        let g = three_cliques();
        let cfg = OcaConfig {
            search: crate::search::SearchConfig {
                budget_factor: 2.0,
                prune_hub_degree: 4,
                move_rule: crate::search::MoveRule::Penalized,
                plateau_moves: 6,
                tabu_tenure: 3,
                ..Default::default()
            },
            ..quick_config()
        };
        let reference = Oca::new(cfg.clone()).run(&g);
        assert!(!reference.cover.is_empty());
        for threads in [2, 3, 4] {
            let r = Oca::new(OcaConfig {
                threads,
                ..cfg.clone()
            })
            .run(&g);
            assert_eq!(r.cover, reference.cover, "threads = {threads}");
            assert_eq!(r.seeds_tried, reference.seeds_tried, "threads = {threads}");
            assert_eq!(r.halt_reason, reference.halt_reason, "threads = {threads}");
            assert_eq!(
                r.ascent_stops, reference.ascent_stops,
                "threads = {threads}"
            );
        }
    }

    /// The stop tally covers every recorded seed, and an unbudgeted run on
    /// an easy graph converges everything.
    #[test]
    fn ascent_stop_telemetry_accounts_for_every_seed() {
        let g = three_cliques();
        let r = Oca::new(quick_config()).run(&g);
        let s = r.ascent_stops;
        assert_eq!(
            s.converged + s.limited(),
            r.seeds_tried,
            "every recorded ascent is tallied exactly once"
        );
        assert_eq!(s.limited(), 0, "default config never cuts an ascent");
        // A one-move hard cap cuts every multi-move ascent.
        let capped = Oca::new(OcaConfig {
            search: crate::search::SearchConfig {
                max_moves: 1,
                ..Default::default()
            },
            ..quick_config()
        })
        .run(&g);
        assert!(capped.ascent_stops.move_cap > 0, "cap stops must be seen");
    }

    /// Pruning covered hubs changes which communities later seeds can
    /// reach, but never the validity of the cover.
    #[test]
    fn covered_hub_pruning_yields_a_valid_cover() {
        let g = three_cliques();
        let r = Oca::new(OcaConfig {
            search: crate::search::SearchConfig {
                // Every node of a 5-clique has degree ≥ 4, so after the
                // first accepted clique all its members are prunable.
                prune_hub_degree: 4,
                ..Default::default()
            },
            ..quick_config()
        })
        .run(&g);
        assert!(!r.cover.is_empty());
        for community in r.cover.communities() {
            assert!(!community.is_empty());
            for &v in community.members() {
                assert!(v.index() < 15);
            }
        }
    }

    #[test]
    fn phase_breakdown_accounts_for_the_run() {
        let g = three_cliques();
        let r = Oca::new(quick_config()).run(&g);
        assert!(r.phases.ascent_ns > 0, "ascent work must be timed");
        assert!(r.phases.dedup_ns > 0, "reduction work must be timed");
        assert_eq!(r.phases.orphan_ns, 0, "orphan assignment is off");
        let total = r.phases.ascent_ns + r.phases.dedup_ns + r.phases.merge_ns;
        assert!(
            total <= r.elapsed.as_nanos() as u64,
            "phases cannot exceed the wall clock"
        );
    }

    #[test]
    fn coverage_bitmap_tracks_sets() {
        let bm = CoverageBitmap::new(130);
        assert!(!bm.get(0) && !bm.get(129));
        assert!(bm.set(129), "first set is new");
        assert!(!bm.set(129), "second set is not");
        assert!(bm.get(129) && !bm.get(128));
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        let r = run_default(&g);
        assert!(r.cover.is_empty());
        assert_eq!(r.seeds_tried, 0);
        assert_eq!(r.halt_reason, None);
    }

    #[test]
    fn edgeless_graph_yields_no_communities() {
        let g = CsrGraph::empty(10);
        let cfg = OcaConfig {
            halting: crate::halting::HaltingConfig {
                max_seeds: 30,
                target_coverage: 1.0,
                stagnation_limit: 10,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = Oca::new(cfg).run(&g);
        assert!(r.cover.is_empty(), "singletons are below min size");
        assert_eq!(r.halt_reason, Some(HaltReason::Stagnation));
    }

    #[test]
    fn orphan_assignment_covers_everything_connected() {
        let g = three_cliques();
        let cfg = OcaConfig {
            assign_orphans: true,
            ..quick_config()
        };
        let r = Oca::new(cfg).run(&g);
        assert!(r.cover.orphans().is_empty());
    }

    #[test]
    fn fixed_c_skips_spectral() {
        let g = three_cliques();
        let cfg = OcaConfig {
            c: CStrategy::Fixed(0.7),
            ..quick_config()
        };
        let r = Oca::new(cfg).run(&g);
        assert_eq!(r.c, 0.7);
        assert_eq!(r.lambda_min, 0.0);
        assert_eq!(r.cover.len(), 3);
    }

    use oca_graph::CsrGraph;
}
