//! The OCA driver: repeated seeded ascents, dedup, halting, postprocessing.
//!
//! This is Section IV end-to-end: communities are found independently from
//! randomly distributed seeds, so the driver also ships a parallel mode
//! (work-stealing over a shared halting state) — each ascent touches only
//! its own `CommunityState`, making the algorithm embarrassingly parallel.

use crate::config::{CStrategy, OcaConfig};
use crate::halting::HaltingState;
use crate::postprocess::{assign_orphans, merge_similar};
use crate::search::{local_search, SearchConfig};
use crate::seed::{initial_set, SeedStrategy};
use crate::state::CommunityState;
use oca_graph::{Community, Cover, CsrGraph, DetectContext, DetectError, Detection, NodeId};
use oca_spectral::interaction_strength;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Result of an OCA run.
#[derive(Debug, Clone)]
pub struct OcaResult {
    /// The final (postprocessed) cover.
    pub cover: Cover,
    /// The interaction strength used.
    pub c: f64,
    /// The `λ_min` estimate behind it (0 when `c` was fixed).
    pub lambda_min: f64,
    /// Seeds processed before halting.
    pub seeds_tried: usize,
    /// Communities accepted before merge postprocessing.
    pub raw_community_count: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

/// The OCA algorithm, configured and ready to run.
#[derive(Debug, Clone, Default)]
pub struct Oca {
    config: OcaConfig,
}

/// Shared driver state behind the mutex in parallel mode.
struct Shared {
    halting: HaltingState,
    covered: Vec<bool>,
    seen: HashSet<Vec<NodeId>>,
    accepted: Vec<Community>,
}

impl Shared {
    /// Picks a seed node, preferring uncovered nodes (rejection sampling).
    fn pick_seed<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> NodeId {
        for _ in 0..20 {
            let v = rng.random_range(0..n as u32);
            if !self.covered[v as usize] {
                return NodeId(v);
            }
        }
        NodeId(rng.random_range(0..n as u32))
    }

    /// Records the previous ascent's outcome (if any) and, unless halting,
    /// picks the next seed — one critical section per ascent. The second
    /// element of the pair is the seeds-tried count, captured here so the
    /// progress tick outside the lock reports a consistent value.
    fn record_and_pick<R: Rng + ?Sized>(
        &mut self,
        finished: Option<Community>,
        min_size: usize,
        n: usize,
        rng: &mut R,
    ) -> Option<(NodeId, usize)> {
        if let Some(community) = finished {
            self.record(community, min_size);
        }
        if self.halting.should_halt() {
            None
        } else {
            Some((self.pick_seed(n, rng), self.halting.seeds_tried()))
        }
    }

    /// Records one ascent outcome; returns nothing.
    fn record(&mut self, community: Community, min_size: usize) {
        if community.len() < min_size {
            self.halting.record(0, false);
            return;
        }
        let key = community.members().to_vec();
        if !self.seen.insert(key) {
            self.halting.record(0, false);
            return;
        }
        let mut newly = 0usize;
        for &v in community.members() {
            if !self.covered[v.index()] {
                self.covered[v.index()] = true;
                newly += 1;
            }
        }
        self.accepted.push(community);
        self.halting.record(newly, true);
    }
}

impl Oca {
    /// Creates a runner with the given configuration.
    ///
    /// # Panics
    /// Panics on an invalid configuration; use [`Oca::try_new`] for a
    /// typed error instead.
    pub fn new(config: OcaConfig) -> Self {
        match Oca::try_new(config) {
            Ok(oca) => oca,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible counterpart of [`Oca::new`]: configuration problems are
    /// reported as [`DetectError::InvalidConfig`].
    pub fn try_new(config: OcaConfig) -> Result<Self, DetectError> {
        config.validate()?;
        Ok(Oca { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &OcaConfig {
        &self.config
    }

    /// Resolves the interaction strength for `graph`.
    fn resolve_c(&self, graph: &CsrGraph) -> (f64, f64) {
        match self.config.c {
            CStrategy::Fixed(c) => (c, 0.0),
            CStrategy::Spectral(ref pc) => {
                let s = interaction_strength(graph, pc);
                (s.c, s.lambda_min)
            }
        }
    }

    /// Runs OCA on `graph` and returns the overlapping cover.
    pub fn run(&self, graph: &CsrGraph) -> OcaResult {
        match self.run_ctx(graph, &DetectContext::new(self.config.rng_seed)) {
            Ok(result) => result,
            // The default context can never be cancelled, and the config
            // was validated at construction.
            Err(e) => unreachable!("uncancellable run failed: {e}"),
        }
    }

    /// Runs OCA under a [`DetectContext`]: the context's cancellation
    /// token is polled once per ascent and a progress tick (`"ascent"`) is
    /// emitted per seed processed. On cancellation the accepted (raw,
    /// un-postprocessed) communities are returned inside
    /// [`DetectError::Cancelled`].
    ///
    /// Randomness still derives from [`OcaConfig::rng_seed`]; detector
    /// wrappers copy the context seed into the config first.
    pub fn run_ctx(&self, graph: &CsrGraph, ctx: &DetectContext) -> Result<OcaResult, DetectError> {
        let start = Instant::now();
        let n = graph.node_count();
        let cancelled = |cover: Cover, seeds: usize, c: f64, lambda_min: f64| {
            DetectError::cancelled(Detection {
                cover,
                elapsed: start.elapsed(),
                complete: false,
                iterations: seeds,
                stats: vec![
                    ("c", format!("{c:.6}")),
                    ("lambda_min", format!("{lambda_min:.6}")),
                ],
            })
        };
        if ctx.is_cancelled() {
            return Err(cancelled(Cover::empty(n), 0, 0.0, 0.0));
        }
        let (c, lambda_min) = self.resolve_c(graph);
        if n == 0 {
            return Ok(OcaResult {
                cover: Cover::empty(0),
                c,
                lambda_min,
                seeds_tried: 0,
                raw_community_count: 0,
                elapsed: start.elapsed(),
            });
        }
        let shared = Mutex::new(Shared {
            halting: HaltingState::new(self.config.halting, n),
            covered: vec![false; n],
            seen: HashSet::new(),
            accepted: Vec::new(),
        });

        if self.config.threads <= 1 {
            let mut rng = StdRng::seed_from_u64(self.config.rng_seed);
            let mut state = CommunityState::new(graph, c);
            ascent_loop(&shared, graph, &self.config, n, &mut state, &mut rng, ctx);
        } else {
            crossbeam::scope(|scope| {
                for tid in 0..self.config.threads {
                    let shared = &shared;
                    let config = &self.config;
                    scope.spawn(move |_| {
                        let mut rng =
                            StdRng::seed_from_u64(config.rng_seed ^ (0x9E37 + tid as u64));
                        let mut state = CommunityState::new(graph, c);
                        ascent_loop(shared, graph, config, n, &mut state, &mut rng, ctx);
                    });
                }
            })
            .expect("worker thread panicked");
        }

        let sh = shared.into_inner();
        if ctx.is_cancelled() {
            let seeds = sh.halting.seeds_tried();
            return Err(cancelled(Cover::new(n, sh.accepted), seeds, c, lambda_min));
        }
        let raw_count = sh.accepted.len();
        let mut cover = Cover::new(n, sh.accepted);
        if let Some(threshold) = self.config.merge_threshold {
            cover = merge_similar(&cover, threshold);
        }
        if self.config.assign_orphans {
            cover = assign_orphans(graph, &cover, 16);
        }
        Ok(OcaResult {
            cover,
            c,
            lambda_min,
            seeds_tried: sh.halting.seeds_tried(),
            raw_community_count: raw_count,
            elapsed: start.elapsed(),
        })
    }
}

/// Runs seeded ascents until the shared halting state says stop or the
/// context is cancelled. Each iteration takes the driver lock exactly
/// once, recording the previous community and drawing the next seed in the
/// same critical section; the ascent itself runs lock-free on thread-local
/// state, and the per-ascent progress tick fires outside the lock.
#[allow(clippy::too_many_arguments)]
fn ascent_loop<R: Rng + ?Sized>(
    shared: &Mutex<Shared>,
    graph: &CsrGraph,
    config: &OcaConfig,
    n: usize,
    state: &mut CommunityState<'_>,
    rng: &mut R,
    ctx: &DetectContext,
) {
    let mut finished: Option<Community> = None;
    loop {
        let picked =
            shared
                .lock()
                .record_and_pick(finished.take(), config.min_community_size, n, rng);
        let Some((seed, tried)) = picked else {
            break;
        };
        ctx.tick("ascent", tried, Some(config.halting.max_seeds));
        if ctx.is_cancelled() {
            break;
        }
        finished = Some(ascend(
            graph,
            state,
            seed,
            config.seed_strategy,
            &config.search,
            rng,
        ));
    }
}

/// One seeded greedy ascent.
fn ascend<R: Rng + ?Sized>(
    graph: &CsrGraph,
    state: &mut CommunityState<'_>,
    seed: NodeId,
    strategy: SeedStrategy,
    search: &SearchConfig,
    rng: &mut R,
) -> Community {
    let initial = initial_set(strategy, graph, seed, rng);
    local_search(state, &initial, search).community
}

/// Convenience: run OCA with default configuration.
pub fn run_default(graph: &CsrGraph) -> OcaResult {
    Oca::default().run(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OcaConfig;
    use oca_graph::from_edges;

    /// Three 5-cliques connected in a ring by single bridges.
    fn three_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for b in [0u32, 5, 10] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((b + i, b + j));
                }
            }
        }
        edges.extend([(4, 5), (9, 10), (14, 0)]);
        from_edges(15, edges)
    }

    fn quick_config() -> OcaConfig {
        OcaConfig {
            halting: crate::halting::HaltingConfig {
                max_seeds: 200,
                target_coverage: 1.0,
                stagnation_limit: 30,
            },
            ..Default::default()
        }
    }

    #[test]
    fn finds_the_three_cliques() {
        let g = three_cliques();
        let result = Oca::new(quick_config()).run(&g);
        assert_eq!(result.cover.len(), 3, "expected 3 communities");
        let mut sizes: Vec<usize> = result.cover.communities().iter().map(|c| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![5, 5, 5]);
        assert!((result.cover.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_runs_are_deterministic() {
        let g = three_cliques();
        let a = Oca::new(quick_config()).run(&g);
        let b = Oca::new(quick_config()).run(&g);
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.seeds_tried, b.seeds_tried);
    }

    #[test]
    fn parallel_run_finds_same_structure() {
        let g = three_cliques();
        let cfg = OcaConfig {
            threads: 4,
            ..quick_config()
        };
        let result = Oca::new(cfg).run(&g);
        assert_eq!(result.cover.len(), 3);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        let r = run_default(&g);
        assert!(r.cover.is_empty());
        assert_eq!(r.seeds_tried, 0);
    }

    #[test]
    fn edgeless_graph_yields_no_communities() {
        let g = CsrGraph::empty(10);
        let cfg = OcaConfig {
            halting: crate::halting::HaltingConfig {
                max_seeds: 30,
                target_coverage: 1.0,
                stagnation_limit: 10,
            },
            ..Default::default()
        };
        let r = Oca::new(cfg).run(&g);
        assert!(r.cover.is_empty(), "singletons are below min size");
    }

    #[test]
    fn orphan_assignment_covers_everything_connected() {
        let g = three_cliques();
        let cfg = OcaConfig {
            assign_orphans: true,
            ..quick_config()
        };
        let r = Oca::new(cfg).run(&g);
        assert!(r.cover.orphans().is_empty());
    }

    #[test]
    fn fixed_c_skips_spectral() {
        let g = three_cliques();
        let cfg = OcaConfig {
            c: CStrategy::Fixed(0.7),
            ..quick_config()
        };
        let r = Oca::new(cfg).run(&g);
        assert_eq!(r.c, 0.7);
        assert_eq!(r.lambda_min, 0.0);
        assert_eq!(r.cover.len(), 3);
    }

    use oca_graph::CsrGraph;
}
